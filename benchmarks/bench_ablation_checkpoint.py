"""A9 — state-saving policy: incremental vs periodic checkpointing.

Incremental state saving (WARPED's choice for small LP states, and this
kernel's default) pays a little on every event; periodic checkpointing
pays per snapshot but must *coast forward* (re-execute state-only)
from the nearest snapshot on every rollback. With gate-sized states the
sweep shows the classic trade-off curve: tiny intervals behave like
incremental, large intervals make rollbacks expensive.
"""

from conftest import save_artifact

from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine

INTERVALS = (None, 1, 4, 16, 64)


def test_ablation_checkpoint(benchmark, runner, artifact_dir):
    circuit = runner.circuit("s9234")
    stim = runner.stimulus("s9234")
    seq = runner.sequential("s9234")
    assignment = runner.partition("s9234", "Multilevel", 8)

    def build_table():
        rows = []
        results = {}
        for interval in INTERVALS:
            machine = VirtualMachine(
                num_nodes=8,
                cost_model=runner.config.tw_costs,
                gvt_interval=runner.config.gvt_interval,
                optimism_window=runner.config.optimism_window,
                checkpoint_interval=interval,
            )
            result = TimeWarpSimulator(
                circuit, assignment, stim, machine
            ).run()
            assert result.final_values == seq.final_values
            results[interval] = result
            rows.append(
                (
                    "incremental" if interval is None else str(interval),
                    f"{result.execution_time:.2f}",
                    result.rollbacks,
                    result.events_rolled_back,
                    result.peak_history,
                )
            )
        table = format_table(
            ["state saving", "time (s)", "rollbacks", "rolled-back ev",
             "peak history"],
            rows,
            title="A9: state-saving policy (Multilevel, s9234, 8 nodes, "
            f"{runner.config.describe()})",
        )
        return table, results

    table, results = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_checkpoint.txt", table)

    # Identical simulation outcomes regardless of the policy (already
    # asserted against the oracle above); counters agree too because the
    # policy changes costs, not scheduling order at equal costs... but
    # costs DO shift the schedule, so only the invariants are asserted:
    for interval, result in results.items():
        assert result.rollbacks >= 0
        assert result.peak_history > 0
