"""A1 — coarsening-threshold sweep.

Checks the multilevel hierarchy reacts to its stopping threshold as
designed: lower thresholds yield deeper hierarchies, and the coarsest
level never falls below the partition count.
"""

from conftest import save_artifact

from repro.harness.ablations import ablation_coarsen_threshold
from repro.partition.multilevel import MultilevelPartitioner

THRESHOLDS = (16, 32, 64, 128, 256)


def test_ablation_coarsen_threshold(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        ablation_coarsen_threshold,
        args=(runner,),
        kwargs={"thresholds": THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    save_artifact(artifact_dir, "ablation_coarsen.txt", table)

    circuit = runner.circuit("s9234")
    depths = []
    for threshold in THRESHOLDS:
        partitioner = MultilevelPartitioner(seed=3, coarsen_threshold=threshold)
        partitioner.partition(circuit, 8)
        depths.append(len(partitioner.last_level_sizes))
        assert partitioner.last_level_sizes[-1] >= 8
    # The smallest threshold must coarsen deepest; intermediate depths
    # are not strictly monotone because the globule weight cap scales
    # with the threshold as well.
    assert depths[0] == max(depths)
    assert depths[0] > depths[-1]
