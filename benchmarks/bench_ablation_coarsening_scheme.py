"""A10 — coarsening scheme: fanout (paper) vs heavy-edge matching.

Section 6 of the paper: "different schemes for coarsening ... are also
being studied". Heavy-edge matching (the METIS-style scheme) absorbs
the most edge weight per level; the paper's fanout scheme instead keeps
whole signals together and grows chains for concurrency. This ablation
runs both end to end and asserts only the invariants (valid partitions,
identical simulation results, comparable cut) — which scheme wins on
time is reported, not assumed.
"""

from conftest import save_artifact

from repro.partition.metrics import partition_quality
from repro.partition.multilevel import MultilevelPartitioner
from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine


def test_ablation_coarsening_scheme(benchmark, runner, artifact_dir):
    circuit = runner.circuit("s9234")
    stim = runner.stimulus("s9234")
    seq = runner.sequential("s9234")

    def build_table():
        rows = []
        data = {}
        for scheme in ("fanout", "hem"):
            partitioner = MultilevelPartitioner(
                seed=runner.config.partition_seed, coarsening=scheme
            )
            assignment = partitioner.partition(circuit, 8)
            quality = partition_quality(assignment)
            machine = VirtualMachine(
                num_nodes=8,
                cost_model=runner.config.tw_costs,
                gvt_interval=runner.config.gvt_interval,
                optimism_window=runner.config.optimism_window,
            )
            result = TimeWarpSimulator(
                circuit, assignment, stim, machine
            ).run()
            assert result.final_values == seq.final_values
            data[scheme] = (quality, result)
            rows.append(
                (
                    scheme,
                    len(partitioner.last_level_sizes),
                    quality.edge_cut,
                    f"{quality.concurrency:.3f}",
                    f"{result.execution_time:.2f}",
                    result.app_messages,
                    result.rollbacks,
                )
            )
        table = format_table(
            ["scheme", "levels", "edge cut", "concurrency", "time (s)",
             "messages", "rollbacks"],
            rows,
            title="A10: coarsening scheme (Multilevel, s9234, 8 nodes, "
            f"{runner.config.describe()})",
        )
        return table, data

    table, data = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_coarsening_scheme.txt", table)

    fanout_q, _ = data["fanout"]
    hem_q, _ = data["hem"]
    # both schemes are in the same cut league (within 25% of each other)
    low, high = sorted((fanout_q.edge_cut, hem_q.edge_cut))
    assert high <= low * 1.25
