"""A8 — synchronization protocol: Time Warp vs conservative (CMB).

The paper's framework is optimistic; reference [11] studies
partitioning for conservative synchronization instead. This ablation
runs both kernels on the same partitions and asserts the classic
result that justifies the paper's choice: with gate-delay lookahead,
conservative execution is dominated by null-message traffic and loses
to Time Warp on every partition — and partition quality matters *less*
under CMB, because null rounds march the whole machine through the
virtual-time grid regardless of where the cut lies.
"""

from conftest import save_artifact

from repro.conservative import ConservativeSimulator
from repro.utils.tables import format_table
from repro.warped.machine import VirtualMachine

COMPARED = ("Multilevel", "Random", "DFS")


def test_ablation_conservative(benchmark, runner, artifact_dir):
    circuit = runner.circuit("s9234")
    stim = runner.stimulus("s9234")
    seq = runner.sequential("s9234")

    def build_table():
        rows = []
        data = {}
        for algorithm in COMPARED:
            tw = runner.run("s9234", algorithm, 8)
            machine = VirtualMachine(
                num_nodes=8,
                cost_model=runner.config.tw_costs,
            )
            cmb = ConservativeSimulator(
                circuit, runner.partition("s9234", algorithm, 8), stim, machine
            ).run()
            assert cmb.final_values == seq.final_values
            data[algorithm] = (tw, cmb)
            rows.append(
                (
                    algorithm,
                    f"{tw.execution_time:.2f}",
                    f"{cmb.execution_time:.2f}",
                    f"{cmb.execution_time / tw.execution_time:.1f}x",
                    cmb.app_messages,
                    cmb.null_messages,
                )
            )
        table = format_table(
            ["algorithm", "Time Warp (s)", "CMB (s)", "slowdown",
             "CMB msgs", "CMB nulls"],
            rows,
            title="A8: optimistic vs conservative, s9234 x 8 nodes "
            f"({runner.config.describe()})",
        )
        return table, data

    table, data = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_conservative.txt", table)

    for algorithm, (tw, cmb) in data.items():
        assert cmb.execution_time > tw.execution_time, algorithm
        assert cmb.null_messages > cmb.app_messages, algorithm


