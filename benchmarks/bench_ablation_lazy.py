"""A6 — cancellation policy: aggressive vs lazy.

Lazy cancellation holds anti-messages back until re-execution refutes
the original send; speculation that was value-correct is reused.

Finding (recorded in EXPERIMENTS.md): under this machine model lazy
loses across the board — deferring cancellation lets wrong values
propagate several gate-hops further before the antis land, and the
enlarged cascades dwarf the reuse savings. The bench therefore asserts
the policy's *invariants* — identical results to aggressive, a
non-trivial reuse rate, more total events (the propagation effect) —
and reports the comparison table rather than asserting a winner.
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS
from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine


def _run(runner, algorithm, nodes, cancellation):
    machine = VirtualMachine(
        num_nodes=nodes,
        cost_model=runner.config.tw_costs,
        gvt_interval=runner.config.gvt_interval,
        optimism_window=runner.config.optimism_window,
        cancellation=cancellation,
    )
    return TimeWarpSimulator(
        runner.circuit("s9234"),
        runner.partition("s9234", algorithm, nodes),
        runner.stimulus("s9234"),
        machine,
    ).run()


def test_ablation_lazy_cancellation(benchmark, runner, artifact_dir):
    def build_table():
        rows = []
        for algorithm in ALGORITHMS:
            aggressive = runner.run("s9234", algorithm, 8)
            lazy = _run(runner, algorithm, 8, "lazy")
            assert lazy.final_values == aggressive.final_values
            rows.append(
                (
                    algorithm,
                    aggressive.anti_messages,
                    lazy.anti_messages,
                    lazy.lazy_reuses,
                    f"{aggressive.execution_time:.2f}",
                    f"{lazy.execution_time:.2f}",
                )
            )
        return format_table(
            ["algorithm", "antis (aggr)", "antis (lazy)", "reuses",
             "time aggr", "time lazy"],
            rows,
            title="A6: cancellation policy (s9234, 8 nodes, "
            f"{runner.config.describe()})",
        ), rows

    (table, rows) = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_lazy.txt", table)

    total_reuses = sum(row[3] for row in rows)
    assert total_reuses > 0
