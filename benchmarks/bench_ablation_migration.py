"""A11 — static partitions vs dynamic LP migration.

Kravitz & Ackland (reference [15]) framed the static-vs-dynamic
question the paper's study deliberately answers on the static side;
this ablation adds the dynamic side: LPs migrate from the busiest to
the idlest node at GVT rounds whenever the work imbalance exceeds a
threshold.

The classic finding reproduces: migration rescues poorly-balanced
partitions (Topological, Cluster) but *hurts* the multilevel partition
— moving LPs costs transfer time and breaks the locality the static
algorithm worked for. Dynamic balancing complements, and does not
replace, good static partitioning.
"""

from conftest import save_artifact

from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine

COMPARED = ("Multilevel", "ConePartition", "Cluster", "Topological")


def _run(runner, algorithm, threshold):
    machine = VirtualMachine(
        num_nodes=8,
        cost_model=runner.config.tw_costs,
        gvt_interval=runner.config.gvt_interval,
        optimism_window=runner.config.optimism_window,
        migration_threshold=threshold,
    )
    return TimeWarpSimulator(
        runner.circuit("s9234"),
        runner.partition("s9234", algorithm, 8),
        runner.stimulus("s9234"),
        machine,
    ).run()


def test_ablation_migration(benchmark, runner, artifact_dir):
    seq = runner.sequential("s9234")

    def build_table():
        rows = []
        data = {}
        for algorithm in COMPARED:
            static = runner.run("s9234", algorithm, 8)
            dynamic = _run(runner, algorithm, threshold=1.5)
            assert dynamic.final_values == seq.final_values
            delta = (
                (static.execution_time - dynamic.execution_time)
                / static.execution_time
            )
            data[algorithm] = (static, dynamic, delta)
            rows.append(
                (
                    algorithm,
                    f"{static.execution_time:.2f}",
                    f"{dynamic.execution_time:.2f}",
                    dynamic.migrations,
                    f"{delta:+.1%}",
                )
            )
        table = format_table(
            ["algorithm", "static (s)", "dynamic (s)", "LP moves", "gain"],
            rows,
            title="A11: dynamic LP migration (s9234, 8 nodes, threshold "
            f"1.5, {runner.config.describe()})",
        )
        return table, data

    table, data = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_migration.txt", table)

    # Migration actually fires for every strategy at this threshold...
    for algorithm, (_, dynamic, _) in data.items():
        assert dynamic.migrations > 0, algorithm
    # ...rescues the weakest partition more than it helps the best one.
    assert data["Topological"][2] > data["Multilevel"][2]
