"""A3 — static partition quality across the six algorithms.

The static numbers that explain the dynamic results: the multilevel
partition must have the lowest edge cut, and every algorithm must stay
load balanced.
"""

from conftest import save_artifact

from repro.harness.ablations import ablation_quality
from repro.harness.config import ALGORITHMS
from repro.partition.metrics import partition_quality


def test_ablation_quality(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        ablation_quality, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "ablation_quality.txt", table)

    cuts = {}
    for algorithm in ALGORITHMS:
        quality = partition_quality(runner.partition("s9234", algorithm, 8))
        cuts[algorithm] = quality.edge_cut
        assert quality.load_imbalance <= 1.35, algorithm
    assert cuts["Multilevel"] == min(cuts.values())
    assert cuts["Topological"] == max(cuts.values())
