"""A2 — refinement-algorithm comparison (greedy vs KL vs FM vs none).

The paper (citing Karypis & Kumar) chose greedy refinement for speed at
comparable quality; the assertions pin exactly that: every refiner
improves on no-refinement, and greedy is not slower than FM while
cutting within 40% of it (FM's tentative negative-gain moves do buy
real cut quality; greedy buys speed).
"""

from conftest import save_artifact

from repro.harness.ablations import ablation_refiner
from repro.partition.metrics import edge_cut
from repro.partition.multilevel import MultilevelPartitioner


def test_ablation_refiner(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        ablation_refiner, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "ablation_refine.txt", table)

    circuit = runner.circuit("s9234")
    cuts = {}
    runtimes = {}
    for refiner in ("none", "greedy", "kl", "fm"):
        partitioner = MultilevelPartitioner(seed=3, refiner=refiner)
        cuts[refiner] = edge_cut(partitioner.partition(circuit, 8))
        runtimes[refiner] = partitioner.last_runtime
    for refiner in ("greedy", "kl", "fm"):
        assert cuts[refiner] <= cuts["none"], refiner
    assert cuts["greedy"] <= cuts["fm"] * 1.40
    assert runtimes["greedy"] <= runtimes["fm"]
