"""A4 — multilevel runtime scaling (the paper's O(N_E) claim).

Partitions a doubling sequence of circuits and asserts the cost per
edge grows sub-linearly (i.e. total runtime is roughly linear in the
edge count, not quadratic).
"""

import time

from conftest import save_artifact

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.harness.ablations import ablation_scaling
from repro.partition.multilevel import MultilevelPartitioner


def test_ablation_scaling(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        ablation_scaling,
        kwargs={"sizes": (500, 1000, 2000, 4000)},
        rounds=1,
        iterations=1,
    )
    save_artifact(artifact_dir, "ablation_scaling.txt", table)

    per_edge = []
    for num_gates in (1000, 8000):
        spec = GeneratorSpec(
            name=f"lin{num_gates}",
            num_inputs=max(4, num_gates // 150),
            num_outputs=max(4, num_gates // 120),
            num_gates=num_gates,
            num_dffs=max(2, num_gates // 25),
            depth=max(8, num_gates // 120),
            seed=11,
        )
        circuit = generate_circuit(spec)
        start = time.perf_counter()
        MultilevelPartitioner(seed=11).partition(circuit, 8)
        per_edge.append((time.perf_counter() - start) / circuit.num_edges)
    # An O(E^2) algorithm would show ~8x growth over this 8x size range;
    # linear-ish behaviour keeps the ratio small. Generous bound: wall
    # clocks on shared machines are noisy.
    assert per_edge[1] <= per_edge[0] * 3.0
