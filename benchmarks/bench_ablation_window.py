"""A5 — optimism-window sweep (bounded optimism, Section 6 directions).

Asserts the window behaves as an optimism control: tight windows
discard less speculative work than unthrottled Time Warp, without
changing the simulation outcome (the runner's oracle already checks
that on every run).
"""

from conftest import save_artifact

from repro.harness.ablations import ablation_window
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner


def test_ablation_window(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        ablation_window, args=(runner.config,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "ablation_window.txt", table)

    base = runner.config
    def record_for(window):
        config = ExperimentConfig.from_env(window_periods=window)
        return ExperimentRunner(config).record("s9234", "Multilevel", 8)

    unbounded = record_for(None)
    tight = record_for(0.5)
    assert tight.events_rolled_back <= unbounded.events_rolled_back
    del base
