"""Table 2, adaptive edition — every static partitioner paired with a
runtime-repartitioning rerun of the same partition.

The paper's Table 2 compares six *static* partitioning algorithms; the
adaptive scorecard reruns each partition with GVT-epoch LP migration
enabled (hot node sheds loosely-attached LPs to the coldest node) and
asserts the central claim of runtime repartitioning: the *worst*
static partition is rescued — its adaptive rerun beats its static
time — while migration never breaks the committed results.
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS
from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine

CIRCUIT = "s9234"
NODES = 8
THRESHOLD = 1.5


def _adaptive(runner, algorithm):
    machine = VirtualMachine(
        num_nodes=NODES,
        cost_model=runner.config.tw_costs,
        gvt_interval=runner.config.gvt_interval,
        optimism_window=runner.config.optimism_window,
        migration_threshold=THRESHOLD,
    )
    return TimeWarpSimulator(
        runner.circuit(CIRCUIT),
        runner.partition(CIRCUIT, algorithm, NODES),
        runner.stimulus(CIRCUIT),
        machine,
    ).run()


def test_adaptive_table2(benchmark, runner, artifact_dir):
    seq = runner.sequential(CIRCUIT)

    def build_table():
        data = {}
        rows = []
        for algorithm in ALGORITHMS:
            static = runner.run(CIRCUIT, algorithm, NODES)
            adaptive = _adaptive(runner, algorithm)
            assert adaptive.final_values == seq.final_values, algorithm
            data[algorithm] = (static, adaptive)
            rows.append(
                (
                    algorithm,
                    f"{static.execution_time:.2f}",
                    f"{adaptive.execution_time:.2f}",
                    adaptive.migrations,
                    f"{(static.execution_time - adaptive.execution_time) / static.execution_time:+.1%}",
                )
            )
        table = format_table(
            ["algorithm", "static (s)", "adaptive (s)", "LP moves", "gain"],
            rows,
            title=f"Table 2 adaptive ({CIRCUIT}, {NODES} nodes, threshold "
            f"{THRESHOLD}, {runner.config.describe()})",
        )
        return table, data

    table, data = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "adaptive_table2.txt", table)

    # The worst static partition is rescued by runtime repartitioning:
    # its adaptive rerun beats its own static time.
    worst = max(data, key=lambda a: data[a][0].execution_time)
    worst_static, worst_adaptive = data[worst]
    assert worst_adaptive.migrations > 0, worst
    assert worst_adaptive.execution_time < worst_static.execution_time, (
        f"{worst}: adaptive {worst_adaptive.execution_time:.2f} !< "
        f"static {worst_static.execution_time:.2f}"
    )
