"""A7 — the multilevel algorithm against the wider literature.

Extends the paper's six-way study with the related-work strategies its
Section 2 surveys (strings, annealing, spectral bisection, corolla,
CPP) and its Section 6 future-work variant (activity-weighted
multilevel). Asserts:

- spectral bisection and multilevel form the low-cut tier (the
  comparison that motivated multilevel methods in [8, 12]), with
  multilevel faster to compute than spectral;
- the activity-weighted variant sends fewer actual messages than plain
  multilevel during simulation (the §6 hypothesis).
"""

from conftest import save_artifact

from repro.partition.metrics import partition_quality
from repro.partition.registry import all_partitioners, get_partitioner
from repro.utils.tables import format_table
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine


def test_extended_field(benchmark, runner, artifact_dir):
    circuit = runner.circuit("s9234")
    seq = runner.sequential("s9234")

    def build_table():
        rows = []
        data = {}
        for name in all_partitioners():
            partitioner = get_partitioner(
                name, seed=runner.config.partition_seed
            )
            assignment = partitioner.partition(circuit, 8)
            quality = partition_quality(assignment)
            machine = VirtualMachine(
                num_nodes=8,
                cost_model=runner.config.tw_costs,
                gvt_interval=runner.config.gvt_interval,
                optimism_window=runner.config.optimism_window,
            )
            result = TimeWarpSimulator(
                circuit, assignment, runner.stimulus("s9234"), machine
            ).run()
            assert result.final_values == seq.final_values
            data[name] = (quality, result, partitioner.last_runtime)
            rows.append(
                (
                    name,
                    quality.edge_cut,
                    f"{quality.load_imbalance:.2f}",
                    f"{partitioner.last_runtime * 1e3:.0f}",
                    f"{result.execution_time:.2f}",
                    result.app_messages,
                    result.rollbacks,
                )
            )
        rows.sort(key=lambda r: float(r[4]))
        table = format_table(
            ["algorithm", "edge cut", "imbalance", "part ms",
             "sim time", "messages", "rollbacks"],
            rows,
            title="A7: extended field, s9234 x 8 nodes "
            f"({runner.config.describe()})",
        )
        return table, data

    table, data = benchmark.pedantic(build_table, rounds=1, iterations=1)
    save_artifact(artifact_dir, "extended_field.txt", table)

    cuts = {name: d[0].edge_cut for name, d in data.items()}
    low_tier = sorted(cuts, key=cuts.get)[:3]
    assert "Multilevel" in low_tier or "ActivityML" in low_tier
    assert "Spectral" in low_tier

    ml_runtime = data["Multilevel"][2]
    spectral_runtime = data["Spectral"][2]
    # Wall-clock on a shared machine is noisy; the claim is simply that
    # the linear-time heuristic beats the eigenvector method.
    assert ml_runtime < spectral_runtime

    assert (
        data["ActivityML"][1].app_messages
        < data["Multilevel"][1].app_messages
    )
