"""Figure 4 — s9234 execution time vs node count.

Shape claims asserted (Section 5): the multilevel algorithm
outperforms every other strategy beyond 4 nodes, and parallel
simulation beats the sequential baseline well before 8 nodes.
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS
from repro.harness.figures import FIGURE_NODE_COUNTS, fig4_series, generate_fig4


def test_fig4(benchmark, runner, artifact_dir):
    rendered = benchmark.pedantic(
        generate_fig4, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "fig4.txt", rendered)

    if runner.config.scale < 0.1:
        return  # see bench_table2: claims need enough gates per node

    series = fig4_series(runner)
    for nodes in (5, 6, 7, 8):
        idx = FIGURE_NODE_COUNTS.index(nodes)
        ml = series["Multilevel"][idx]
        others = [series[a][idx] for a in ALGORITHMS if a != "Multilevel"]
        assert ml <= min(others) * 1.05, f"nodes={nodes}"

    # Parallel multilevel beats sequential from 2 nodes on.
    seq = series["Sequential"][0]
    assert series["Multilevel"][FIGURE_NODE_COUNTS.index(2)] < seq

    # Monotone-ish scaling: 8 nodes is much faster than 2.
    two = series["Multilevel"][FIGURE_NODE_COUNTS.index(2)]
    eight = series["Multilevel"][FIGURE_NODE_COUNTS.index(8)]
    assert eight < 0.75 * two
