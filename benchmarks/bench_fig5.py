"""Figure 5 — s9234 application-message count vs node count.

Shape claims asserted (Section 5): the multilevel partition needs the
fewest inter-node messages in the 4-8 node region; the topological
partition, which splits almost every signal, needs the most; a single
node exchanges no messages at all.
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS
from repro.harness.figures import FIGURE_NODE_COUNTS, fig5_series, generate_fig5


def test_fig5(benchmark, runner, artifact_dir):
    rendered = benchmark.pedantic(
        generate_fig5, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "fig5.txt", rendered)

    series = fig5_series(runner)
    one = FIGURE_NODE_COUNTS.index(1)
    for algorithm in ALGORITHMS:
        assert series[algorithm][one] == 0

    for nodes in (4, 6, 8):
        idx = FIGURE_NODE_COUNTS.index(nodes)
        ml = series["Multilevel"][idx]
        others = [series[a][idx] for a in ALGORITHMS if a != "Multilevel"]
        assert ml < min(others), f"nodes={nodes}"
        assert series["Topological"][idx] == max(
            series[a][idx] for a in ALGORITHMS
        ), f"nodes={nodes}"
