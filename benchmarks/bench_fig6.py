"""Figure 6 — s9234 rollback count vs node count.

Shape claims asserted (Section 5): no rollbacks on one node; rollback
pressure grows with the node count; and the low-concurrency Cluster
partition rolls back far more than the concurrency-rich Random
partition at high node counts. (The paper additionally plots the
multilevel curve lowest; under this machine model its low message rate
lets nodes desynchronise, so it lands mid-pack — the deviation is
analysed in EXPERIMENTS.md.)
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS
from repro.harness.figures import FIGURE_NODE_COUNTS, fig6_series, generate_fig6


def test_fig6(benchmark, runner, artifact_dir):
    rendered = benchmark.pedantic(
        generate_fig6, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "fig6.txt", rendered)

    series = fig6_series(runner)
    one = FIGURE_NODE_COUNTS.index(1)
    for algorithm in ALGORITHMS:
        assert series[algorithm][one] == 0

    two = FIGURE_NODE_COUNTS.index(2)
    eight = FIGURE_NODE_COUNTS.index(8)
    for algorithm in ALGORITHMS:
        assert series[algorithm][eight] > series[algorithm][two], algorithm
    for nodes in (6, 8):
        idx = FIGURE_NODE_COUNTS.index(nodes)
        assert series["Cluster"][idx] > series["Random"][idx], nodes
