"""Pinned-seed hot-path workloads for the benchmark-regression harness.

Every workload here freezes the complete world — circuit (name, scale,
generator seed), stimulus (cycles, period, seed, activity), partition
(algorithm, seed, k) and machine policies — so two runs of the same
workload on the same interpreter do identical work and their elapsed
times are comparable across commits. ``tools/bench_runner.py`` runs
them, records events/sec and peak history into the ``BENCH_<n>.json``
trajectory at the repo root, and gates regressions.

The module is import-light on purpose: building a workload's world is
deferred to :func:`build_world` so ``--list`` stays instant.

Workloads:

- ``s27``            — the real embedded netlist, all four engines
                       (sequential, virtual Time Warp, process backend
                       on both wire transports); small enough for CI
                       smoke.
- ``synthetic-s5378``— the scaled synthetic s5378 equivalent, sequential
                       + virtual Time Warp; the mid-size CI guard.
- ``s9234-table2-8`` — the paper's Table 2 cell this PR's acceptance
                       criterion measures: synthetic s9234 at harness
                       scale, Multilevel partition, 8 nodes, bounded
                       optimism; virtual Time Warp only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuit.iscas89 import load_benchmark
from repro.partition.registry import get_partitioner
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.backend import ProcessTimeWarpSimulator

#: Engines a workload may request. "process" (queue transport) and
#: "process-shm" (shared-memory ring transport) spawn real OS processes
#: and measure real wall-clock; the other two are single-process.
ENGINES = ("sequential", "timewarp", "process", "process-shm")


@dataclass(frozen=True)
class Workload:
    """One frozen benchmark configuration."""

    name: str
    circuit: str
    scale: float
    circuit_seed: int
    num_cycles: int
    period: int
    stimulus_seed: int
    activity: float
    partitioner: str
    partition_seed: int
    k: int
    engines: tuple[str, ...]
    machine: dict = field(default_factory=dict)


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="s27",
            circuit="s27",
            scale=1.0,
            circuit_seed=2000,
            num_cycles=40,
            period=100,
            stimulus_seed=7,
            activity=0.5,
            partitioner="Multilevel",
            partition_seed=3,
            k=2,
            engines=("sequential", "timewarp", "process", "process-shm"),
            machine={"gvt_interval": 128, "optimism_window": 100},
        ),
        Workload(
            name="synthetic-s5378",
            circuit="s5378",
            scale=0.2,
            circuit_seed=2000,
            num_cycles=40,
            period=100,
            stimulus_seed=7,
            activity=0.5,
            partitioner="Multilevel",
            partition_seed=3,
            k=4,
            engines=("sequential", "timewarp"),
            machine={"gvt_interval": 512, "optimism_window": 100},
        ),
        Workload(
            name="s9234-table2-8",
            circuit="s9234",
            scale=0.12,
            circuit_seed=2000,
            num_cycles=60,
            period=100,
            stimulus_seed=7,
            activity=0.5,
            partitioner="Multilevel",
            partition_seed=3,
            k=8,
            engines=("timewarp",),
            machine={"gvt_interval": 512, "optimism_window": 100},
        ),
    )
}


def build_world(workload: Workload) -> tuple:
    """(circuit, stimulus, assignment) for *workload* — deterministic."""
    circuit = load_benchmark(
        workload.circuit, scale=workload.scale, seed=workload.circuit_seed
    )
    stimulus = RandomStimulus(
        circuit,
        num_cycles=workload.num_cycles,
        period=workload.period,
        seed=workload.stimulus_seed,
        activity=workload.activity,
    )
    assignment = get_partitioner(
        workload.partitioner, seed=workload.partition_seed
    ).partition(circuit, workload.k)
    return circuit, stimulus, assignment


def _machine(workload: Workload, *, process: bool = False) -> VirtualMachine:
    kwargs = dict(workload.machine)
    if process:
        # The process backend honours only these knobs (its cost and
        # network are real, and it implements no lazy/checkpoint
        # policies).
        kwargs = {
            key: value
            for key, value in kwargs.items()
            if key in (
                "gvt_interval",
                "optimism_window",
                "migration_threshold",
                "migration_fraction",
            )
        }
    return VirtualMachine(num_nodes=workload.k, **kwargs)


def run_engine(engine: str, workload: Workload, world: tuple) -> dict:
    """One timed run; returns the measurement record for the engine.

    The record is what lands in ``BENCH_<n>.json``:
    ``events`` (processed events — a determinism check between runs),
    ``elapsed_sec`` (host wall-clock of ``run()``), ``events_per_sec``
    and ``peak_history`` (``None`` for the sequential engine, which
    keeps no rollback history).
    """
    circuit, stimulus, assignment = world
    if engine == "sequential":
        simulator = SequentialSimulator(circuit, stimulus)
    elif engine == "timewarp":
        simulator = TimeWarpSimulator(
            circuit, assignment, stimulus, _machine(workload)
        )
    elif engine in ("process", "process-shm"):
        simulator = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, _machine(workload, process=True),
            transport="shm" if engine == "process-shm" else "queue",
        )
    else:
        raise ValueError(f"unknown engine {engine!r}")
    t0 = time.perf_counter()
    result = simulator.run()
    elapsed = time.perf_counter() - t0
    return {
        "events": result.events_processed,
        "elapsed_sec": round(elapsed, 6),
        "events_per_sec": round(result.events_processed / elapsed, 1),
        "peak_history": getattr(result, "peak_history", None),
    }


def run_workload(workload: Workload, *, repeats: int = 3) -> dict:
    """Measure every engine of *workload*; best-of-*repeats* per engine.

    Best-of (not mean) because the quantity under regression control is
    the code's attainable throughput; scheduler noise only ever slows a
    run down, so the fastest repeat is the least noisy estimate.
    """
    world = build_world(workload)
    measurements: dict[str, dict] = {}
    for engine in workload.engines:
        best: dict | None = None
        for _ in range(repeats):
            record = run_engine(engine, workload, world)
            # The single-process engines are deterministic: a varying
            # event count means the workload is not actually pinned.
            # The process backends' counts legitimately vary (real
            # rollback races), so they are exempt.
            if (
                not engine.startswith("process")
                and best is not None
                and record["events"] != best["events"]
            ):
                raise RuntimeError(
                    f"{workload.name}/{engine}: event count varied between "
                    f"repeats ({best['events']} vs {record['events']}) — "
                    "workload is not pinned"
                )
            if best is None or record["elapsed_sec"] < best["elapsed_sec"]:
                best = record
        measurements[engine] = best
    return measurements
