"""Microbenchmarks: partitioner and kernel throughput.

Unlike the artifact benches (rounds=1 regeneration of tables/figures),
these use pytest-benchmark's statistical timing — they are the numbers
to watch when optimising the library itself.
"""

import pytest

from repro.circuit.iscas89 import load_benchmark
from repro.harness.config import ALGORITHMS
from repro.partition.registry import get_partitioner
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine


@pytest.fixture(scope="module")
def circuit():
    return load_benchmark("s9234", scale=0.1)


@pytest.fixture(scope="module")
def stimulus(circuit):
    return RandomStimulus(circuit, num_cycles=20, period=100, seed=7)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_partitioner_runtime(benchmark, circuit, algorithm):
    """Wall-clock of one 8-way partition (the paper stresses the
    multilevel heuristic is a fast linear-time method)."""
    partitioner = get_partitioner(algorithm, seed=3)
    result = benchmark(partitioner.partition, circuit, 8)
    assert result.k == 8


def test_sequential_kernel_throughput(benchmark, circuit, stimulus):
    """Events/second of the sequential simulator."""
    result = benchmark(lambda: SequentialSimulator(circuit, stimulus).run())
    assert result.events_processed > 0


def test_timewarp_kernel_throughput(benchmark, circuit, stimulus):
    """Events/second of the Time Warp executive (4 nodes)."""
    assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 4)
    machine = VirtualMachine(num_nodes=4, optimism_window=100)

    def run():
        return TimeWarpSimulator(circuit, assignment, stimulus, machine).run()

    result = benchmark(run)
    assert result.events_processed > 0
