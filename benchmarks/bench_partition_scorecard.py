"""The per-partitioner forensics scorecard as a benchmark artifact.

The paper's Tables 2-4 correlate partition quality with Time Warp
dynamics; this bench renders the same correlation from *traced* runs —
every rollback cascade-attributed to the straggler that rooted it, the
wasted-event totals asserted to reconcile exactly with the kernel
counters — so the artifact is an audited version of the paper's story:
smaller cuts => fewer boundary stragglers => less wasted work.
"""

from __future__ import annotations

import os

from conftest import save_artifact

from repro.obs import (
    TraceWriter,
    analyze_trace,
    read_trace,
    render_analysis,
    render_scorecard,
    scorecard_row,
)
from repro.harness.config import ALGORITHMS
from repro.warped import TimeWarpSimulator, VirtualMachine

CIRCUIT = "s9234"
NODES = 4


def test_partition_scorecard(benchmark, runner, artifact_dir):
    def sweep():
        circuit = runner.circuit(CIRCUIT)
        stimulus = runner.stimulus(CIRCUIT)
        rows = []
        forensics = []
        machine = VirtualMachine(
            num_nodes=NODES,
            cost_model=runner.config.tw_costs,
            gvt_interval=runner.config.gvt_interval,
            optimism_window=runner.config.optimism_window,
        )
        for algorithm in ALGORITHMS:
            assignment = runner.partition(CIRCUIT, algorithm, NODES)
            trace_path = os.path.join(
                artifact_dir, f"scorecard_{CIRCUIT}.{algorithm}.jsonl"
            )
            with TraceWriter(trace_path) as tracer:
                result = TimeWarpSimulator(
                    circuit, assignment, stimulus, machine, tracer=tracer
                ).run()
            records = read_trace(trace_path)
            # Raises unless every rollback is cascade-attributed and
            # the wasted totals reconcile with the kernel counters.
            rows.append(scorecard_row(result, assignment, records))
            forensics.append(render_analysis(
                analyze_trace(
                    records, circuit=circuit, assignment=assignment,
                    cost_model=machine.cost_model,
                ),
                title=f"{CIRCUIT} / {algorithm} x{NODES}",
            ))
        return rows, forensics

    rows, forensics = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(row["reconciled"] for row in rows)
    # The paper's correlation, asserted directionally on the extremes:
    # the best-cut partitioner wastes no more events per cut edge than
    # the worst-cut one wastes in total proportion... kept as a rendered
    # artifact rather than a brittle numeric assertion.
    scorecard = render_scorecard(
        rows,
        title=f"{CIRCUIT} x{NODES} nodes ({runner.config.describe()})",
    )
    save_artifact(artifact_dir, "partition_scorecard.txt", scorecard)
    save_artifact(
        artifact_dir, "partition_scorecard_forensics.txt",
        "\n\n".join(forensics),
    )
