"""Process backend vs. virtual backend on the benchmark circuits.

Not a paper artifact — the paper's numbers are modelled seconds from
the virtual machine — but the sanity sweep for the real multiprocess
backend at benchmark scale: for each circuit, run the multilevel
partition on real OS processes, assert the committed results match the
(cached) sequential oracle, and record measured wall-clock alongside
the modelled time so the two substrates can be eyeballed side by side.
"""

from __future__ import annotations

import os

from conftest import save_artifact

from repro.harness.config import TABLE2_NODE_COUNTS
from repro.obs import read_trace, render_trace_summary, summarize_trace
from repro.utils.tables import format_table
from repro.warped import ProcessTimeWarpSimulator, VirtualMachine

NODES = 4


def test_process_backend_sweep(benchmark, runner, artifact_dir):
    def sweep():
        rows = []
        reports = []
        for circuit_name in TABLE2_NODE_COUNTS:
            circuit = runner.circuit(circuit_name)
            stimulus = runner.stimulus(circuit_name)
            sequential = runner.sequential(circuit_name)
            assignment = runner.partition(circuit_name, "Multilevel", NODES)
            machine = VirtualMachine(
                num_nodes=NODES, cost_model=runner.config.tw_costs
            )
            trace_path = os.path.join(
                artifact_dir, f"process_{circuit_name}.trace.jsonl"
            )
            result = ProcessTimeWarpSimulator(
                circuit, assignment, stimulus, machine,
                trace_path=trace_path,
            ).run()
            assert result.final_values == sequential.final_values
            assert result.committed_captures == sequential.committed_captures
            summary = summarize_trace(read_trace(trace_path))
            # The trace is a faithful account of the run, not a sample:
            # per-node rollback records and concluded GVT rounds must
            # sum to exactly what the result reports.
            assert summary["rollbacks_total"] == result.rollbacks
            assert summary["gvt_rounds"] == result.gvt_rounds
            reports.append(
                render_trace_summary(summary, title=f"{circuit_name} x{NODES}")
            )
            virtual = runner.record(circuit_name, "Multilevel", NODES)
            rows.append((
                circuit.name,
                NODES,
                f"{virtual.execution_time:.2f}",
                f"{result.execution_time:.2f}",
                result.events_processed,
                result.rollbacks,
                result.app_messages + result.anti_messages,
            ))
        return rows, reports

    rows, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["Circuit", "Nodes", "Modelled s", "Measured s",
         "Events", "Rollbacks", "Messages"],
        rows,
        title="Process backend (real OS processes, Multilevel partition) "
        f"({runner.config.describe()})",
    )
    save_artifact(artifact_dir, "process_backend.txt", table)
    save_artifact(
        artifact_dir,
        "process_backend_trace.txt",
        "\n\n".join(reports),
    )
