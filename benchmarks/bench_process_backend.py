"""Process backend vs. virtual backend on the benchmark circuits.

Not a paper artifact — the paper's numbers are modelled seconds from
the virtual machine — but the sanity sweep for the real multiprocess
backend at benchmark scale: for each circuit, run the multilevel
partition on real OS processes, assert the committed results match the
(cached) sequential oracle, and record measured wall-clock alongside
the modelled time so the two substrates can be eyeballed side by side.
"""

from __future__ import annotations

from conftest import save_artifact

from repro.harness.config import TABLE2_NODE_COUNTS
from repro.utils.tables import format_table
from repro.warped import ProcessTimeWarpSimulator, VirtualMachine

NODES = 4


def test_process_backend_sweep(benchmark, runner, artifact_dir):
    def sweep():
        rows = []
        for circuit_name in TABLE2_NODE_COUNTS:
            circuit = runner.circuit(circuit_name)
            stimulus = runner.stimulus(circuit_name)
            sequential = runner.sequential(circuit_name)
            assignment = runner.partition(circuit_name, "Multilevel", NODES)
            machine = VirtualMachine(
                num_nodes=NODES, cost_model=runner.config.tw_costs
            )
            result = ProcessTimeWarpSimulator(
                circuit, assignment, stimulus, machine
            ).run()
            assert result.final_values == sequential.final_values
            assert result.committed_captures == sequential.committed_captures
            virtual = runner.record(circuit_name, "Multilevel", NODES)
            rows.append((
                circuit.name,
                NODES,
                f"{virtual.execution_time:.2f}",
                f"{result.execution_time:.2f}",
                result.events_processed,
                result.rollbacks,
                result.app_messages + result.anti_messages,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["Circuit", "Nodes", "Modelled s", "Measured s",
         "Events", "Rollbacks", "Messages"],
        rows,
        title="Process backend (real OS processes, Multilevel partition) "
        f"({runner.config.describe()})",
    )
    save_artifact(artifact_dir, "process_backend.txt", table)
