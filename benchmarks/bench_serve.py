"""Serving-path benchmark: what the job server's machinery buys.

One pinned s27 job executed three ways, ``jobs`` times each:

- ``cold-spawn``    — a fresh :class:`ProcessTimeWarpSimulator` per
                      job: full process spawn, transport construction
                      and teardown every time (the pre-serve cost).
- ``warm-ring``     — one :class:`WorkerRing` spawned up front, every
                      job reuses its processes (the pool's steady
                      state; spawn and one warm-up job are untimed).
- ``served-cached`` — repeat submissions through a
                      :class:`JobManager` whose result cache is
                      already populated (the repeat-traffic fast
                      path; no simulation runs at all).

The records land in the same ``BENCH_<n>.json`` trajectory as the
hot-path workloads (``tools/bench_runner.py`` runs both modules), so
the 20% events/sec gate covers the serving path too.  Run standalone
(``python benchmarks/bench_serve.py``) to print the comparison and
enforce the warm-vs-cold speedup floor.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:  # standalone invocation (CI runs it directly)
    sys.path.insert(0, _SRC)

from repro.circuit.iscas89 import load_benchmark
from repro.partition.registry import get_partitioner
from repro.serve.jobs import JobManager, JobRequest, JobState
from repro.sim.stimulus import RandomStimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.backend import ProcessTimeWarpSimulator
from repro.warped.parallel.ring import WorkerRing

#: Execution modes, in the order records are reported.
MODES = ("cold-spawn", "warm-ring", "served-cached")

#: The acceptance floor enforced by ``main``: a warm ring must deliver
#: at least this multiple of the cold-spawn repeat-job throughput.
MIN_WARM_SPEEDUP = 5.0


@dataclass(frozen=True)
class ServeWorkload:
    """One frozen serving benchmark (same pinning rules as hot-path)."""

    name: str
    circuit: str = "s27"
    scale: float = 1.0
    circuit_seed: int = 2000
    #: Deliberately tiny: the quantity under test is per-job *overhead*
    #: (spawn/transport vs reuse/cache), so simulation time is kept
    #: small relative to it — the serving scenario is exactly this
    #: small-repeat-job traffic.
    num_cycles: int = 6
    period: int = 100
    stimulus_seed: int = 7
    activity: float = 0.5
    partitioner: str = "Multilevel"
    partition_seed: int = 3
    k: int = 2
    transport: str = "shm"
    #: Timed repeat jobs per mode (identical work in every mode).
    jobs: int = 12
    gvt_interval: int = 128
    optimism_window: int = 100
    engines: tuple[str, ...] = MODES


WORKLOADS: dict[str, ServeWorkload] = {
    w.name: w for w in (ServeWorkload(name="serve-s27"),)
}


def build_world(workload: ServeWorkload) -> tuple:
    circuit = load_benchmark(
        workload.circuit, scale=workload.scale, seed=workload.circuit_seed
    )
    stimulus = RandomStimulus(
        circuit,
        num_cycles=workload.num_cycles,
        period=workload.period,
        seed=workload.stimulus_seed,
        activity=workload.activity,
    )
    assignment = get_partitioner(
        workload.partitioner, seed=workload.partition_seed
    ).partition(circuit, workload.k)
    machine = VirtualMachine(
        num_nodes=workload.k,
        gvt_interval=workload.gvt_interval,
        optimism_window=workload.optimism_window,
    )
    return circuit, stimulus, assignment, machine


def _request(workload: ServeWorkload) -> JobRequest:
    return JobRequest(
        circuit=workload.circuit,
        scale=workload.scale,
        circuit_seed=workload.circuit_seed,
        algorithm=workload.partitioner,
        partition_seed=workload.partition_seed,
        nodes=workload.k,
        num_cycles=workload.num_cycles,
        period=workload.period,
        activity=workload.activity,
        stimulus_seed=workload.stimulus_seed,
        gvt_interval=workload.gvt_interval,
        optimism_window=workload.optimism_window,
    )


def run_engine(engine: str, workload: ServeWorkload, world: tuple) -> dict:
    """Time ``workload.jobs`` repeat jobs in *engine* mode.

    Jobs are timed individually; ``sec_per_job`` is the **fastest**
    job of the window.  Scheduler noise on a shared host only ever
    slows a job down, so the minimum is the least noisy estimate of
    attainable per-job cost — the same best-of policy the hot-path
    bench applies across repeats, pushed down to job granularity
    (the speedup gate divides two of these minima).
    """
    circuit, stimulus, assignment, machine = world
    events = 0
    job_times: list[float] = []

    def timed(run_one) -> None:
        nonlocal events
        t0 = time.perf_counter()
        result = run_one()
        job_times.append(time.perf_counter() - t0)
        events += result.events_processed

    if engine == "cold-spawn":
        for _ in range(workload.jobs):
            timed(
                lambda: ProcessTimeWarpSimulator(
                    circuit, assignment, stimulus, machine,
                    timeout=60, transport=workload.transport,
                ).run()
            )
    elif engine == "warm-ring":
        with WorkerRing(workload.k, transport=workload.transport) as ring:
            ring.run_job(circuit, assignment, stimulus, machine, timeout=60)
            for _ in range(workload.jobs):
                timed(
                    lambda: ring.run_job(
                        circuit, assignment, stimulus, machine, timeout=60
                    )
                )
    elif engine == "served-cached":
        manager = JobManager(transport=workload.transport, max_concurrency=1)
        try:
            request = _request(workload)
            first = manager.wait(manager.submit(request).id, timeout=120)
            assert first.state is JobState.DONE, first.error

            def cached_hit():
                job = manager.wait(manager.submit(request).id, timeout=120)
                assert job.cache == {"result": "hit"}, job.cache
                return job.result

            for _ in range(workload.jobs):
                timed(cached_hit)
        finally:
            manager.close()
    else:
        raise ValueError(f"unknown serve mode {engine!r}")
    elapsed = sum(job_times)
    return {
        "events": events,
        "jobs": workload.jobs,
        "elapsed_sec": round(elapsed, 6),
        "events_per_sec": round(events / elapsed, 1),
        "sec_per_job": round(min(job_times), 6),
    }


def run_workload(workload: ServeWorkload, *, repeats: int = 3) -> dict:
    """Best-of-*repeats* per mode (same policy as the hot-path bench)."""
    world = build_world(workload)
    measurements: dict[str, dict] = {}
    for engine in workload.engines:
        best: dict | None = None
        floor = None
        for _ in range(repeats):
            record = run_engine(engine, workload, world)
            floor = (
                record["sec_per_job"]
                if floor is None
                else min(floor, record["sec_per_job"])
            )
            if best is None or record["elapsed_sec"] < best["elapsed_sec"]:
                best = record
        best["sec_per_job"] = floor
        measurements[engine] = best
    return measurements


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="serving-path benchmark (cold vs warm vs cached)"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_WARM_SPEEDUP,
        help="required warm-ring/cold-spawn throughput multiple "
        f"(default {MIN_WARM_SPEEDUP:g}; 0 disables)",
    )
    args = parser.parse_args()
    status = 0
    for name, workload in sorted(WORKLOADS.items()):
        measurements = run_workload(workload, repeats=args.repeats)
        for engine in workload.engines:
            record = measurements[engine]
            print(
                f"{name:12s} {engine:14s} {record['sec_per_job']*1e3:>9.1f} "
                f"ms/job  {record['events_per_sec']:>12,.0f} ev/s"
            )
        speedup = (
            measurements["cold-spawn"]["sec_per_job"]
            / measurements["warm-ring"]["sec_per_job"]
        )
        verdict = "ok" if speedup >= args.min_speedup else "FAIL"
        if speedup < args.min_speedup:
            status = 1
        print(
            f"{name:12s} warm-ring speedup over cold-spawn: "
            f"{speedup:.1f}x (floor {args.min_speedup:g}x) {verdict}"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
