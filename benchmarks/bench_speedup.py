"""E1 — multilevel speedup and parallel efficiency.

Derived view over the Table 2 runs (cached, so this bench is nearly
free). Asserts the scalability shape: speedup grows monotonically in
the node count for every circuit, exceeds 2x at 8 nodes (the paper's
headline), and parallel efficiency decays as nodes are added (the
communication/rollback tax).
"""

from collections import defaultdict

from conftest import save_artifact

from repro.harness.extensions import generate_speedup, speedup_rows


def test_speedup(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        generate_speedup, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "speedup.txt", table)

    by_circuit = defaultdict(list)
    for circuit, nodes, _time, speedup, efficiency in speedup_rows(runner):
        by_circuit[circuit].append((nodes, speedup, efficiency))

    for circuit, points in by_circuit.items():
        points.sort()
        speedups = [s for _, s, _ in points]
        efficiencies = [e for _, _, e in points]
        assert speedups == sorted(speedups), f"{circuit}: speedup not monotone"
        assert speedups[-1] > 2.0, f"{circuit}: <2x at 8 nodes"
        # efficiency decays from few to many nodes
        assert efficiencies[-1] < efficiencies[0], circuit
