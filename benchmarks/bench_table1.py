"""Table 1 — benchmark circuit characteristics.

Regenerates the paper's Table 1 and checks the synthetic circuits match
the published counts exactly at full scale (proportionally otherwise).
"""

from conftest import save_artifact

from repro.harness.table1 import PAPER_TABLE1, generate_table1, table1_rows


def test_table1(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        generate_table1, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "table1.txt", table)

    scale = runner.config.scale
    for circuit, inputs, gates, outputs in table1_rows(runner):
        base = circuit.split("@")[0]
        p_in, p_gates, p_out = PAPER_TABLE1[base]
        if scale == 1.0:
            assert (inputs, gates, outputs) == (p_in, p_gates, p_out)
        else:
            assert gates == max(8, round(p_gates * scale))
