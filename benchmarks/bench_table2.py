"""Table 2 — simulation time per partitioning algorithm.

Regenerates the paper's central table and asserts its shape claims:

- every circuit runs in less than half its sequential time on 8 nodes
  with the multilevel partition (the paper's headline);
- the multilevel algorithm is the fastest (or within 15% of the
  fastest) strategy on >= 4 nodes for every circuit, and strictly the
  fastest on s9234 — the paper itself has one row (s15850, 6 nodes,
  DFS 906s vs multilevel 944s) where another strategy edges it out;
- the topological partition is never the winner (its communication
  penalty, Section 5).
"""

from conftest import save_artifact

from repro.harness.config import ALGORITHMS, TABLE2_NODE_COUNTS
from repro.harness.table2 import generate_table2, winners_by_row


def test_table2(benchmark, runner, artifact_dir):
    table = benchmark.pedantic(
        generate_table2, args=(runner,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, "table2.txt", table)

    if runner.config.scale < 0.1:
        # Tiny debug scales leave too few gates per node for the paper's
        # quantitative claims; the artifact itself is still generated.
        return

    # Headline: multilevel on 8 nodes halves the sequential time.
    for circuit in TABLE2_NODE_COUNTS:
        seq = runner.sequential_time(circuit)
        ml = runner.record(circuit, "Multilevel", 8).execution_time
        assert ml < 0.5 * seq, f"{circuit}: {ml:.2f} !< 0.5 * {seq:.2f}"

    # Multilevel wins (or near-wins) every >=4-node row.
    for circuit, node_counts in TABLE2_NODE_COUNTS.items():
        for nodes in node_counts:
            if nodes < 4:
                continue
            ml = runner.record(circuit, "Multilevel", nodes).execution_time
            best = min(
                runner.record(circuit, a, nodes).execution_time
                for a in ALGORITHMS
            )
            tolerance = 1.0 if circuit == "s9234" else 1.15
            assert ml <= best * tolerance, (
                f"{circuit}@{nodes}: Multilevel {ml:.2f} vs best {best:.2f}"
            )

    # Topological never wins a row.
    winners = winners_by_row(runner)
    assert "Topological" not in winners.values()
