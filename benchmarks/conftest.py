"""Shared fixtures for the benchmark suite.

One session-scoped :class:`ExperimentRunner` backs every artifact
bench, so Table 2 and Figures 4-6 share their simulation runs exactly
as the paper's numbers come from one experiment campaign. Rendered
artifacts are also written to ``benchmarks/out/`` for inspection.

Scaling: benches run at the harness default (12% scale, 60 cycles)
unless overridden — ``REPRO_FULL=1`` runs paper-size circuits,
``REPRO_SCALE``/``REPRO_CYCLES`` set explicit values.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentConfig.from_env())


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n")
    print(f"\n{text}\n")
