#!/usr/bin/env python3
"""Activity-aware coarsening — implementing the paper's future work.

Section 6 of the paper: "we are currently investigating the use of
activity levels of communication to make better decisions while
coarsening". This example measures per-signal activity with a short
profiling run, feeds it into the multilevel phases as edge weights,
and shows the payoff: the activity-weighted partition cuts *more*
signals but *colder* ones, so the simulation exchanges fewer actual
messages and rolls back less.

Run:  python examples/activity_partitioning.py
"""

from repro.circuit import load_benchmark
from repro.partition import MultilevelPartitioner
from repro.partition.extra_activity import ActivityMultilevelPartitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.sim.activity import profile_activity
from repro.utils.tables import format_table
from repro.warped import TimeWarpSimulator, VirtualMachine


def main() -> None:
    circuit = load_benchmark("s9234", scale=0.12)
    stimulus = RandomStimulus(circuit, num_cycles=60, period=100, seed=7)
    seq = SequentialSimulator(circuit, stimulus).run()

    # Profile 16 cycles of the production workload.
    profile = profile_activity(circuit, num_cycles=16, seed=7)
    hottest = max(range(circuit.num_gates), key=profile.changes.__getitem__)
    print(f"profiled {profile.total_changes} signal changes over "
          f"{profile.num_cycles} cycles; hottest signal "
          f"{circuit.gates[hottest].name!r} toggled "
          f"{profile.changes[hottest]} times\n")

    rows = []
    for label, partitioner in (
        ("Multilevel (paper)", MultilevelPartitioner(seed=3)),
        ("ActivityML (paper §6)",
         ActivityMultilevelPartitioner(seed=3, profile=profile)),
    ):
        assignment = partitioner.partition(circuit, 8)
        machine = VirtualMachine(num_nodes=8, optimism_window=100)
        result = TimeWarpSimulator(
            circuit, assignment, stimulus, machine
        ).run()
        assert result.final_values == seq.final_values
        cut = sum(
            1 for u, v in circuit.edges()
            if assignment[u] != assignment[v]
        )
        hot_cut = sum(
            profile.changes[u] for u, v in circuit.edges()
            if assignment[u] != assignment[v]
        )
        rows.append(
            (
                label,
                cut,
                hot_cut,
                result.app_messages,
                result.rollbacks,
                f"{result.execution_time:.2f}",
            )
        )
    print(
        format_table(
            ["partitioner", "signals cut", "activity cut (profiled)",
             "messages", "rollbacks", "time (s)"],
            rows,
            title="Raw cut vs activity-weighted cut, s9234 x 8 nodes",
        )
    )
    print("\nThe weighted variant accepts a larger raw cut in exchange "
          "for cutting\ncold signals — fewer real messages cross the "
          "network.")


if __name__ == "__main__":
    main()
