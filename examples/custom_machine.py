#!/usr/bin/env python3
"""Exploring the machine model: how hardware changes the winner.

The paper's conclusions are tied to its 1999 testbed (dual Pentium II
nodes on fast ethernet). The virtual machine makes the hardware a
parameter: this example re-runs the partitioner comparison under three
interconnects — the paper's ethernet, an order-of-magnitude slower
LAN, and a near-zero-latency SMP — showing how communication cost
moves the crossover between communication-bound (Random, Topological)
and concurrency-bound (DFS, Cluster) strategies.

Run:  python examples/custom_machine.py
"""

from repro.circuit import load_benchmark
from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.utils.tables import format_table
from repro.warped import (
    TimeWarpCostModel,
    TimeWarpSimulator,
    UniformNetwork,
    VirtualMachine,
)

MACHINES = {
    "fast ethernet (paper)": dict(
        network=UniformNetwork(150e-6),
        cost_model=TimeWarpCostModel(),
    ),
    "slow LAN (10x latency)": dict(
        network=UniformNetwork(1.5e-3),
        cost_model=TimeWarpCostModel(send_overhead=400e-6,
                                     recv_overhead=400e-6),
    ),
    "SMP bus (cheap messages)": dict(
        network=UniformNetwork(5e-6),
        cost_model=TimeWarpCostModel(send_overhead=5e-6, recv_overhead=5e-6),
    ),
}


def main() -> None:
    circuit = load_benchmark("s9234", scale=0.1)
    stimulus = RandomStimulus(circuit, num_cycles=50, period=100, seed=7)
    seq = SequentialSimulator(circuit, stimulus).run()
    nodes = 8

    rows = []
    for machine_name, kwargs in MACHINES.items():
        times = {}
        for algorithm in ("Random", "Topological", "DFS", "Multilevel"):
            assignment = get_partitioner(algorithm, seed=3).partition(
                circuit, nodes
            )
            machine = VirtualMachine(
                num_nodes=nodes, optimism_window=100, **kwargs
            )
            result = TimeWarpSimulator(
                circuit, assignment, stimulus, machine
            ).run()
            assert result.final_values == seq.final_values
            times[algorithm] = result.execution_time
        winner = min(times, key=times.get)
        rows.append(
            (
                machine_name,
                *(f"{times[a]:.2f}" for a in
                  ("Random", "Topological", "DFS", "Multilevel")),
                winner,
            )
        )
    print(
        format_table(
            ["machine", "Random", "Topological", "DFS", "Multilevel",
             "winner"],
            rows,
            title=f"Execution time (modelled s) on {nodes} nodes, by "
            "interconnect",
        )
    )
    print("\nCheap communication flattens the penalty of high edge cuts; "
          "expensive\ncommunication makes the multilevel cut advantage "
          "decisive.")


if __name__ == "__main__":
    main()
