#!/usr/bin/env python3
"""Compare all six partitioning strategies of the paper on one circuit.

Reproduces the experiment design of Section 5 in miniature: for every
algorithm and node count, run the Time Warp simulation and report the
three quantities the paper plots — execution time (Figure 4),
application messages (Figure 5) and rollbacks (Figure 6) — plus the
static edge cut that explains them.

Run:  python examples/partitioner_shootout.py [scale] [cycles]
"""

import sys

from repro.circuit import load_benchmark
from repro.partition import PARTITIONERS, get_partitioner, partition_quality
from repro.sim import RandomStimulus, SequentialSimulator
from repro.utils.tables import format_table
from repro.warped import TimeWarpSimulator, VirtualMachine


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    circuit = load_benchmark("s9234", scale=scale)
    stimulus = RandomStimulus(circuit, num_cycles=cycles, period=100, seed=7)
    seq = SequentialSimulator(circuit, stimulus).run()
    print(f"{circuit.name}: {circuit.num_gates} gates, sequential "
          f"baseline {seq.execution_time:.2f}s\n")

    rows = []
    for name in PARTITIONERS:
        for nodes in (2, 4, 8):
            assignment = get_partitioner(name, seed=3).partition(circuit, nodes)
            quality = partition_quality(assignment)
            machine = VirtualMachine(num_nodes=nodes, optimism_window=100)
            result = TimeWarpSimulator(
                circuit, assignment, stimulus, machine
            ).run()
            assert result.final_values == seq.final_values
            rows.append(
                (
                    name,
                    nodes,
                    quality.edge_cut,
                    f"{result.execution_time:.2f}",
                    f"{seq.execution_time / result.execution_time:.2f}x",
                    result.app_messages,
                    result.rollbacks,
                    f"{result.efficiency:.2f}",
                )
            )
    print(
        format_table(
            ["algorithm", "nodes", "edge cut", "time (s)", "speedup",
             "messages", "rollbacks", "efficiency"],
            rows,
            title="Partitioner comparison (every run checked against the "
            "sequential oracle)",
        )
    )

    # Bonus: per-node utilization heat strips for the best and worst
    # strategies — the straggler structure behind the numbers above.
    from repro.warped import render_utilization_timeline

    print()
    for name in ("Multilevel", "Topological"):
        assignment = get_partitioner(name, seed=3).partition(circuit, 8)
        machine = VirtualMachine(
            num_nodes=8, optimism_window=100, gvt_interval=128
        )
        result = TimeWarpSimulator(
            circuit, assignment, stimulus, machine
        ).run()
        print(render_utilization_timeline(result))
        print()


if __name__ == "__main__":
    main()
