#!/usr/bin/env python3
"""Quickstart: partition a circuit and compare sequential vs Time Warp.

Covers the core loop of the library in ~40 lines:
load a benchmark, partition it with the paper's multilevel algorithm,
run the optimistic parallel simulation on a modelled 8-node cluster,
and check it against the sequential baseline.

Run:  python examples/quickstart.py
"""

from repro.circuit import load_benchmark
from repro.partition import MultilevelPartitioner, partition_quality
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import TimeWarpSimulator, VirtualMachine


def main() -> None:
    # A structurally faithful 1/10-scale s9234 (use scale=1.0 for the
    # paper-size circuit; it is just slower).
    circuit = load_benchmark("s9234", scale=0.1)
    print(f"circuit: {circuit.name} — {circuit.num_gates} gates, "
          f"{circuit.num_edges} signals")

    # The paper's contribution: 3-phase multilevel partitioning.
    partitioner = MultilevelPartitioner(seed=42)
    assignment = partitioner.partition(circuit, k=8)
    quality = partition_quality(assignment)
    print(f"multilevel partition: edge cut {quality.edge_cut} "
          f"({quality.cut_fraction:.1%} of signals), "
          f"imbalance {quality.load_imbalance:.2f}")

    # Shared workload: 50 cycles of random vectors.
    stimulus = RandomStimulus(circuit, num_cycles=50, period=100, seed=7)

    # Sequential baseline.
    seq = SequentialSimulator(circuit, stimulus).run()
    print(f"sequential: {seq.events_processed} events, "
          f"modelled time {seq.execution_time:.2f}s")

    # Optimistic parallel run on a modelled 8-node cluster.
    machine = VirtualMachine(num_nodes=8, optimism_window=100)
    tw = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    print(f"time warp x8: {tw.summary()}")
    print(f"speedup: {seq.execution_time / tw.execution_time:.2f}x")

    # Optimism must never change results.
    assert tw.final_values == seq.final_values
    print("final signal values match the sequential oracle ✓")


if __name__ == "__main__":
    main()
