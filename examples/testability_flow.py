#!/usr/bin/env python3
"""Netlist utilities end-to-end: optimize, verify, fault-grade, dump.

Shows the supporting toolbox around the partitioning study:

1. build a known-function circuit (ripple-carry adder);
2. run the optimization pipeline (buffer sweep, structural hashing,
   dead-logic removal) and PROVE the result equivalent by
   random-vector equivalence checking;
3. grade a test-vector set with stuck-at fault simulation;
4. dump a waveform of the interesting signals as standard VCD.

Run:  python examples/testability_flow.py
"""

from repro.circuit import ripple_carry_adder
from repro.circuit.transform import optimize
from repro.faults import FaultSimulator, all_single_stuck_at
from repro.sim import (
    SequentialSimulator,
    Trace,
    VectorStimulus,
    write_vcd,
)
from repro.sim.equivalence import check_equivalence


def main() -> None:
    width = 4
    adder = ripple_carry_adder(width)
    print(f"built {adder.name}: {adder.num_gates} gates, "
          f"{adder.num_edges} signals")

    # --- optimize + verify
    optimized = optimize(adder)
    report = check_equivalence(adder, optimized, runs=8, cycles=10)
    print(f"optimized to {optimized.num_gates} gates; equivalence over "
          f"{report.vectors_tried} vectors: "
          f"{'PASS' if report else 'FAIL'}")
    assert report

    # --- fault-grade a vector set: walking ones plus corner cases
    vectors = []
    for bit in range(width):
        vectors.append({f"a{i}": int(i == bit) for i in range(width)}
                       | {f"b{i}": 0 for i in range(width)} | {"cin": 0})
        vectors.append({f"a{i}": 1 for i in range(width)}
                       | {f"b{i}": int(i == bit) for i in range(width)}
                       | {"cin": 1})
    vectors.append({f"a{i}": 1 for i in range(width)}
                   | {f"b{i}": 1 for i in range(width)} | {"cin": 1})
    vectors.append({f"a{i}": 0 for i in range(width)}
                   | {f"b{i}": 0 for i in range(width)} | {"cin": 0})
    stimulus = VectorStimulus(adder, vectors, period=50)
    coverage = FaultSimulator(adder, stimulus).run(all_single_stuck_at(adder))
    print(coverage.summary())
    if coverage.undetected:
        names = [f.describe(adder) for f in coverage.undetected[:8]]
        print(f"  undetected: {names}")

    # --- waveform dump of the carry chain
    watch = [adder.index_of(f"c{i + 1}") for i in range(width)]
    trace = Trace(adder, watch=watch)
    SequentialSimulator(adder, stimulus, trace=trace).run()
    vcd = write_vcd(trace, module="carry_chain")
    import pathlib
    import tempfile

    out_path = pathlib.Path(tempfile.gettempdir()) / "carry_chain.vcd"
    out_path.write_text(vcd)
    print(f"VCD dump: {len(vcd.splitlines())} lines "
          f"({sum(1 for line in vcd.splitlines() if line.startswith('#'))} "
          f"timestamps) — written to {out_path} (GTKWave-compatible)")


if __name__ == "__main__":
    main()
