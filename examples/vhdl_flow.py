#!/usr/bin/env python3
"""The full SAVANT-style toolchain on a hand-written VHDL netlist.

Mirrors Figure 3 of the paper: VHDL design file -> analyzer (IIR) ->
code generator -> runtime elaboration -> partitioning -> parallel
simulation. The design below is the ISCAS'89 s27 benchmark written as
structural VHDL.

Run:  python examples/vhdl_flow.py
"""

from repro.partition import MultilevelPartitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.vhdl import elaborate, generate_python, parse_vhdl
from repro.warped import TimeWarpSimulator, VirtualMachine

S27_VHDL = """
-- ISCAS'89 s27 as structural VHDL
library ieee;
use ieee.std_logic_1164.all;

entity s27 is
  port (g0, g1, g2, g3 : in std_logic;
        g17 : out std_logic);
end entity s27;

architecture structural of s27 is
  component nand2 is
    port (a, b : in std_logic; y : out std_logic);
  end component;
  component nor2 is
    port (a, b : in std_logic; y : out std_logic);
  end component;
  component and2 is
    port (a, b : in std_logic; y : out std_logic);
  end component;
  component or2 is
    port (a, b : in std_logic; y : out std_logic);
  end component;
  component inv is
    port (a : in std_logic; y : out std_logic);
  end component;
  component dff is
    port (d : in std_logic; q : out std_logic);
  end component;
  signal g5, g6, g7, g8, g9, g10, g11, g12 : std_logic;
  signal g13, g14, g15, g16 : std_logic;
begin
  u1  : dff   port map (d => g10, q => g5);
  u2  : dff   port map (d => g11, q => g6);
  u3  : dff   port map (d => g13, q => g7);
  u4  : inv   port map (a => g0,  y => g14);
  u5  : inv   port map (a => g11, y => g17);
  u6  : and2  port map (a => g14, b => g6, y => g8);
  u7  : or2   port map (a => g12, b => g8, y => g15);
  u8  : or2   port map (g3, g8, g16);          -- positional association
  u9  : nand2 port map (a => g16, b => g15, y => g9);
  u10 : nor2  port map (a => g14, b => g11, y => g10);
  u11 : nor2  port map (a => g5,  b => g9,  y => g11);
  u12 : nor2  port map (a => g1,  b => g7,  y => g12);
  u13 : nand2 port map (a => g2,  b => g12, y => g13);
end architecture structural;
"""


def main() -> None:
    # 1. Analyze (scram): VHDL -> IIR.
    design = parse_vhdl(S27_VHDL)
    entity = design.entities["s27"]
    print(f"analyzed entity {entity.name!r}: "
          f"{len(entity.input_ports)} inputs, "
          f"{len(entity.output_ports)} outputs")

    # 2. Code generation (scram -> TYVIS): IIR -> executable model.
    model_source = generate_python(design)
    print(f"generated simulation model: {len(model_source.splitlines())} "
          "lines of Python")

    # 3. Runtime elaboration: IIR -> circuit graph.
    circuit = elaborate(design)
    print(f"elaborated: {circuit.num_gates} gates, {circuit.num_edges} "
          f"signals, {len(circuit.dffs)} flip-flops")

    # 4. Runtime partitioning (selectable without recompiling — §4).
    assignment = MultilevelPartitioner(seed=1).partition(circuit, k=3)
    print(f"partition sizes: {assignment.sizes()}")

    # 5. Parallel simulation on the WARPED-style kernel.
    stimulus = RandomStimulus(circuit, num_cycles=40, period=50, seed=9)
    seq = SequentialSimulator(circuit, stimulus).run()
    machine = VirtualMachine(num_nodes=3)
    result = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    assert result.final_values == seq.final_values
    print(result.summary())
    print(f"primary output g17 settles to "
          f"{result.value_of(circuit, 'g17')}")


if __name__ == "__main__":
    main()
