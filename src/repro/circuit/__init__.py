"""Gate-level circuit substrate.

A circuit is a directed graph of logic gates (:class:`CircuitGraph`);
edges are the signals that interconnect gates, exactly as in Section 3 of
the paper. This subpackage provides the graph, the ISCAS'89 ``.bench``
reader/writer, levelization and cone analyses, a parametric synthetic
generator, and synthetic stand-ins for the three ISCAS'89 benchmarks the
paper evaluates (see DESIGN.md for the substitution rationale).
"""

from repro.circuit.gate import (
    FALSE,
    TRUE,
    UNKNOWN,
    GateType,
    evaluate_gate,
    logic_not,
)
from repro.circuit.graph import CircuitGraph, Gate
from repro.circuit.bench_parser import parse_bench, parse_bench_file, write_bench
from repro.circuit.levelize import levelize
from repro.circuit.cones import fanin_cone, fanout_cone, input_cones
from repro.circuit.stats import CircuitStats, circuit_stats
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuit.iscas89 import (
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    BenchmarkSpec,
    all_benchmarks,
    load_benchmark,
)
from repro.circuit.library import (
    binary_counter,
    decoder,
    lfsr,
    ripple_carry_adder,
    shift_register,
)
from repro.circuit.netlists import S27_BENCH, load_s27
from repro.circuit.validate import validate_circuit

__all__ = [
    "BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "S27_BENCH",
    "BenchmarkSpec",
    "all_benchmarks",
    "binary_counter",
    "decoder",
    "lfsr",
    "load_s27",
    "ripple_carry_adder",
    "shift_register",
    "CircuitGraph",
    "CircuitStats",
    "FALSE",
    "Gate",
    "GateType",
    "GeneratorSpec",
    "TRUE",
    "UNKNOWN",
    "circuit_stats",
    "evaluate_gate",
    "fanin_cone",
    "fanout_cone",
    "generate_circuit",
    "input_cones",
    "levelize",
    "load_benchmark",
    "logic_not",
    "parse_bench",
    "parse_bench_file",
    "validate_circuit",
    "write_bench",
]
