"""ISCAS'89 ``.bench`` netlist reader and writer.

The format the CAD Benchmarking Lab distributes (paper reference [4]):

.. code-block:: text

    # s27 fragment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G14, G11)
    G13 = DFF(G10)

Names may be referenced before they are defined; OUTPUT lines may appear
before the driving gate. The writer round-trips anything the reader
accepts (module-level property test covers this).
"""

from __future__ import annotations

import re
from pathlib import Path
from collections.abc import Iterable

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import BenchParseError

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s,]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^()\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^()]*?)\s*\)$"
)

#: .bench operator name -> GateType. BUFF is the spelling ISCAS files use.
_TYPE_BY_NAME = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
}

_NAME_BY_TYPE = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
}


def parse_bench(text: str, name: str = "bench") -> CircuitGraph:
    """Parse ``.bench`` source *text* into a frozen :class:`CircuitGraph`."""
    inputs: list[str] = []
    outputs: list[str] = []
    gate_defs: list[tuple[str, GateType, list[str], int]] = []
    seen: set[str] = set()

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, signal = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                if signal in seen:
                    raise BenchParseError(
                        f"duplicate definition of {signal!r}", line_no
                    )
                seen.add(signal)
                inputs.append(signal)
            else:
                outputs.append(signal)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            out_name, op_name, arg_text = gate.groups()
            op = _TYPE_BY_NAME.get(op_name.upper())
            if op is None:
                raise BenchParseError(f"unknown gate type {op_name!r}", line_no)
            if out_name in seen:
                raise BenchParseError(
                    f"duplicate definition of {out_name!r}", line_no
                )
            seen.add(out_name)
            args = [a.strip() for a in arg_text.split(",") if a.strip()]
            if not args:
                raise BenchParseError(f"gate {out_name!r} has no inputs", line_no)
            gate_defs.append((out_name, op, args, line_no))
            continue
        raise BenchParseError(f"unrecognised syntax: {line!r}", line_no)

    circuit = CircuitGraph(name)
    for signal in inputs:
        circuit.add_gate(signal, GateType.INPUT)
    for out_name, op, _, _ in gate_defs:
        circuit.add_gate(out_name, op)
    for out_name, _, args, line_no in gate_defs:
        sink = circuit.index_of(out_name)
        for arg in args:
            if arg not in circuit:
                raise BenchParseError(
                    f"gate {out_name!r} references undefined signal {arg!r}",
                    line_no,
                )
            circuit.connect(circuit.index_of(arg), sink)
    for signal in outputs:
        if signal not in circuit:
            raise BenchParseError(f"OUTPUT({signal}) is never defined")
        circuit.mark_output(circuit.index_of(signal))
    return circuit.freeze()


def parse_bench_file(path: str | Path) -> CircuitGraph:
    """Parse the ``.bench`` file at *path*; circuit name is the stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: CircuitGraph, header: Iterable[str] = ()) -> str:
    """Serialise *circuit* back to ``.bench`` text."""
    if not circuit.frozen:
        raise BenchParseError("freeze() the circuit before writing")
    lines = [f"# {comment}" for comment in header]
    lines.append(f"# circuit {circuit.name}: {circuit.num_gates} gates")
    for idx in circuit.primary_inputs:
        lines.append(f"INPUT({circuit.gates[idx].name})")
    for idx in circuit.primary_outputs:
        lines.append(f"OUTPUT({circuit.gates[idx].name})")
    for gate in circuit.gates:
        if gate.gate_type is GateType.INPUT:
            continue
        args = ", ".join(circuit.gates[d].name for d in gate.fanin)
        lines.append(f"{gate.name} = {_NAME_BY_TYPE[gate.gate_type]}({args})")
    return "\n".join(lines) + "\n"
