"""Fanin/fanout cone extraction.

The cone partitioner (Smith [19]) clusters the fanout cones grown from
the primary inputs; test and analysis code also uses fanin cones (all
logic that can influence a gate). Cones are computed on the combinational
view so they terminate at sequential boundaries.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.circuit.graph import CircuitGraph


def fanout_cone(
    circuit: CircuitGraph, roots: int | Iterable[int], *, through_dffs: bool = False
) -> set[int]:
    """All gates reachable from *roots* by following fanout edges.

    The roots themselves are included. With ``through_dffs=False`` (the
    default) traversal stops *at* a DFF: the DFF joins the cone but its
    next-cycle fanout does not.
    """
    if isinstance(roots, int):
        roots = (roots,)
    cone: set[int] = set()
    queue = deque(roots)
    gates = circuit.gates
    while queue:
        u = queue.popleft()
        if u in cone:
            continue
        cone.add(u)
        if not through_dffs and gates[u].gate_type.is_sequential:
            continue
        queue.extend(v for v in gates[u].fanout if v not in cone)
    return cone


def fanin_cone(
    circuit: CircuitGraph, roots: int | Iterable[int], *, through_dffs: bool = False
) -> set[int]:
    """All gates that can reach *roots* by following fanin edges."""
    if isinstance(roots, int):
        roots = (roots,)
    cone: set[int] = set()
    queue = deque(roots)
    gates = circuit.gates
    while queue:
        u = queue.popleft()
        if u in cone:
            continue
        cone.add(u)
        if not through_dffs and gates[u].gate_type.is_sequential:
            continue
        queue.extend(v for v in gates[u].fanin if v not in cone)
    return cone


def input_cones(circuit: CircuitGraph) -> dict[int, set[int]]:
    """Fanout cone of each primary input (key: the input's gate index).

    Cones overlap wherever reconvergent fanout exists; the cone
    partitioner resolves the overlaps by first-come assignment.
    """
    return {
        pi: fanout_cone(circuit, pi, through_dffs=True)
        for pi in circuit.primary_inputs
    }


def output_cones(circuit: CircuitGraph) -> dict[int, set[int]]:
    """Fanin cone of each primary output."""
    return {
        po: fanin_cone(circuit, po, through_dffs=True)
        for po in circuit.primary_outputs
    }
