"""Gate types and three-valued logic evaluation.

Signals carry one of three values: ``FALSE`` (0), ``TRUE`` (1) or
``UNKNOWN`` (X, encoded 2). X models uninitialised state; evaluation
follows the usual ternary Kleene semantics (e.g. ``AND(0, X) = 0`` but
``AND(1, X) = X``), matching VHDL std_logic resolution for the 0/1/X
subset the simulator needs.
"""

from __future__ import annotations

from enum import Enum
from collections.abc import Callable, Sequence

FALSE = 0
TRUE = 1
UNKNOWN = 2

#: All legal signal values.
LOGIC_VALUES = (FALSE, TRUE, UNKNOWN)


class GateType(Enum):
    """Kinds of vertices in the circuit graph.

    ``INPUT`` vertices are the primary inputs the coarsening phase grows
    from; ``DFF`` vertices are edge-triggered flip-flops, the only
    sequential element ISCAS'89 circuits use.
    """

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"

    @property
    def is_sequential(self) -> bool:
        """True for state-holding elements (flip-flops)."""
        return self is GateType.DFF

    @property
    def is_source(self) -> bool:
        """True for vertices with no circuit-graph fanin."""
        return self is GateType.INPUT

    @property
    def min_fanin(self) -> int:
        """Smallest legal number of inputs for this gate type."""
        return _MIN_FANIN[self]

    @property
    def max_fanin(self) -> int | None:
        """Largest legal number of inputs, or ``None`` if unbounded."""
        return _MAX_FANIN[self]


_MIN_FANIN = {
    GateType.INPUT: 0,
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.DFF: 1,
}

_MAX_FANIN: dict[GateType, int | None] = {
    GateType.INPUT: 0,
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.DFF: 1,
}


def logic_not(value: int) -> int:
    """Ternary NOT."""
    if value == UNKNOWN:
        return UNKNOWN
    return TRUE - value


def _and_all(values: Sequence[int]) -> int:
    saw_x = False
    for v in values:
        if v == FALSE:
            return FALSE
        if v == UNKNOWN:
            saw_x = True
    return UNKNOWN if saw_x else TRUE


def _or_all(values: Sequence[int]) -> int:
    saw_x = False
    for v in values:
        if v == TRUE:
            return TRUE
        if v == UNKNOWN:
            saw_x = True
    return UNKNOWN if saw_x else FALSE


def _xor_all(values: Sequence[int]) -> int:
    acc = FALSE
    for v in values:
        if v == UNKNOWN:
            return UNKNOWN
        acc ^= v
    return acc


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a combinational gate over ternary *inputs*.

    ``DFF`` is handled here as a transparent BUF of its data input — the
    *clocked* behaviour (capture on clock edge) is owned by the
    simulators, which call this only at capture time. ``INPUT`` vertices
    have no inputs and cannot be evaluated.
    """
    if gate_type is GateType.INPUT:
        raise ValueError("primary inputs are driven by stimulus, not evaluated")
    n = len(inputs)
    lo = gate_type.min_fanin
    hi = gate_type.max_fanin
    if n < lo or (hi is not None and n > hi):
        arity = str(lo) if hi == lo else f"{lo}..{hi if hi is not None else 'inf'}"
        raise ValueError(f"{gate_type.value} gate takes {arity} inputs, got {n}")
    if gate_type is GateType.AND:
        return _and_all(inputs)
    if gate_type is GateType.NAND:
        return logic_not(_and_all(inputs))
    if gate_type is GateType.OR:
        return _or_all(inputs)
    if gate_type is GateType.NOR:
        return logic_not(_or_all(inputs))
    if gate_type is GateType.XOR:
        return _xor_all(inputs)
    if gate_type is GateType.XNOR:
        return logic_not(_xor_all(inputs))
    if gate_type is GateType.NOT:
        return logic_not(inputs[0])
    # BUF and (transparent) DFF
    return inputs[0]


def _nand_all(values: Sequence[int]) -> int:
    # Flattened NOT(AND(...)): one frame instead of three on a path the
    # simulators hit per evaluated event.
    saw_x = False
    for v in values:
        if v == FALSE:
            return TRUE
        if v == UNKNOWN:
            saw_x = True
    return UNKNOWN if saw_x else FALSE


def _nor_all(values: Sequence[int]) -> int:
    saw_x = False
    for v in values:
        if v == TRUE:
            return FALSE
        if v == UNKNOWN:
            saw_x = True
    return UNKNOWN if saw_x else TRUE


def _xnor_all(values: Sequence[int]) -> int:
    acc = FALSE
    for v in values:
        if v == UNKNOWN:
            return UNKNOWN
        acc ^= v
    return TRUE - acc


def _first(values: Sequence[int]) -> int:
    return values[0]


def _not_first(values: Sequence[int]) -> int:
    return logic_not(values[0])


#: Validation-free evaluators, one per combinational gate type. The
#: simulators run millions of evaluations over circuits whose arity was
#: checked once at freeze time; this dispatch skips ``evaluate_gate``'s
#: per-call arity checks and enum property lookups. Callers must not
#: pass INPUT and must pass a fanin-ordered value sequence (which the
#: evaluator never mutates).
EVAL_FUNCS: dict[GateType, "Callable[[Sequence[int]], int]"] = {
    GateType.AND: _and_all,
    GateType.NAND: _nand_all,
    GateType.OR: _or_all,
    GateType.NOR: _nor_all,
    GateType.XOR: _xor_all,
    GateType.XNOR: _xnor_all,
    GateType.NOT: _not_first,
    GateType.BUF: _first,
    GateType.DFF: _first,
}


def _and2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == FALSE or b == FALSE:
        return FALSE
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return TRUE


def _nand2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == FALSE or b == FALSE:
        return TRUE
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return FALSE


def _or2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == TRUE or b == TRUE:
        return TRUE
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return FALSE


def _nor2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == TRUE or b == TRUE:
        return FALSE
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return TRUE


def _xor2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return a ^ b


def _xnor2(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return TRUE - (a ^ b)


def _and3(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    c = values[2]
    if a == FALSE or b == FALSE or c == FALSE:
        return FALSE
    if a == UNKNOWN or b == UNKNOWN or c == UNKNOWN:
        return UNKNOWN
    return TRUE


def _nand3(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    c = values[2]
    if a == FALSE or b == FALSE or c == FALSE:
        return TRUE
    if a == UNKNOWN or b == UNKNOWN or c == UNKNOWN:
        return UNKNOWN
    return FALSE


def _or3(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    c = values[2]
    if a == TRUE or b == TRUE or c == TRUE:
        return TRUE
    if a == UNKNOWN or b == UNKNOWN or c == UNKNOWN:
        return UNKNOWN
    return FALSE


def _nor3(values: Sequence[int]) -> int:
    a = values[0]
    b = values[1]
    c = values[2]
    if a == TRUE or b == TRUE or c == TRUE:
        return FALSE
    if a == UNKNOWN or b == UNKNOWN or c == UNKNOWN:
        return UNKNOWN
    return TRUE


#: Straight-line fixed-arity specialisations of :data:`EVAL_FUNCS`,
#: keyed by (gate type, fanin arity). Two- and three-input gates
#: dominate ISCAS'89 netlists; the generic loops above pay per-call
#: iterator setup that a fixed-arity body avoids. Same ternary truth
#: tables, bit for bit.
EVAL_FUNCS_2: dict[GateType, "Callable[[Sequence[int]], int]"] = {
    GateType.AND: _and2,
    GateType.NAND: _nand2,
    GateType.OR: _or2,
    GateType.NOR: _nor2,
    GateType.XOR: _xor2,
    GateType.XNOR: _xnor2,
}

EVAL_FUNCS_BY_ARITY: dict[tuple[GateType, int], "Callable[[Sequence[int]], int]"] = {
    (GateType.AND, 2): _and2,
    (GateType.NAND, 2): _nand2,
    (GateType.OR, 2): _or2,
    (GateType.NOR, 2): _nor2,
    (GateType.XOR, 2): _xor2,
    (GateType.XNOR, 2): _xnor2,
    (GateType.AND, 3): _and3,
    (GateType.NAND, 3): _nand3,
    (GateType.OR, 3): _or3,
    (GateType.NOR, 3): _nor3,
}


def eval_func(gate_type: GateType, arity: int) -> "Callable[[Sequence[int]], int] | None":
    """Fastest evaluator for *gate_type* at *arity* (``None`` for INPUT)."""
    f = EVAL_FUNCS_BY_ARITY.get((gate_type, arity))
    return f if f is not None else EVAL_FUNCS.get(gate_type)


#: Controlling value per gate type: an input at this value fixes the output
#: regardless of the other inputs. Used by activity estimation.
CONTROLLING_VALUE: dict[GateType, int | None] = {
    GateType.AND: FALSE,
    GateType.NAND: FALSE,
    GateType.OR: TRUE,
    GateType.NOR: TRUE,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: None,
    GateType.BUF: None,
    GateType.DFF: None,
    GateType.INPUT: None,
}
