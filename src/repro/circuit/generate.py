"""Parametric synthetic sequential-circuit generator.

The ISCAS'89 netlists themselves are not redistributable in this
offline environment, so the benchmarks are stood in for by synthetic
circuits that reproduce the *structural statistics* the partitioning
study depends on: gate/PI/PO/DFF counts, a layered combinational DAG
with locality-biased wiring (long chains and fanout cones, as real
netlists have), skewed fanout with a few high-fanout control nets, and
sequential feedback through the flip-flops. Real ``.bench`` files load
through :mod:`repro.circuit.bench_parser` and drop in unchanged.

Generation is deterministic in the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError
from repro.utils.rng import derive_rng

#: Combinational gate types chosen for 2+-input gates, with weights that
#: roughly match ISCAS'89 type frequencies (NAND/AND heavy).
_WIDE_TYPES = (
    (GateType.NAND, 0.30),
    (GateType.AND, 0.25),
    (GateType.NOR, 0.15),
    (GateType.OR, 0.15),
    (GateType.XOR, 0.10),
    (GateType.XNOR, 0.05),
)
_UNARY_TYPES = ((GateType.NOT, 0.7), (GateType.BUF, 0.3))

#: Per-type inertial delays for the "typed" delay model, loosely scaled
#: like a standard-cell library (XOR trees are slow, inverters fast).
TYPED_DELAYS = {
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.XOR: 3,
    GateType.XNOR: 3,
    GateType.DFF: 2,
    GateType.INPUT: 1,
}


def _gate_delay(spec: "GeneratorSpec", gate_type: GateType, rng) -> int:
    if spec.delay_model == "typed":
        return TYPED_DELAYS[gate_type]
    if spec.delay_model == "random":
        return int(rng.integers(1, 4))
    return 1


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of one synthetic circuit.

    ``num_gates`` counts logic elements (combinational gates + DFFs),
    excluding the primary-input vertices — the convention of the paper's
    Table 1. ``depth`` is the target combinational depth (levels).
    """

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_dffs: int
    depth: int = 24
    unary_fraction: float = 0.25
    locality: float = 0.90
    hub_fraction: float = 0.004
    seed: int = 2000
    #: Gate-delay assignment: "unit" (all 1), "typed" (per gate type —
    #: XOR/XNOR slowest, inverters fastest, as in standard-cell
    #: libraries), or "random" (uniform 1..3).
    delay_model: str = "unit"

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ConfigError("need at least one primary input")
        if self.num_outputs < 1:
            raise ConfigError("need at least one primary output")
        if self.num_dffs < 0 or self.num_dffs >= self.num_gates:
            raise ConfigError("num_dffs must be in [0, num_gates)")
        if self.num_gates < self.num_outputs:
            raise ConfigError("need at least num_outputs logic gates")
        if self.depth < 2:
            raise ConfigError("depth must be >= 2")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigError("locality must be in [0, 1]")
        if self.delay_model not in ("unit", "typed", "random"):
            raise ConfigError(
                f"delay_model must be unit/typed/random, got {self.delay_model!r}"
            )

    def scaled(self, scale: float, name: str | None = None) -> "GeneratorSpec":
        """A proportionally smaller (or larger) spec.

        Used by the benchmark harness to run faithfully-structured scaled
        workloads by default (see DESIGN.md §5). Counts never drop below
        the minima required for a well-formed circuit.
        """
        if scale <= 0:
            raise ConfigError("scale must be positive")

        def s(value: int, minimum: int) -> int:
            return max(minimum, round(value * scale))

        gates = s(self.num_gates, 8)
        dffs = min(s(self.num_dffs, 1 if self.num_dffs else 0), gates - 4)
        return GeneratorSpec(
            name=name or f"{self.name}@{scale:g}",
            num_inputs=s(self.num_inputs, 2),
            num_outputs=min(s(self.num_outputs, 1), gates),
            num_gates=gates,
            num_dffs=dffs,
            depth=max(3, round(self.depth * min(1.0, scale**0.5))),
            unary_fraction=self.unary_fraction,
            locality=self.locality,
            hub_fraction=self.hub_fraction,
            seed=self.seed,
            delay_model=self.delay_model,
        )


def generate_circuit(spec: GeneratorSpec) -> CircuitGraph:
    """Build a frozen :class:`CircuitGraph` from *spec*."""
    rng = derive_rng(spec.seed, "generate", spec.name)
    circuit = CircuitGraph(spec.name)

    pis = [circuit.add_gate(f"I{i}", GateType.INPUT) for i in range(spec.num_inputs)]
    n_comb = spec.num_gates - spec.num_dffs

    # --- DFFs are declared first so they can serve as level-0 sources for
    # the combinational fabric; their data inputs are wired at the end
    # (feedback from deep levels).
    dffs = [
        circuit.add_gate(
            f"FF{i}", GateType.DFF, delay=_gate_delay(spec, GateType.DFF, rng)
        )
        for i in range(spec.num_dffs)
    ]

    # --- Distribute the combinational gates over levels 1..depth with a
    # bulge in the early-middle levels (ISCAS-like: wide decode fabric,
    # narrowing toward the outputs).
    depth = min(spec.depth, max(2, n_comb // 2))
    weights = np.array(
        [1.0 + 2.0 * np.exp(-(((lvl - depth / 3.0) / (depth / 2.5)) ** 2))
         for lvl in range(1, depth + 1)]
    )
    counts = _apportion(n_comb, weights)
    # Every level needs at least one gate; steal from the largest levels.
    for lvl in range(depth):
        while counts[lvl] == 0:
            donor = int(np.argmax(counts))
            counts[donor] -= 1
            counts[lvl] += 1

    level_pool: list[list[int]] = [list(pis) + list(dffs)]  # level-0 sources
    # A small set of "hub" drivers (control nets) that any level may tap,
    # giving the skewed fanout distribution real netlists show.
    hubs: list[int] = list(
        rng.choice(level_pool[0], size=max(1, round(len(level_pool[0]) * 0.2)),
                   replace=False)
    )
    hub_budget = max(1, round(spec.num_gates * spec.hub_fraction))

    wide_types = [t for t, _ in _WIDE_TYPES]
    wide_weights = np.array([w for _, w in _WIDE_TYPES])
    wide_weights = wide_weights / wide_weights.sum()
    unary_types = [t for t, _ in _UNARY_TYPES]
    unary_weights = np.array([w for _, w in _UNARY_TYPES])
    unary_weights = unary_weights / unary_weights.sum()

    gate_counter = 0
    for lvl in range(1, depth + 1):
        this_level: list[int] = []
        prev = level_pool[lvl - 1]
        older = [g for pool in level_pool[:-1] for g in pool]
        for _ in range(counts[lvl - 1]):
            unary = rng.random() < spec.unary_fraction
            if unary:
                gate_type = unary_types[
                    int(rng.choice(len(unary_types), p=unary_weights))
                ]
                fanin_count = 1
            else:
                gate_type = wide_types[
                    int(rng.choice(len(wide_types), p=wide_weights))
                ]
                # 2..4 inputs, biased to 2 (ISCAS gates are mostly 2-input).
                fanin_count = int(rng.choice([2, 2, 2, 3, 3, 4]))
            idx = circuit.add_gate(
                f"G{gate_counter}",
                gate_type,
                delay=_gate_delay(spec, gate_type, rng),
            )
            gate_counter += 1
            drivers = _pick_drivers(
                rng, fanin_count, prev, older, hubs, spec.locality
            )
            for d in drivers:
                circuit.connect(d, idx)
            if len(hubs) < hub_budget + len(pis) and rng.random() < 0.02:
                hubs.append(idx)
            this_level.append(idx)
        level_pool.append(this_level)

    # --- DFF data inputs: feedback from the deeper half of the fabric.
    deep = [g for pool in level_pool[1 + depth // 2 :] for g in pool]
    if not deep:
        deep = [g for pool in level_pool[1:] for g in pool]
    for ff in dffs:
        src = int(rng.choice(deep))
        circuit.connect(src, ff)

    # --- Wire dead-end gates into deeper logic first, THEN pick primary
    # outputs: doing it in this order keeps the output count exactly at
    # spec (a pre-marked output would otherwise shield a dangler).
    forced_outputs = _absorb_danglers(circuit, rng, level_pool)
    for idx in forced_outputs:
        circuit.mark_output(idx)

    remaining = spec.num_outputs - len(forced_outputs)
    if remaining > 0:
        candidates: list[int] = []
        for pool in reversed(level_pool[1:]):
            candidates.extend(g for g in pool if not circuit.gates[g].is_output)
            if len(candidates) >= remaining * 3:
                break
        if len(candidates) < remaining:  # tiny fabric: widen the pool
            candidates = [
                g.index
                for g in circuit.gates
                if not g.is_output and g.gate_type is not GateType.INPUT
            ]
        for idx in rng.choice(candidates, size=remaining, replace=False):
            circuit.mark_output(int(idx))
    return circuit.freeze()


def _pick_drivers(
    rng: np.random.Generator,
    count: int,
    prev: list[int],
    older: list[int],
    hubs: list[int],
    locality: float,
) -> list[int]:
    """Choose *count* distinct drivers with locality bias.

    With probability ``locality`` a driver comes from the immediately
    preceding level (yielding long chains/cones); otherwise from any
    earlier level; a small slice taps the hub set.
    """
    drivers: list[int] = []
    attempts = 0
    while len(drivers) < count and attempts < count * 12:
        attempts += 1
        r = rng.random()
        if r < 0.06 and hubs:
            cand = int(hubs[int(rng.integers(0, len(hubs)))])
        elif r < 0.06 + locality or not older:
            cand = int(prev[int(rng.integers(0, len(prev)))])
        else:
            cand = int(older[int(rng.integers(0, len(older)))])
        if cand not in drivers:
            drivers.append(cand)
    # Fall back to duplicates-allowed if the pools were too small to find
    # distinct drivers (legal: parallel edges are permitted).
    while len(drivers) < count:
        pool = prev or older or hubs
        drivers.append(int(pool[int(rng.integers(0, len(pool)))]))
    return drivers


def _absorb_danglers(
    circuit: CircuitGraph,
    rng: np.random.Generator,
    level_pool: list[list[int]],
) -> list[int]:
    """Give every gate at least one fanout; return gates that cannot get one.

    Dangling gates are wired as extra inputs into a variable-arity gate
    at a strictly deeper level or, failing that, a same-level gate with a
    higher index (intra-level edges only ever point index-upward, so this
    stays acyclic). Gates with no legal target — essentially the last
    gate of the deepest level — are returned so the caller can promote
    them to primary outputs (real netlists have no dead logic either).
    """
    level_of: dict[int, int] = {}
    for lvl, pool in enumerate(level_pool):
        for g in pool:
            level_of[g] = lvl
    variable_arity = {
        GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
        GateType.XOR, GateType.XNOR,
    }
    by_level_targets: list[list[int]] = [[] for _ in range(len(level_pool))]
    for g in circuit.gates:
        if g.gate_type in variable_arity:
            by_level_targets[level_of[g.index]].append(g.index)
    deeper_targets: list[list[int]] = [[] for _ in range(len(level_pool))]
    acc: list[int] = []
    for lvl in range(len(level_pool) - 1, -1, -1):
        deeper_targets[lvl] = list(acc)
        acc.extend(by_level_targets[lvl])
    forced: list[int] = []
    for gate in circuit.gates:
        if gate.fanout:
            continue
        lvl = level_of[gate.index]
        targets = deeper_targets[lvl]
        if not targets:
            targets = [t for t in by_level_targets[lvl] if t > gate.index]
        if targets:
            sink = int(targets[int(rng.integers(0, len(targets)))])
            circuit.connect(gate.index, sink)
        else:
            forced.append(gate.index)
    return forced


def _apportion(total: int, weights: np.ndarray) -> list[int]:
    """Split *total* into ``len(weights)`` integer parts ∝ weights.

    Largest-remainder method so the parts sum exactly to *total*.
    """
    raw = weights / weights.sum() * total
    parts = np.floor(raw).astype(int)
    remainder = total - int(parts.sum())
    order = np.argsort(-(raw - parts))
    for i in range(remainder):
        parts[order[i % len(parts)]] += 1
    return [int(p) for p in parts]
