"""The circuit graph: vertices are gates, edges are signals.

This is the directed graph ``G = (V, E)`` of Section 3 of the paper. The
representation is index-based (gates are dense integers ``0..n-1``) with
adjacency stored as Python lists — the partitioners and both simulators
iterate fanin/fanout constantly, and list-of-list adjacency benchmarks
faster than networkx views for these access patterns. A
:meth:`CircuitGraph.to_networkx` bridge exists for analyses that want the
richer library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

import networkx as nx

from repro.circuit.gate import GateType
from repro.errors import CircuitError


@dataclass
class Gate:
    """One vertex of the circuit graph.

    ``fanin`` is ordered (inputs of asymmetric gates keep their position);
    ``fanout`` order is insertion order. ``delay`` is the gate's inertial
    propagation delay in integer time units.
    """

    index: int
    name: str
    gate_type: GateType
    fanin: list[int] = field(default_factory=list)
    fanout: list[int] = field(default_factory=list)
    delay: int = 1
    is_output: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Gate({self.index}, {self.name!r}, {self.gate_type.value}, "
            f"fanin={self.fanin}, fanout={self.fanout})"
        )


class CircuitGraph:
    """A gate-level netlist as a directed graph.

    Construction is incremental (:meth:`add_gate` + :meth:`connect`) and
    finished with :meth:`freeze`, after which the structure is immutable
    and derived indexes (primary inputs/outputs, DFF list) are cached.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: list[Gate] = []
        self._by_name: dict[str, int] = {}
        self._frozen = False
        self._primary_inputs: list[int] = []
        self._primary_outputs: list[int] = []
        self._dffs: list[int] = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(
        self,
        name: str,
        gate_type: GateType,
        *,
        delay: int = 1,
        is_output: bool = False,
    ) -> int:
        """Add a gate and return its index."""
        self._check_mutable()
        if name in self._by_name:
            raise CircuitError(f"duplicate gate name {name!r}")
        if delay < 0:
            raise CircuitError(f"gate {name!r}: negative delay {delay}")
        index = len(self.gates)
        self.gates.append(
            Gate(index, name, gate_type, delay=delay, is_output=is_output)
        )
        self._by_name[name] = index
        return index

    def connect(self, driver: int, sink: int) -> None:
        """Add the signal edge ``driver -> sink``.

        Parallel edges are legal (a gate may feed two inputs of the same
        sink, e.g. ``XOR(a, a)`` after optimisation); self-loops are not —
        ISCAS'89 feedback always goes through a DFF, and a combinational
        self-loop would make the netlist unsimulatable.
        """
        self._check_mutable()
        self._check_index(driver)
        self._check_index(sink)
        if driver == sink:
            raise CircuitError(
                f"self-loop on gate {self.gates[driver].name!r} is not allowed"
            )
        if self.gates[sink].gate_type is GateType.INPUT:
            raise CircuitError(
                f"primary input {self.gates[sink].name!r} cannot have fanin"
            )
        self.gates[driver].fanout.append(sink)
        self.gates[sink].fanin.append(driver)
        self._num_edges += 1

    def mark_output(self, index: int) -> None:
        """Flag a gate as a primary output."""
        self._check_mutable()
        self._check_index(index)
        self.gates[index].is_output = True

    def freeze(self) -> "CircuitGraph":
        """Validate arities, cache derived indexes, and lock the graph."""
        if self._frozen:
            return self
        for gate in self.gates:
            lo = gate.gate_type.min_fanin
            hi = gate.gate_type.max_fanin
            n = len(gate.fanin)
            if n < lo or (hi is not None and n > hi):
                raise CircuitError(
                    f"gate {gate.name!r} ({gate.gate_type.value}) has {n} "
                    f"inputs, legal range is {lo}..{hi if hi is not None else 'inf'}"
                )
        self._primary_inputs = [
            g.index for g in self.gates if g.gate_type is GateType.INPUT
        ]
        self._primary_outputs = [g.index for g in self.gates if g.is_output]
        self._dffs = [g.index for g in self.gates if g.gate_type is GateType.DFF]
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def primary_inputs(self) -> list[int]:
        """Indices of primary-input vertices (requires :meth:`freeze`)."""
        self._check_frozen()
        return self._primary_inputs

    @property
    def primary_outputs(self) -> list[int]:
        self._check_frozen()
        return self._primary_outputs

    @property
    def dffs(self) -> list[int]:
        """Indices of flip-flop vertices."""
        self._check_frozen()
        return self._dffs

    def index_of(self, name: str) -> int:
        """Gate index for *name* (raises :class:`CircuitError` if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CircuitError(f"no gate named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def fanin(self, index: int) -> list[int]:
        """Ordered driver indices of gate *index*."""
        return self.gates[index].fanin

    def fanout(self, index: int) -> list[int]:
        """Sink indices of gate *index*."""
        return self.gates[index].fanout

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield every signal edge as ``(driver, sink)``."""
        for gate in self.gates:
            for sink in gate.fanout:
                yield gate.index, sink

    def combinational_fanin(self, index: int) -> list[int]:
        """Fanin of *index*, treating DFF *drivers* as cut points.

        Edges out of a DFF carry next-cycle values; analyses that need a
        DAG (levelization, cones) traverse this view.
        """
        return [
            d
            for d in self.gates[index].fanin
            if self.gates[d].gate_type is not GateType.DFF
        ]

    def combinational_fanout(self, index: int) -> list[int]:
        """Fanout of *index* unless *index* is a DFF (then empty)."""
        if self.gates[index].gate_type is GateType.DFF:
            return []
        return self.gates[index].fanout

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a :class:`networkx.MultiDiGraph` (parallel edges kept)."""
        g = nx.MultiDiGraph(name=self.name)
        for gate in self.gates:
            g.add_node(
                gate.index,
                name=gate.name,
                gate_type=gate.gate_type.value,
                is_output=gate.is_output,
            )
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def subgraph_gate_names(self, indices: Iterable[int]) -> list[str]:
        """Names for a set of gate indices, in index order."""
        return [self.gates[i].name for i in sorted(set(indices))]

    def copy(self) -> "CircuitGraph":
        """Deep copy (unfrozen copies stay unfrozen)."""
        dup = CircuitGraph(self.name)
        for gate in self.gates:
            dup.add_gate(
                gate.name, gate.gate_type, delay=gate.delay, is_output=gate.is_output
            )
        for u, v in self.edges():
            dup.connect(u, v)
        if self._frozen:
            dup.freeze()
        return dup

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise CircuitError("circuit is frozen; copy() it to modify")

    def _check_frozen(self) -> None:
        if not self._frozen:
            raise CircuitError("call freeze() before structural queries")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.gates):
            raise CircuitError(f"gate index {index} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitGraph({self.name!r}, gates={self.num_gates}, "
            f"edges={self.num_edges}, frozen={self._frozen})"
        )


def build_circuit(
    name: str,
    gates: Sequence[tuple[str, GateType, Sequence[str]]],
    outputs: Sequence[str] = (),
) -> CircuitGraph:
    """Convenience constructor from ``(name, type, fanin-names)`` triples.

    Fanin names may reference gates declared later in the sequence
    (two-pass construction), which feedback through DFFs requires.
    """
    circuit = CircuitGraph(name)
    for gate_name, gate_type, _ in gates:
        circuit.add_gate(gate_name, gate_type)
    for gate_name, _, fanin_names in gates:
        sink = circuit.index_of(gate_name)
        for driver_name in fanin_names:
            circuit.connect(circuit.index_of(driver_name), sink)
    for out_name in outputs:
        circuit.mark_output(circuit.index_of(out_name))
    return circuit.freeze()
