"""Synthetic stand-ins for the ISCAS'89 benchmarks of the paper.

Table 1 of the paper characterises the three circuits used in the study;
the specs below reproduce those published counts (plus the flip-flop
counts from the ISCAS'89 suite documentation):

=========  =======  ======  ========  =====
circuit    inputs   gates   outputs   DFFs
=========  =======  ======  ========  =====
s5378      35       2779    49        179
s9234      36       5597    39        211
s15850     77       10383   150       534
=========  =======  ======  ========  =====

``load_benchmark("s9234", scale=0.1)`` yields a structurally faithful
one-tenth-size circuit for fast runs; ``scale=1.0`` matches Table 1
exactly. A real ``.bench`` file, when available, can be loaded with
:func:`repro.circuit.bench_parser.parse_bench_file` instead and used
everywhere a generated circuit is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published characteristics of one ISCAS'89 benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_dffs: int
    depth: int

    def generator_spec(self, scale: float = 1.0, seed: int = 2000) -> GeneratorSpec:
        """The :class:`GeneratorSpec` for this benchmark at *scale*."""
        spec = GeneratorSpec(
            name=self.name,
            num_inputs=self.num_inputs,
            num_outputs=self.num_outputs,
            num_gates=self.num_gates,
            num_dffs=self.num_dffs,
            depth=self.depth,
            seed=seed,
        )
        if scale == 1.0:
            return spec
        return spec.scaled(scale)


#: The three benchmarks of the paper's Table 1. Depth values are the
#: documented ISCAS'89 logic depths (s5378: 25, s9234: 58, s15850: 82).
BENCHMARKS: dict[str, BenchmarkSpec] = {
    "s5378": BenchmarkSpec("s5378", 35, 49, 2779, 179, 25),
    "s9234": BenchmarkSpec("s9234", 36, 39, 5597, 211, 58),
    "s15850": BenchmarkSpec("s15850", 77, 150, 10383, 534, 82),
}

#: The rest of the ISCAS'89 sequential suite (published PI/PO/gate/DFF
#: counts; depths approximated from the documented logic levels). The
#: paper only evaluates the three circuits above, but a downstream user
#: gets the whole family. Gate counts follow the Table 1 convention of
#: this repository: logic elements including flip-flops.
EXTENDED_BENCHMARKS: dict[str, BenchmarkSpec] = {
    "s298": BenchmarkSpec("s298", 3, 6, 133, 14, 9),
    "s344": BenchmarkSpec("s344", 9, 11, 175, 15, 20),
    "s349": BenchmarkSpec("s349", 9, 11, 176, 15, 20),
    "s386": BenchmarkSpec("s386", 7, 7, 165, 6, 11),
    "s400": BenchmarkSpec("s400", 3, 6, 183, 21, 9),
    "s420": BenchmarkSpec("s420", 18, 1, 234, 16, 13),
    "s444": BenchmarkSpec("s444", 3, 6, 202, 21, 11),
    "s510": BenchmarkSpec("s510", 19, 7, 217, 6, 12),
    "s526": BenchmarkSpec("s526", 3, 6, 214, 21, 9),
    "s641": BenchmarkSpec("s641", 35, 24, 398, 19, 74),
    "s713": BenchmarkSpec("s713", 35, 23, 412, 19, 74),
    "s820": BenchmarkSpec("s820", 18, 19, 294, 5, 10),
    "s832": BenchmarkSpec("s832", 18, 19, 292, 5, 10),
    "s838": BenchmarkSpec("s838", 34, 1, 478, 32, 25),
    "s953": BenchmarkSpec("s953", 16, 23, 424, 29, 16),
    "s1196": BenchmarkSpec("s1196", 14, 14, 547, 18, 24),
    "s1238": BenchmarkSpec("s1238", 14, 14, 526, 18, 22),
    "s1423": BenchmarkSpec("s1423", 17, 5, 731, 74, 59),
    "s1488": BenchmarkSpec("s1488", 8, 19, 659, 6, 17),
    "s1494": BenchmarkSpec("s1494", 8, 19, 653, 6, 17),
    "s13207": BenchmarkSpec("s13207", 62, 152, 8589, 638, 59),
    "s35932": BenchmarkSpec("s35932", 35, 320, 17793, 1728, 29),
    "s38417": BenchmarkSpec("s38417", 28, 106, 23815, 1636, 47),
    "s38584": BenchmarkSpec("s38584", 38, 304, 20679, 1426, 56),
}


def all_benchmarks() -> dict[str, BenchmarkSpec]:
    """The paper's three circuits plus the extended ISCAS'89 family."""
    return {**BENCHMARKS, **EXTENDED_BENCHMARKS}


def load_benchmark(
    name: str, *, scale: float = 1.0, seed: int = 2000
) -> CircuitGraph:
    """Load ISCAS'89 circuit *name*.

    ``"s27"`` returns the embedded *real* netlist
    (:mod:`repro.circuit.netlists`); every other name generates the
    synthetic equivalent at *scale*.
    """
    if name == "s27":
        from repro.circuit.netlists import load_s27

        if scale != 1.0:
            raise ConfigError("s27 is a real netlist; scale must be 1.0")
        return load_s27()
    spec = all_benchmarks().get(name)
    if spec is None:
        raise ConfigError(
            f"unknown benchmark {name!r}; available: "
            f"{['s27', *sorted(all_benchmarks())]}"
        )
    return generate_circuit(spec.generator_spec(scale=scale, seed=seed))
