"""Topological levelization of a sequential circuit.

The topological partitioner (Cloutier [5], Smith [19]) first *levelizes*
the circuit — assigns each gate the length of the longest combinational
path from a source — and then distributes whole levels over partitions.
Primary inputs and DFF outputs are the level-0 sources; edges *into* a
DFF terminate a path (they carry next-cycle values), so sequential
feedback does not create cycles in the levelized view.
"""

from __future__ import annotations

from collections import deque

from repro.circuit.graph import CircuitGraph
from repro.errors import CircuitError


def levelize(circuit: CircuitGraph) -> list[int]:
    """Return ``level[i]`` for every gate index ``i``.

    Sources (primary inputs and DFFs) are level 0; every other gate is
    ``1 + max(level of fanin)`` over the acyclic view that cuts edges
    whose sink is a DFF. Raises :class:`CircuitError` if the view still
    contains a cycle (a feedback loop with no flip-flop on it).
    """
    n = circuit.num_gates
    gates = circuit.gates
    level = [0] * n
    indegree = [0] * n
    for gate in gates:
        if gate.gate_type.is_source or gate.gate_type.is_sequential:
            indegree[gate.index] = 0
        else:
            indegree[gate.index] = len(gate.fanin)

    queue = deque(i for i in range(n) if indegree[i] == 0)
    visited = 0
    while queue:
        u = queue.popleft()
        visited += 1
        for v in gates[u].fanout:
            if gates[v].gate_type.is_sequential or gates[v].gate_type.is_source:
                # Edge into a DFF carries next-cycle data: path ends here.
                # (Source sinks cannot occur — kept for symmetry/safety.)
                continue
            if level[u] + 1 > level[v]:
                level[v] = level[u] + 1
            indegree[v] -= 1
            if indegree[v] == 0:
                queue.append(v)
    if visited != n:
        unvisited = [gates[i].name for i in range(n) if indegree[i] > 0][:5]
        raise CircuitError(
            "combinational cycle detected (no DFF on a feedback loop); "
            f"involved gates include {unvisited}"
        )
    return level


def levels_to_buckets(level: list[int]) -> list[list[int]]:
    """Group gate indices by level: ``buckets[L]`` lists gates at level L."""
    if not level:
        return []
    buckets: list[list[int]] = [[] for _ in range(max(level) + 1)]
    for index, lvl in enumerate(level):
        buckets[lvl].append(index)
    return buckets


def critical_path_length(circuit: CircuitGraph) -> int:
    """Longest combinational path length (max level)."""
    level = levelize(circuit)
    return max(level) if level else 0
