"""Parametric structural circuit generators with known functions.

Unlike :mod:`repro.circuit.generate` (statistically realistic but
functionally arbitrary), these build circuits whose input/output
behaviour is known in closed form — ripple-carry adders, counters,
LFSRs, shift registers — so tests can check the simulators compute the
*right answer*, and examples have meaningful workloads.
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError


def ripple_carry_adder(width: int, *, name: str | None = None) -> CircuitGraph:
    """A *width*-bit ripple-carry adder.

    Inputs ``a0..a{w-1}``, ``b0..b{w-1}``, ``cin``; outputs
    ``s0..s{w-1}`` and ``cout``. Classic two-XOR/two-AND/one-OR full
    adders chained through the carry.
    """
    if width < 1:
        raise ConfigError("width must be >= 1")
    c = CircuitGraph(name or f"rca{width}")
    a = [c.add_gate(f"a{i}", GateType.INPUT) for i in range(width)]
    b = [c.add_gate(f"b{i}", GateType.INPUT) for i in range(width)]
    carry = c.add_gate("cin", GateType.INPUT)
    for i in range(width):
        axb = c.add_gate(f"axb{i}", GateType.XOR)
        c.connect(a[i], axb)
        c.connect(b[i], axb)
        s = c.add_gate(f"s{i}", GateType.XOR)
        c.connect(axb, s)
        c.connect(carry, s)
        c.mark_output(s)
        g1 = c.add_gate(f"cg{i}", GateType.AND)  # generate
        c.connect(a[i], g1)
        c.connect(b[i], g1)
        g2 = c.add_gate(f"cp{i}", GateType.AND)  # propagate
        c.connect(axb, g2)
        c.connect(carry, g2)
        cout = c.add_gate(f"c{i + 1}", GateType.OR)
        c.connect(g1, cout)
        c.connect(g2, cout)
        carry = cout
    c.mark_output(carry)
    return c.freeze()


def binary_counter(width: int, *, name: str | None = None) -> CircuitGraph:
    """A free-running *width*-bit binary up-counter.

    One DFF per bit; bit i toggles when all lower bits are 1 (``en``
    input gates the increment). Outputs ``q0..q{w-1}``.
    """
    if width < 1:
        raise ConfigError("width must be >= 1")
    c = CircuitGraph(name or f"counter{width}")
    enable = c.add_gate("en", GateType.INPUT)
    ffs = [c.add_gate(f"q{i}", GateType.DFF) for i in range(width)]
    carry = enable
    for i in range(width):
        toggle = c.add_gate(f"t{i}", GateType.XOR)
        c.connect(ffs[i], toggle)
        c.connect(carry, toggle)
        c.connect(toggle, ffs[i])
        c.mark_output(ffs[i])
        if i + 1 < width:
            next_carry = c.add_gate(f"ca{i}", GateType.AND)
            c.connect(carry, next_carry)
            c.connect(ffs[i], next_carry)
            carry = next_carry
    return c.freeze()


#: Primitive polynomial taps (1-indexed bit positions XORed into the
#: feedback) for maximal-length Fibonacci LFSRs.
_LFSR_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


def lfsr(width: int, *, name: str | None = None) -> CircuitGraph:
    """A maximal-length Fibonacci LFSR of *width* bits.

    The register shifts every clock; feedback is the XNOR of the tap
    bits (XNOR so the all-zero reset state is NOT the lock-up state —
    flip-flops power up to 0 in this library). ``en`` is an unused
    enable kept so the circuit has a primary input.
    """
    taps = _LFSR_TAPS.get(width)
    if taps is None:
        raise ConfigError(
            f"no primitive polynomial on file for width {width}; "
            f"available: {sorted(_LFSR_TAPS)}"
        )
    c = CircuitGraph(name or f"lfsr{width}")
    c.add_gate("en", GateType.INPUT)
    ffs = [c.add_gate(f"r{i}", GateType.DFF) for i in range(width)]
    # XNOR-fold the taps.
    feedback = None
    for tap in taps:
        bit = ffs[tap - 1]
        if feedback is None:
            feedback = bit
            continue
        gate = c.add_gate(f"fb{tap}", GateType.XNOR)
        c.connect(feedback, gate)
        c.connect(bit, gate)
        feedback = gate
    c.connect(feedback, ffs[0])
    for i in range(1, width):
        c.connect(ffs[i - 1], ffs[i])
    for ff in ffs:
        c.mark_output(ff)
    return c.freeze()


def shift_register(
    width: int, *, name: str | None = None
) -> CircuitGraph:
    """A *width*-stage serial-in shift register (input ``din``)."""
    if width < 1:
        raise ConfigError("width must be >= 1")
    c = CircuitGraph(name or f"shift{width}")
    din = c.add_gate("din", GateType.INPUT)
    previous = din
    for i in range(width):
        ff = c.add_gate(f"q{i}", GateType.DFF)
        c.connect(previous, ff)
        c.mark_output(ff)
        previous = ff
    return c.freeze()


def decoder(bits: int, *, name: str | None = None) -> CircuitGraph:
    """A *bits*-to-2^bits one-hot decoder (combinational).

    Heavy reconvergent fanout from few inputs — a stress shape for
    partitioners (every output depends on every input).
    """
    if not 1 <= bits <= 8:
        raise ConfigError("bits must be in 1..8")
    c = CircuitGraph(name or f"dec{bits}")
    inputs = [c.add_gate(f"x{i}", GateType.INPUT) for i in range(bits)]
    inverted = []
    for i, gate in enumerate(inputs):
        inv = c.add_gate(f"nx{i}", GateType.NOT)
        c.connect(gate, inv)
        inverted.append(inv)
    for value in range(2**bits):
        if bits == 1:
            out = c.add_gate(f"y{value}", GateType.BUF)
            c.connect(inputs[0] if value else inverted[0], out)
        else:
            out = c.add_gate(f"y{value}", GateType.AND)
            for bit in range(bits):
                src = inputs[bit] if (value >> bit) & 1 else inverted[bit]
                c.connect(src, out)
        c.mark_output(out)
    return c.freeze()
