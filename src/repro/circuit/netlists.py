"""Real netlists small enough to embed.

The ISCAS'89 s27 benchmark is tiny (10 logic gates, 3 flip-flops) and
its netlist is reproduced in most of the partitioning literature; it is
embedded here verbatim so the library always has at least one *real*
circuit to validate the synthetic generator and the simulators against.
"""

from __future__ import annotations

from repro.circuit.bench_parser import parse_bench
from repro.circuit.graph import CircuitGraph

#: The ISCAS'89 s27 benchmark, verbatim (.bench format).
S27_BENCH = """\
# s27 (ISCAS'89 sequential benchmark)
# 4 inputs, 1 output, 3 D-type flip-flops, 10 logic gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def load_s27() -> CircuitGraph:
    """The real s27 netlist as a frozen :class:`CircuitGraph`."""
    return parse_bench(S27_BENCH, name="s27")
