"""Structural statistics of a circuit graph.

Used by Table 1 of the paper (benchmark characteristics) and by the
synthetic generator's self-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.levelize import levelize


@dataclass(frozen=True)
class CircuitStats:
    """Summary numbers for one circuit (Table 1 columns and more)."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_dffs: int
    num_edges: int
    max_level: int
    mean_fanout: float
    max_fanout: int
    mean_fanin: float

    def table1_row(self) -> tuple[str, int, int, int]:
        """The (Circuit, Inputs, Gates, Outputs) row of the paper's Table 1.

        The paper's "Gates" column counts logic elements excluding the
        primary inputs/outputs pads, i.e. every non-INPUT vertex.
        """
        return (self.name, self.num_inputs, self.num_gates, self.num_outputs)


def circuit_stats(circuit: CircuitGraph) -> CircuitStats:
    """Compute :class:`CircuitStats` for a frozen circuit."""
    fanouts = np.array([len(g.fanout) for g in circuit.gates], dtype=np.int64)
    logic = [g for g in circuit.gates if g.gate_type is not GateType.INPUT]
    fanins = np.array([len(g.fanin) for g in logic], dtype=np.int64)
    level = levelize(circuit)
    return CircuitStats(
        name=circuit.name,
        num_inputs=len(circuit.primary_inputs),
        num_outputs=len(circuit.primary_outputs),
        num_gates=len(logic),
        num_dffs=len(circuit.dffs),
        num_edges=circuit.num_edges,
        max_level=max(level) if level else 0,
        mean_fanout=float(fanouts.mean()) if len(fanouts) else 0.0,
        max_fanout=int(fanouts.max()) if len(fanouts) else 0,
        mean_fanin=float(fanins.mean()) if len(fanins) else 0.0,
    )
