"""Netlist transformation passes.

Standard structural clean-up passes over :class:`CircuitGraph`:

- :func:`sweep_buffers` — splice out BUF gates (and chains of them);
- :func:`merge_duplicates` — structural hashing: gates with the same
  type and the same ordered fanin are one gate;
- :func:`eliminate_dead_logic` — remove gates that reach no primary
  output (directly or through flip-flops).

Transforms return a NEW circuit (inputs are never mutated) plus a name
map for correlating results, and each is verified against the original
by random-vector equivalence in the test suite
(:mod:`repro.sim.equivalence`).
"""

from __future__ import annotations

from collections import deque

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import CircuitError


def _rebuild(
    circuit: CircuitGraph,
    keep: list[bool],
    redirect: dict[int, int],
    name: str,
) -> CircuitGraph:
    """Build a new circuit with dropped gates spliced through *redirect*.

    ``redirect[g]`` names the gate whose output replaces g's output.
    Chains of redirects are followed to a kept gate.
    """

    def resolve(g: int) -> int:
        seen = set()
        while g in redirect:
            if g in seen:
                raise CircuitError("redirect cycle in transform")
            seen.add(g)
            g = redirect[g]
        return g

    out = CircuitGraph(name)
    index_map: dict[int, int] = {}
    for gate in circuit.gates:
        if keep[gate.index]:
            index_map[gate.index] = out.add_gate(
                gate.name, gate.gate_type, delay=gate.delay
            )
    for gate in circuit.gates:
        if not keep[gate.index]:
            continue
        sink = index_map[gate.index]
        for driver in gate.fanin:
            resolved = resolve(driver)
            if not keep[resolved]:
                raise CircuitError(
                    f"transform dropped {circuit.gates[resolved].name!r} "
                    "while it still drives kept logic"
                )
            out.connect(index_map[resolved], sink)
    for po in circuit.primary_outputs:
        resolved = resolve(po)
        if not keep[resolved]:
            raise CircuitError("transform dropped a primary output cone")
        out.mark_output(index_map[resolved])
    return out.freeze()


def sweep_buffers(circuit: CircuitGraph, *, name: str | None = None) -> CircuitGraph:
    """Splice out every BUF whose removal is observationally safe.

    A BUF that is a primary output is kept (its name IS the output);
    everything else forwards its driver. NOTE: buffer delays vanish with
    the buffer — final quiescent values are preserved, waveform timing
    is not (the classic zero-delay-sweep caveat).
    """
    keep = [True] * circuit.num_gates
    redirect: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.gate_type is GateType.BUF and not gate.is_output:
            keep[gate.index] = False
            redirect[gate.index] = gate.fanin[0]
    return _rebuild(circuit, keep, redirect, name or f"{circuit.name}.nobuf")


def merge_duplicates(
    circuit: CircuitGraph, *, name: str | None = None
) -> CircuitGraph:
    """Structural hashing: equal (type, ordered fanin) gates merge.

    Iterates to a fixpoint (merging two gates can make their sinks
    identical). Symmetric gate types hash order-insensitively. DFFs
    merge too (same data input => same state trajectory, since all
    flip-flops share the implicit clock and reset).
    """
    symmetric = {
        GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
        GateType.XOR, GateType.XNOR,
    }
    n = circuit.num_gates
    alias = list(range(n))

    def resolve(g: int) -> int:
        while alias[g] != g:
            alias[g] = alias[alias[g]]
            g = alias[g]
        return g

    changed = True
    while changed:
        changed = False
        table: dict[tuple, int] = {}
        for gate in circuit.gates:
            if resolve(gate.index) != gate.index:
                continue
            if gate.gate_type is GateType.INPUT:
                continue
            fanin = [resolve(d) for d in gate.fanin]
            if gate.gate_type in symmetric:
                fanin = sorted(fanin)
            key = (gate.gate_type, tuple(fanin), gate.delay)
            owner = table.get(key)
            if owner is None:
                table[key] = gate.index
            elif owner != gate.index:
                # keep the output-marked one if either is a PO
                if gate.is_output and not circuit.gates[owner].is_output:
                    alias[owner] = gate.index
                    table[key] = gate.index
                else:
                    alias[gate.index] = owner
                changed = True

    keep = [resolve(g) == g for g in range(n)]
    redirect = {g: resolve(g) for g in range(n) if resolve(g) != g}
    return _rebuild(circuit, keep, redirect, name or f"{circuit.name}.hashed")


def eliminate_dead_logic(
    circuit: CircuitGraph, *, name: str | None = None
) -> CircuitGraph:
    """Drop every gate with no path to a primary output.

    Reachability runs backwards from the outputs through all edges
    (including through flip-flops: state feeding an output matters).
    Primary inputs are always kept — they are the circuit's interface.
    """
    live = [False] * circuit.num_gates
    queue = deque(circuit.primary_outputs)
    while queue:
        g = queue.popleft()
        if live[g]:
            continue
        live[g] = True
        queue.extend(d for d in circuit.gates[g].fanin if not live[d])
    for pi in circuit.primary_inputs:
        live[pi] = True
    return _rebuild(circuit, live, {}, name or f"{circuit.name}.live")


def optimize(circuit: CircuitGraph, *, name: str | None = None) -> CircuitGraph:
    """The standard pipeline: sweep -> hash -> dead-logic, to fixpoint."""
    result = circuit
    target = name or f"{circuit.name}.opt"
    while True:
        before = result.num_gates
        result = sweep_buffers(result, name=target)
        result = merge_duplicates(result, name=target)
        result = eliminate_dead_logic(result, name=target)
        if result.num_gates == before:
            return result
