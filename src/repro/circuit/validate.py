"""Structural validation of circuit graphs.

Run after parsing or generation: raises :class:`CircuitError` with a
precise message for ill-formed netlists, so downstream partitioners and
simulators can assume a clean graph.
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.circuit.levelize import levelize
from repro.errors import CircuitError


def validate_circuit(circuit: CircuitGraph, *, allow_dead_logic: bool = False) -> None:
    """Check structural invariants of a frozen *circuit*.

    - every gate's fanin arity is legal for its type (re-checked),
    - fanin/fanout adjacency is mutually consistent,
    - the combinational view is acyclic (every loop has a DFF),
    - there is at least one primary input and one primary output,
    - unless ``allow_dead_logic``: every non-output gate drives something.
    """
    if not circuit.frozen:
        raise CircuitError("validate_circuit requires a frozen circuit")
    if not circuit.primary_inputs:
        raise CircuitError("circuit has no primary inputs")
    if not circuit.primary_outputs:
        raise CircuitError("circuit has no primary outputs")

    # Adjacency consistency: u lists v as fanout iff v lists u as fanin,
    # with matching multiplicity (parallel edges are legal).
    for gate in circuit.gates:
        lo = gate.gate_type.min_fanin
        hi = gate.gate_type.max_fanin
        if len(gate.fanin) < lo or (hi is not None and len(gate.fanin) > hi):
            raise CircuitError(
                f"gate {gate.name!r}: illegal fanin arity {len(gate.fanin)}"
            )
        for sink in gate.fanout:
            if gate.fanout.count(sink) != circuit.gates[sink].fanin.count(
                gate.index
            ):
                raise CircuitError(
                    f"adjacency mismatch on edge {gate.name!r} -> "
                    f"{circuit.gates[sink].name!r}"
                )

    levelize(circuit)  # raises on combinational cycles

    if not allow_dead_logic:
        for gate in circuit.gates:
            if gate.gate_type is GateType.INPUT:
                continue
            if not gate.fanout and not gate.is_output:
                raise CircuitError(
                    f"gate {gate.name!r} is dead logic (no fanout, not an output)"
                )
