"""Command-line interface: ``repro-sim`` / ``python -m repro``.

Subcommands::

    repro-sim table1                  # Table 1 at the current scale
    repro-sim table2                  # Table 2 (all circuits)
    repro-sim fig4|fig5|fig6          # the s9234 figures
    repro-sim report [--output f.md]  # all artifacts + claim verdicts
    repro-sim ablations               # A1-A5
    repro-sim run --circuit s9234 --algorithm Multilevel --nodes 8
    repro-sim partition --circuit s9234 --k 8    # static quality only
    repro-sim serve --port 8472       # async job server (README: Serving)

Scale/cycle environment overrides (REPRO_FULL, REPRO_SCALE,
REPRO_CYCLES) apply to every subcommand.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.config import ALGORITHMS, ExperimentConfig
from repro.harness.experiment import ExperimentRunner


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=None,
                        help="circuit scale (default: env or 0.12)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="stimulus cycles (default: env or 60)")
    parser.add_argument("--backend", default=None,
                        choices=["virtual", "process"],
                        help="Time Warp substrate: modelled virtual machine "
                        "or real OS processes (default: env or virtual)")
    parser.add_argument("--transport", default=None,
                        choices=["queue", "shm"],
                        help="process backend wire transport: portable "
                        "multiprocessing queues or shared-memory rings "
                        "with batched fixed-width records (default: env "
                        "or queue)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a JSONL trace of every Time Warp run "
                        "(rollbacks, GVT rounds, queue depths); summarize "
                        "with tools/trace_report.py")
    parser.add_argument("--analyze", action="store_true",
                        help="after the run(s), print the trace forensics "
                        "report (rollback cascades, committed timelines, "
                        "wall-time attribution); requires --trace")
    parser.add_argument("--live-status", default=None, metavar="PATH",
                        dest="live_status",
                        help="process backend: write per-node live-status "
                        "snapshots to PATH.node<i> every GVT round (watch "
                        "with tools/tw_top.py)")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        dest="checkpoint_interval", metavar="VT",
                        help="periodic consistent checkpoints every VT "
                        "virtual time units (process backend: crash-recovery "
                        "epochs; virtual backend: periodic state saving)")
    parser.add_argument("--max-restarts", type=int, default=None,
                        dest="max_restarts", metavar="N",
                        help="process backend: survive up to N crashes per "
                        "node by restarting from the last checkpoint epoch "
                        "(requires --checkpoint-interval)")
    parser.add_argument("--migration-threshold", type=float, default=None,
                        dest="migration_threshold", metavar="R",
                        help="adaptive LP migration: at each GVT epoch move "
                        "loosely-attached hot LPs to the idlest node when "
                        "the busiest node's busy window exceeds R times the "
                        "idlest's (R > 1; both backends)")
    parser.add_argument("--migration-fraction", type=float, default=None,
                        dest="migration_fraction", metavar="F",
                        help="max fraction of the busiest node's LPs moved "
                        "per migration epoch (default 0.05)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect harness metrics and print them at exit")


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    overrides = {}
    if getattr(args, "scale", None) is not None:
        overrides["scale"] = args.scale
    if getattr(args, "cycles", None) is not None:
        overrides["num_cycles"] = args.cycles
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "transport", None) is not None:
        overrides["transport"] = args.transport
    if getattr(args, "trace", None) is not None:
        overrides["trace_path"] = args.trace
    if getattr(args, "live_status", None) is not None:
        overrides["status_path"] = args.live_status
    if getattr(args, "checkpoint_interval", None) is not None:
        overrides["checkpoint_interval"] = args.checkpoint_interval
    if getattr(args, "max_restarts", None) is not None:
        overrides["max_restarts"] = args.max_restarts
    if getattr(args, "migration_threshold", None) is not None:
        overrides["migration_threshold"] = args.migration_threshold
    if getattr(args, "migration_fraction", None) is not None:
        overrides["migration_fraction"] = args.migration_fraction
    if getattr(args, "metrics", False):
        overrides["metrics_enabled"] = True
    config = ExperimentConfig.from_env(**overrides)
    if (
        getattr(args, "circuit", None) == "s27"
        and getattr(args, "scale", None) is None
        and config.scale != 1.0
    ):
        # The s27 netlist ships at full size only; unless the user pinned
        # a scale explicitly, lift the scaled-by-default policy for it.
        from dataclasses import replace

        config = replace(config, scale=1.0)
    return ExperimentRunner(config)


def _serve(args: argparse.Namespace) -> int:
    """Run the job server until interrupted."""
    import asyncio
    import tempfile

    from repro.serve.app import run_server
    from repro.serve.jobs import JobManager

    status_dir = args.status_dir or tempfile.mkdtemp(prefix="repro-serve-")
    manager = JobManager(
        transport=args.transport,
        max_concurrency=args.max_jobs,
        result_cache_size=args.result_cache,
        partition_cache_size=args.partition_cache,
        max_idle_rings=args.max_idle_rings,
        status_dir=status_dir,
    )
    try:
        asyncio.run(run_server(manager, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    finally:
        manager.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse *argv* (default: sys.argv) and run one subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Multilevel partitioning for parallel logic simulation "
        "(IPPS 2000 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "fig4", "fig5", "fig6", "ablations"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(p)

    report_p = sub.add_parser(
        "report", help="full reproduction report (markdown)"
    )
    _add_common(report_p)
    report_p.add_argument("--output", default=None,
                          help="write to file instead of stdout")

    run_p = sub.add_parser("run", help="one parallel simulation")
    _add_common(run_p)
    run_p.add_argument("--circuit", default="s9234",
                       choices=["s27", "s5378", "s9234", "s15850"])
    run_p.add_argument("--algorithm", default="Multilevel", choices=ALGORITHMS)
    run_p.add_argument("--nodes", type=int, default=8)
    run_p.add_argument("--kernel", default="timewarp",
                       choices=["timewarp", "conservative"],
                       help="synchronization protocol")

    part_p = sub.add_parser("partition", help="static partition quality")
    _add_common(part_p)
    part_p.add_argument("--circuit", default="s9234",
                        choices=["s27", "s5378", "s9234", "s15850"])
    part_p.add_argument("--k", type=int, default=8)
    part_p.add_argument("--all", action="store_true",
                        help="include the related-work strategies")

    serve_p = sub.add_parser(
        "serve",
        help="simulation-as-a-service: async HTTP job server with warm "
        "worker pools and partition/result caching",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8472,
                         help="listen port (0 picks an ephemeral port)")
    serve_p.add_argument("--transport", default=None,
                         choices=["queue", "shm"],
                         help="wire transport of the worker rings "
                         "(default: env or queue)")
    serve_p.add_argument("--max-jobs", type=int, default=2,
                         dest="max_jobs", metavar="N",
                         help="jobs executing concurrently (default 2)")
    serve_p.add_argument("--max-idle-rings", type=int, default=4,
                         dest="max_idle_rings", metavar="N",
                         help="warm worker rings kept between jobs")
    serve_p.add_argument("--result-cache", type=int, default=128,
                         dest="result_cache", metavar="N",
                         help="full-result cache entries (default 128)")
    serve_p.add_argument("--partition-cache", type=int, default=64,
                         dest="partition_cache", metavar="N",
                         help="partition cache entries (default 64)")
    serve_p.add_argument("--status-dir", default=None, dest="status_dir",
                         help="directory for per-job live-status "
                         "snapshots (default: a temp dir; SSE streams "
                         "read these)")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    runner = _runner(args)
    if getattr(args, "analyze", False) and runner.config.trace_path is None:
        parser.error("--analyze requires --trace (there is no trace to read)")

    if args.command == "table1":
        from repro.harness.table1 import generate_table1

        print(generate_table1(runner))
    elif args.command == "table2":
        from repro.harness.table2 import generate_table2

        print(generate_table2(runner))
    elif args.command in ("fig4", "fig5", "fig6"):
        from repro.harness import figures

        print(getattr(figures, f"generate_{args.command}")(runner))
    elif args.command == "ablations":
        from repro.harness import ablations

        print(ablations.ablation_quality(runner))
        print()
        print(ablations.ablation_coarsen_threshold(runner))
        print()
        print(ablations.ablation_refiner(runner))
        print()
        print(ablations.ablation_scaling())
        print()
        print(ablations.ablation_window(runner.config))
    elif args.command == "report":
        from repro.harness.report import generate_report

        report = generate_report(runner)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(report + "\n")
            print(f"wrote {args.output}")
        else:
            print(report)
    elif args.command == "run":
        seq = runner.sequential(args.circuit)
        if args.kernel == "conservative":
            if runner.config.backend == "process":
                parser.error(
                    "--kernel conservative runs only on the virtual "
                    "backend (--backend process is Time Warp only)"
                )
            from repro.conservative import ConservativeSimulator
            from repro.warped.machine import VirtualMachine

            result = ConservativeSimulator(
                runner.circuit(args.circuit),
                runner.partition(args.circuit, args.algorithm, args.nodes),
                runner.stimulus(args.circuit),
                VirtualMachine(
                    num_nodes=args.nodes,
                    cost_model=runner.config.tw_costs,
                ),
            ).run()
            assert result.final_values == seq.final_values
        else:
            result = runner.run(args.circuit, args.algorithm, args.nodes)
        print(f"sequential: {seq.execution_time:.2f}s "
              f"({seq.events_processed} events)")
        print(result.summary())
        if getattr(result, "backend", "virtual") == "process":
            # Real OS processes measure real time; the sequential
            # baseline is still the modelled clock, so a ratio would
            # compare incommensurable units.
            print(f"process backend: measured wall-clock over "
                  f"{result.num_nodes} OS processes")
        else:
            speedup = seq.execution_time / result.execution_time
            print(f"speedup over sequential: {speedup:.2f}x")
    elif args.command == "partition":
        from repro.partition.metrics import partition_quality

        names = ALGORITHMS
        if args.all:
            from repro.partition.registry import all_partitioners

            names = tuple(all_partitioners())
        for algorithm in names:
            assignment = runner.partition(args.circuit, algorithm, args.k)
            q = partition_quality(assignment)
            print(
                f"{algorithm:14s} cut={q.edge_cut:6d} "
                f"frac={q.cut_fraction:.3f} imb={q.load_imbalance:.3f} "
                f"conc={q.concurrency:.3f}"
            )
    if runner.trace_files:
        noun = "file" if len(runner.trace_files) == 1 else "files"
        print(f"trace {noun}: {', '.join(runner.trace_files)}")
    if getattr(args, "analyze", False) and runner.trace_files:
        from repro.obs import analyze_trace, render_analysis
        from repro.obs.tracer import read_trace

        # The run subcommand knows which circuit/partition produced the
        # trace, unlocking the critical-path estimate; sweep commands
        # interleave many configurations, so they get trace-only
        # forensics.
        circuit = assignment = cost_model = None
        if args.command == "run" and args.kernel == "timewarp":
            circuit = runner.circuit(args.circuit)
            assignment = runner.partition(
                args.circuit, args.algorithm, args.nodes
            )
            if runner.config.backend == "virtual":
                cost_model = runner.config.tw_costs
        for path in runner.trace_files:
            print()
            print(render_analysis(
                analyze_trace(
                    read_trace(path), circuit=circuit,
                    assignment=assignment, cost_model=cost_model,
                ),
                title=path,
            ))
    if runner.config.metrics_enabled:
        print(runner.metrics.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
