"""A conservative (Chandy-Misra-Bryant) parallel kernel.

The counterpoint to :mod:`repro.warped`: instead of speculating and
rolling back, a node only processes events that are provably safe —
its next event's timestamp must be below the bound promised by every
incoming channel — and deadlock is avoided with null messages carrying
lookahead promises. Kapp et al. [11] (reference 11 of the paper) study
partitioning for exactly this synchronization style; ablation A8
reruns the partitioning comparison under it.

The classic result reproduces here: gate-level circuits have tiny
lookahead (one gate delay), so conservative execution pays a torrent
of null messages and trails Time Warp badly — the reason the paper's
framework is optimistic in the first place.
"""

from repro.conservative.kernel import ConservativeResult, ConservativeSimulator

__all__ = ["ConservativeResult", "ConservativeSimulator"]
