"""The conservative executive: CMB with null messages over the VM.

Event semantics (keys, LP evaluation, stimulus) are byte-identical to
the other two kernels — only the synchronization differs:

- channels exist between node pairs connected by cross-partition
  signals; a channel's *bound* is the promise "nothing with a smaller
  timestamp will ever arrive here" (valid because a node emits with
  nondecreasing timestamps and the network is FIFO);
- a node may process its earliest pending event only while its
  timestamp is strictly below every incoming channel bound;
- when nothing is safe and nothing is in flight, every node broadcasts
  a null message carrying its current output floor (earliest possible
  future emission = earliest local work plus the channel's lookahead,
  the minimum boundary-gate delay); rounds repeat until some node is
  freed — the null-message traffic this generates is the quantity the
  optimistic literature holds against CMB at gate-level lookahead.

Primary-input stimulus and flip-flop reset fan-out are distributed at
initialisation (they are static, known to all nodes), so channels only
ever carry gate-output events, whose lookahead is >= 1 gate delay —
without this, PI-fed channels would have zero lookahead and CMB would
deadlock.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.circuit.gate import FALSE
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.partition.assignment import PartitionAssignment
from repro.sim.event import CAPTURE, SIG, STIM
from repro.sim.stimulus import Stimulus
from repro.warped.lp import LogicalProcess
from repro.warped.machine import VirtualMachine
from repro.warped.messages import Message
from repro.warped.queues import NodeQueue

#: Sentinel bound meaning "this channel will never carry anything again".
INF_TIME = 1 << 60


class ConservativeResult:
    """Outcome of one conservative run (no rollbacks by construction)."""

    def __init__(
        self,
        circuit_name: str,
        algorithm: str,
        num_nodes: int,
        num_cycles: int,
        execution_time: float,
        events_processed: int,
        app_messages: int,
        null_messages: int,
        null_rounds: int,
        final_values: list[int],
    ) -> None:
        self.circuit_name = circuit_name
        self.algorithm = algorithm
        self.num_nodes = num_nodes
        self.num_cycles = num_cycles
        self.execution_time = execution_time
        self.events_processed = events_processed
        self.app_messages = app_messages
        self.null_messages = null_messages
        self.null_rounds = null_rounds
        self.final_values = final_values

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name} [CMB {self.algorithm} x{self.num_nodes}] "
            f"T={self.execution_time:.2f}s ev={self.events_processed} "
            f"msg={self.app_messages} null={self.null_messages}"
        )


class ConservativeSimulator:
    """Run one circuit under one partition, conservatively."""

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        max_null_rounds: int = 5_000_000,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        self.max_null_rounds = max_null_rounds

    # ------------------------------------------------------------------
    def run(self) -> ConservativeResult:
        """Simulate to quiescence under CMB synchronization."""
        circuit = self.circuit
        machine = self.machine
        cost = machine.cost_model
        network = machine.network
        n_nodes = machine.num_nodes
        stim = self.stimulus

        lps = [
            LogicalProcess(gate, self.assignment[gate.index])
            for gate in circuit.gates
        ]
        queues = [NodeQueue() for _ in range(n_nodes)]
        wall = [0.0] * n_nodes

        # --- channels: (src node -> dst node) with per-channel lookahead
        # = min delay of the boundary gates driving it. SIG emissions
        # from gate u arrive with vt = (eval time) + delay(u).
        lookahead: dict[tuple[int, int], int] = {}
        for gate in circuit.gates:
            src_node = lps[gate.index].node
            for sink in gate.fanout:
                dst_node = lps[sink].node
                if dst_node == src_node:
                    continue
                key = (src_node, dst_node)
                lookahead[key] = min(
                    lookahead.get(key, INF_TIME), max(1, gate.delay)
                )
        incoming: dict[int, list[tuple[int, int]]] = defaultdict(list)
        outgoing: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for (src_node, dst_node), la in lookahead.items():
            incoming[dst_node].append((src_node, dst_node))
            outgoing[src_node].append((src_node, dst_node))
        #: Receiver-side promise per channel.
        bound: dict[tuple[int, int], int] = dict.fromkeys(lookahead, 0)
        #: Sender-side floor already promised (avoid duplicate nulls).
        promised: dict[tuple[int, int], int] = dict.fromkeys(lookahead, -1)

        uid_counter = 0

        def next_uid() -> int:
            nonlocal uid_counter
            uid_counter += 1
            return uid_counter

        # --- static schedule, distributed at init (see module docstring):
        # stimulus, captures AND the pre-known PI/reset fan-out copies.
        # Stimulus copies are fanned out here because a runtime STIM copy
        # carries the SAME timestamp as the event that produced it — a
        # zero-lookahead channel message that conservative synchronization
        # cannot admit. The fan-out is static, so every node can hold its
        # copies from the start (the same value-change suppression the
        # LPs apply is applied here).
        from repro.circuit.gate import UNKNOWN

        for ff in circuit.dffs:
            for sink in lps[ff]._sink_list:
                queues[lps[sink].node].push(
                    Message(0, SIG, ff, 0, FALSE, sink, next_uid())
                )
        for cycle in range(stim.num_cycles):
            t = stim.cycle_time(cycle)
            if cycle > 0:
                for ff in circuit.dffs:
                    queues[lps[ff].node].push(
                        Message(t, CAPTURE, ff, cycle, 0, ff, next_uid())
                    )
        for pi in circuit.primary_inputs:
            previous = UNKNOWN
            for cycle in range(stim.num_cycles):
                t = stim.cycle_time(cycle)
                value = stim.value(pi, cycle)
                queues[lps[pi].node].push(
                    Message(t, STIM, pi, cycle, value, pi, next_uid())
                )
                if value != previous:
                    for sink in lps[pi]._sink_list:
                        queues[lps[sink].node].push(
                            Message(t, STIM, pi, cycle, value, sink, next_uid())
                        )
                previous = value

        in_flight: list[tuple[float, int, object]] = []
        flight_seq = 0
        counters = {
            "events": 0,
            "app_messages": 0,
            "null_messages": 0,
            "null_rounds": 0,
        }

        def incoming_bound(node: int) -> int:
            channels = incoming.get(node)
            if not channels:
                return INF_TIME
            return min(bound[ch] for ch in channels)

        def output_floor(node: int, channel: tuple[int, int]) -> int:
            """Earliest timestamp *node* could still emit on *channel*."""
            pending_min = queues[node].min_time
            horizon = min(
                pending_min if pending_min is not None else INF_TIME,
                incoming_bound(node),
            )
            if horizon >= INF_TIME:
                return INF_TIME
            return horizon + lookahead[channel]

        def null_round() -> bool:
            """Broadcast nulls; returns True if any promise advanced."""
            counters["null_rounds"] += 1
            advanced = False
            nonlocal flight_seq
            for node in range(n_nodes):
                sends = 0
                for channel in outgoing.get(node, ()):
                    floor = output_floor(node, channel)
                    if floor <= promised[channel]:
                        continue
                    promised[channel] = floor
                    flight_seq += 1
                    heapq.heappush(
                        in_flight,
                        (
                            wall[node] + network.latency(node, channel[1]),
                            flight_seq,
                            ("null", channel, floor),
                        ),
                    )
                    counters["null_messages"] += 1
                    sends += 1
                    advanced = True
                if sends:
                    wall[node] += cost.send_overhead * sends
            return advanced

        # ------------------------------------------------------------
        event_cost = cost.event_cost
        while True:
            next_arrival = in_flight[0][0] if in_flight else None

            proc_node = -1
            proc_wall = None
            any_pending = False
            for node in range(n_nodes):
                queue = queues[node]
                min_time = queue.min_time
                if min_time is None:
                    continue
                any_pending = True
                if min_time >= incoming_bound(node):
                    continue  # not provably safe yet
                if proc_wall is None or wall[node] < proc_wall:
                    proc_wall = wall[node]
                    proc_node = node

            if next_arrival is None and not any_pending:
                break

            if proc_wall is None or (
                next_arrival is not None and next_arrival <= proc_wall
            ):
                if next_arrival is None:
                    # Blocked everywhere with an empty network: the null
                    # protocol must free someone (lookahead >= 1).
                    if counters["null_rounds"] > self.max_null_rounds:
                        raise SimulationError("null-message budget exhausted")
                    if not null_round():
                        raise SimulationError(
                            "conservative deadlock: no promise can advance"
                        )
                    continue
                arrival, _, payload = heapq.heappop(in_flight)
                if isinstance(payload, tuple) and payload[0] == "null":
                    _, channel, floor = payload
                    dst = channel[1]
                    wall[dst] = max(wall[dst], arrival) + cost.recv_overhead
                    if floor > bound[channel]:
                        bound[channel] = floor
                else:
                    msg = payload
                    dst = lps[msg.dest].node
                    wall[dst] = max(wall[dst], arrival) + cost.recv_overhead
                    channel = (msg_src_node(msg, lps), dst)
                    # With heterogeneous gate delays, emission times on a
                    # channel are NOT monotone (a later event through a
                    # faster gate can emit earlier). The guarantee a real
                    # message carries is therefore derived from the event
                    # that produced it: the sender processed an event at
                    # msg.time - delay(src), so nothing earlier than that
                    # event time + the channel lookahead can still come.
                    promise = (
                        msg.time
                        - circuit.gates[msg.src].delay
                        + lookahead[channel]
                    )
                    if promise > bound[channel]:
                        bound[channel] = promise
                    queues[dst].push(msg)
                continue

            node = proc_node
            msg = queues[node].pop()
            lp = lps[msg.dest]
            record = lp.process(msg, next_uid)
            if msg.prio == STIM and msg.src == msg.dest:
                # The stimulus fan-out was distributed at init; the self
                # event only updates the PI's own output value here.
                record.emissions.clear()
            counters["events"] += 1
            if counters["events"] > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}"
                )
            wall[node] += event_cost
            now = wall[node]
            remote_sends = 0
            for em in record.emissions:
                dest_node = lps[em.dest].node
                if dest_node == node:
                    queues[node].push(em)
                else:
                    flight_seq += 1
                    heapq.heappush(
                        in_flight,
                        (now + network.latency(node, dest_node), flight_seq, em),
                    )
                    channel = (node, dest_node)
                    # Track the *guarantee* this send conveys (see the
                    # delivery path), not its raw timestamp — otherwise a
                    # later, lower null would be wrongly suppressed.
                    promised[channel] = max(
                        promised[channel],
                        em.time - circuit.gates[em.src].delay
                        + lookahead[channel],
                    )
                    counters["app_messages"] += 1
                    remote_sends += 1
            if remote_sends:
                wall[node] += cost.send_overhead * remote_sends
            # History is irrelevant without rollback: reclaim it.
            lp.processed.clear()
            lp.processed_uids.clear()

        return ConservativeResult(
            circuit_name=circuit.name,
            algorithm=self.assignment.algorithm,
            num_nodes=n_nodes,
            num_cycles=stim.num_cycles,
            execution_time=max(wall),
            events_processed=counters["events"],
            app_messages=counters["app_messages"],
            null_messages=counters["null_messages"],
            null_rounds=counters["null_rounds"],
            final_values=[lp.output_value for lp in lps],
        )


def msg_src_node(msg: Message, lps) -> int:
    """Node that emitted *msg* (the source gate's home node)."""
    return lps[msg.src].node
