"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Structural problem in a circuit graph (bad gate, dangling signal...)."""


class BenchParseError(CircuitError):
    """Malformed ISCAS'89 ``.bench`` input."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class VHDLError(ReproError):
    """Base class for the VHDL analyzer substrate."""


class VHDLLexError(VHDLError):
    """Invalid character sequence in VHDL source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{line}:{column}: {message}")


class VHDLParseError(VHDLError):
    """Syntactically invalid VHDL (for the structural subset)."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ElaborationError(VHDLError):
    """Design could not be elaborated into a circuit graph."""


class PartitionError(ReproError):
    """A partitioner produced (or was asked for) an invalid partition."""


class SimulationError(ReproError):
    """Event-driven simulation failed (sequential or Time Warp)."""


class ProtocolError(ReproError):
    """Malformed wire record on a process-backend transport.

    Raised instead of a bare ``struct.error`` when a fixed-width record
    is truncated, fails its checksum, carries an unknown tag, or a field
    overflows the packed width — so transport corruption is always
    diagnosable as such.
    """


class ConfigError(ReproError):
    """Invalid experiment or machine configuration."""
