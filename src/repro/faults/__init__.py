"""Stuck-at fault simulation.

The classic gate-level testing workload: for each single stuck-at-0/1
fault on a gate output, simulate the circuit against a vector set and
ask whether any primary output diverges from the fault-free (golden)
run. Serial fault simulation over the sequential kernel; the faulty
machine is expressed through the kernel's forced-value mechanism, so no
netlist surgery is needed.
"""

from repro.faults.model import Fault, FaultUniverse, all_single_stuck_at
from repro.faults.simulate import FaultCoverage, FaultSimulator
from repro.faults.atpg import AtpgResult, generate_tests

__all__ = [
    "AtpgResult",
    "Fault",
    "FaultCoverage",
    "FaultSimulator",
    "FaultUniverse",
    "all_single_stuck_at",
    "generate_tests",
]
