"""Random test-pattern generation with fault dropping.

The simplest effective ATPG loop: propose random vector batches,
fault-simulate only the still-undetected faults (fault dropping), keep
batches that detect something new, and stop when the target coverage is
reached or the budget runs out. The returned vector set is then
compacted by a reverse greedy pass (drop any batch whose removal does
not lower coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.faults.model import Fault, FaultUniverse
from repro.faults.simulate import FaultSimulator
from repro.sim.stimulus import RandomStimulus, VectorStimulus
from repro.utils.rng import derive_rng


@dataclass
class AtpgResult:
    """Outcome of a test-generation run."""

    circuit_name: str
    vectors: list[dict[str, int]]
    detected: list[Fault] = field(default_factory=list)
    undetected: list[Fault] = field(default_factory=list)
    batches_tried: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name}: {len(self.vectors)} vectors reach "
            f"{self.coverage:.1%} coverage "
            f"({len(self.undetected)} faults escaped, "
            f"{self.batches_tried} batches tried)"
        )


def _vectors_of(circuit: CircuitGraph, stimulus: RandomStimulus) -> list[dict]:
    names = [circuit.gates[pi].name for pi in circuit.primary_inputs]
    return [
        {
            name: stimulus.value(circuit.index_of(name), cycle)
            for name in names
        }
        for cycle in range(stimulus.num_cycles)
    ]


def _detected_by(
    circuit: CircuitGraph,
    vectors: list[dict],
    faults: list[Fault],
    period: int,
) -> list[Fault]:
    if not vectors or not faults:
        return []
    stimulus = VectorStimulus(circuit, vectors, period=period)
    simulator = FaultSimulator(circuit, stimulus)
    coverage = simulator.run(FaultUniverse(circuit, list(faults)))
    return coverage.detected


def generate_tests(
    circuit: CircuitGraph,
    universe: FaultUniverse,
    *,
    target_coverage: float = 0.95,
    batch_cycles: int = 8,
    max_batches: int = 24,
    period: int = 50,
    seed: int | None = None,
    compact: bool = True,
) -> AtpgResult:
    """Generate a vector set for *universe* by random search + dropping."""
    if universe.circuit is not circuit:
        raise SimulationError("fault universe is for a different circuit")
    if not 0.0 < target_coverage <= 1.0:
        raise SimulationError("target_coverage must be in (0, 1]")
    rng = derive_rng(seed, "atpg", circuit.name)

    remaining: list[Fault] = list(universe)
    total = len(remaining)
    detected: list[Fault] = []
    batches: list[list[dict]] = []
    tried = 0

    while remaining and tried < max_batches:
        if total and len(detected) / total >= target_coverage:
            break
        tried += 1
        stimulus = RandomStimulus(
            circuit,
            num_cycles=batch_cycles,
            period=period,
            activity=float(rng.uniform(0.3, 0.9)),
            seed=int(rng.integers(0, 2**31)),
        )
        vectors = _vectors_of(circuit, stimulus)
        newly = _detected_by(circuit, vectors, remaining, period)
        if newly:
            batches.append(vectors)
            detected.extend(newly)
            newly_set = set(newly)
            remaining = [f for f in remaining if f not in newly_set]

    if compact and len(batches) > 1:
        # Reverse greedy: drop batches whose removal keeps coverage.
        essential = list(batches)
        for index in range(len(batches) - 1, -1, -1):
            candidate = essential[:index] + essential[index + 1 :]
            flat = [v for batch in candidate for v in batch]
            covered = _detected_by(circuit, flat, detected, period)
            if len(covered) == len(detected):
                essential = candidate
        batches = essential

    flat = [vector for batch in batches for vector in batch]
    return AtpgResult(
        circuit_name=circuit.name,
        vectors=flat,
        detected=detected,
        undetected=remaining,
        batches_tried=tried,
    )
