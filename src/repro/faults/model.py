"""Fault models: single stuck-at faults on gate outputs."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.circuit.gate import FALSE, TRUE, GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError


@dataclass(frozen=True, order=True)
class Fault:
    """One stuck-at fault: *gate*'s output permanently at *value*."""

    gate: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (FALSE, TRUE):
            raise SimulationError(
                f"stuck-at value must be 0 or 1, got {self.value}"
            )

    def describe(self, circuit: CircuitGraph) -> str:
        """Conventional fault name, e.g. ``"G9/SA0"``."""
        return f"{circuit.gates[self.gate].name}/SA{self.value}"


class FaultUniverse:
    """A set of candidate faults over one circuit."""

    def __init__(self, circuit: CircuitGraph, faults: list[Fault]) -> None:
        self.circuit = circuit
        self.faults = faults
        for fault in faults:
            if not 0 <= fault.gate < circuit.num_gates:
                raise SimulationError(f"fault gate {fault.gate} out of range")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)


def all_single_stuck_at(
    circuit: CircuitGraph, *, include_inputs: bool = True
) -> FaultUniverse:
    """The full single-stuck-at universe: 2 faults per gate output.

    Faults on gates with no observable path exist in the universe too —
    they are the *undetectable* ones coverage reports must account for.
    """
    faults: list[Fault] = []
    for gate in circuit.gates:
        if gate.gate_type is GateType.INPUT and not include_inputs:
            continue
        faults.append(Fault(gate.index, FALSE))
        faults.append(Fault(gate.index, TRUE))
    return FaultUniverse(circuit, faults)
