"""Serial stuck-at fault simulation over the sequential kernel.

The golden (fault-free) run records the primary-output values sampled
at the end of every clock cycle; each faulty machine (one forced gate
output) is simulated against the same vectors, and the fault counts as
*detected* the moment any sampled output differs. End-of-cycle sampling
matches how test equipment strobes outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gate import UNKNOWN
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.faults.model import Fault, FaultUniverse
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import Stimulus
from repro.sim.trace import Trace


@dataclass
class FaultCoverage:
    """Outcome of a fault-simulation campaign."""

    circuit_name: str
    vectors: int
    detected: list[Fault] = field(default_factory=list)
    undetected: list[Fault] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.detected) + len(self.undetected)

    @property
    def coverage(self) -> float:
        """Detected / total, in [0, 1]."""
        return len(self.detected) / self.total if self.total else 1.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name}: {len(self.detected)}/{self.total} "
            f"faults detected ({self.coverage:.1%}) over {self.vectors} "
            "vectors"
        )


class FaultSimulator:
    """Run a fault universe against one stimulus."""

    def __init__(self, circuit: CircuitGraph, stimulus: Stimulus) -> None:
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        self.circuit = circuit
        self.stimulus = stimulus
        self._sample_times = [
            stimulus.cycle_time(cycle + 1) - 1
            for cycle in range(stimulus.num_cycles - 1)
        ] + [stimulus.cycle_time(stimulus.num_cycles - 1) + stimulus.period]

    # ------------------------------------------------------------------
    def _output_samples(self, forced: dict[int, int] | None) -> list[tuple]:
        trace = Trace(self.circuit, watch=self.circuit.primary_outputs)
        SequentialSimulator(
            self.circuit, self.stimulus, trace=trace, forced=forced
        ).run()
        samples = []
        for time in self._sample_times:
            samples.append(
                tuple(
                    trace.value_at(po, time, default=UNKNOWN)
                    for po in self.circuit.primary_outputs
                )
            )
        return samples

    def run(self, universe: FaultUniverse) -> FaultCoverage:
        """Simulate every fault in *universe*; return the coverage."""
        if universe.circuit is not self.circuit:
            raise SimulationError("fault universe is for a different circuit")
        golden = self._output_samples(None)
        coverage = FaultCoverage(
            circuit_name=self.circuit.name,
            vectors=self.stimulus.num_cycles,
        )
        for fault in universe:
            faulty = self._output_samples({fault.gate: fault.value})
            if faulty != golden:
                coverage.detected.append(fault)
            else:
                coverage.undetected.append(fault)
        return coverage

    def is_detected(self, fault: Fault) -> bool:
        """Convenience single-fault query."""
        golden = self._output_samples(None)
        return self._output_samples({fault.gate: fault.value}) != golden
