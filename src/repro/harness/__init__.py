"""Experiment harness: regenerates every table and figure of the paper.

The :class:`~repro.harness.experiment.ExperimentRunner` caches circuits,
stimuli, partitions and simulation results, so Table 2 and Figures 4-6
(which share the s9234 runs) cost one simulation per (circuit,
algorithm, nodes) triple. All artifacts render as ASCII tables/plots;
EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner, RunRecord
from repro.harness.table1 import generate_table1
from repro.harness.table2 import generate_table2
from repro.harness.figures import generate_fig4, generate_fig5, generate_fig6

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "RunRecord",
    "generate_fig4",
    "generate_fig5",
    "generate_fig6",
    "generate_table1",
    "generate_table2",
]
