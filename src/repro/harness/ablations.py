"""Ablation studies (DESIGN.md A1-A5).

These probe the design choices inside the multilevel algorithm and the
machine model, beyond what the paper reports — the directions its
Section 6 lists as ongoing work.
"""

from __future__ import annotations

import time

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.harness.config import ALGORITHMS, ExperimentConfig
from repro.harness.experiment import ExperimentRunner
from repro.partition.metrics import partition_quality
from repro.partition.multilevel.multilevel import MultilevelPartitioner
from repro.partition.registry import get_partitioner
from repro.utils.tables import format_table


def ablation_coarsen_threshold(
    runner: ExperimentRunner,
    circuit_name: str = "s9234",
    k: int = 8,
    thresholds: tuple[int, ...] = (16, 32, 64, 128, 256),
) -> str:
    """A1: coarsening-threshold sweep (levels, cut, runtime)."""
    circuit = runner.circuit(circuit_name)
    rows = []
    for threshold in thresholds:
        partitioner = MultilevelPartitioner(
            seed=runner.config.partition_seed, coarsen_threshold=threshold
        )
        assignment = partitioner.partition(circuit, k)
        quality = partition_quality(assignment)
        rows.append(
            (
                threshold,
                len(partitioner.last_level_sizes),
                partitioner.last_level_sizes[-1],
                quality.edge_cut,
                f"{quality.load_imbalance:.3f}",
                f"{partitioner.last_runtime * 1e3:.1f}",
            )
        )
    return format_table(
        ["threshold", "levels", "coarsest", "edge cut", "imbalance", "ms"],
        rows,
        title=f"A1: coarsening threshold sweep ({circuit.name}, k={k})",
    )


def ablation_refiner(
    runner: ExperimentRunner,
    circuit_name: str = "s9234",
    k: int = 8,
) -> str:
    """A2: refinement algorithm comparison (greedy vs KL vs FM vs none)."""
    circuit = runner.circuit(circuit_name)
    rows = []
    for refiner in ("none", "greedy", "kl", "fm"):
        partitioner = MultilevelPartitioner(
            seed=runner.config.partition_seed, refiner=refiner
        )
        assignment = partitioner.partition(circuit, k)
        quality = partition_quality(assignment)
        rows.append(
            (
                refiner,
                quality.edge_cut,
                f"{quality.cut_fraction:.3f}",
                f"{quality.load_imbalance:.3f}",
                f"{quality.concurrency:.3f}",
                f"{partitioner.last_runtime * 1e3:.1f}",
            )
        )
    return format_table(
        ["refiner", "edge cut", "cut frac", "imbalance", "concurrency", "ms"],
        rows,
        title=f"A2: refinement algorithms ({circuit.name}, k={k})",
    )


def ablation_quality(
    runner: ExperimentRunner,
    circuit_name: str = "s9234",
    k: int = 8,
) -> str:
    """A3: static partition quality of all six algorithms."""
    circuit = runner.circuit(circuit_name)
    rows = []
    for algorithm in ALGORITHMS:
        assignment = runner.partition(circuit_name, algorithm, k)
        quality = partition_quality(assignment)
        rows.append(
            (
                algorithm,
                quality.edge_cut,
                f"{quality.cut_fraction:.3f}",
                f"{quality.load_imbalance:.3f}",
                f"{quality.concurrency:.3f}",
                quality.message_channels,
            )
        )
    return format_table(
        ["algorithm", "edge cut", "cut frac", "imbalance", "concurrency",
         "channels"],
        rows,
        title=f"A3: static partition quality ({circuit.name}, k={k})",
    )


def ablation_scaling(
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000, 8000),
    k: int = 8,
    seed: int = 11,
) -> str:
    """A4: multilevel runtime vs circuit size (the linear-time claim).

    The paper argues O(N_E); this sweep measures wall-clock per edge
    over doubling circuit sizes — a roughly flat last column supports
    linearity.
    """
    rows = []
    for num_gates in sizes:
        spec = GeneratorSpec(
            name=f"scale{num_gates}",
            num_inputs=max(4, num_gates // 150),
            num_outputs=max(4, num_gates // 120),
            num_gates=num_gates,
            num_dffs=max(2, num_gates // 25),
            depth=max(8, num_gates // 120),
            seed=seed,
        )
        circuit = generate_circuit(spec)
        partitioner = MultilevelPartitioner(seed=seed)
        start = time.perf_counter()
        partitioner.partition(circuit, k)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                num_gates,
                circuit.num_edges,
                f"{elapsed * 1e3:.1f}",
                f"{elapsed / circuit.num_edges * 1e6:.2f}",
            )
        )
    return format_table(
        ["gates", "edges", "ms", "us/edge"],
        rows,
        title=f"A4: multilevel runtime scaling (k={k})",
    )


def ablation_window(
    base_config: ExperimentConfig,
    circuit_name: str = "s9234",
    k: int = 8,
    windows: tuple[float | None, ...] = (None, 4.0, 2.0, 1.0, 0.5),
) -> str:
    """A5: optimism-window sweep for the multilevel partition."""
    rows = []
    for window in windows:
        config = ExperimentConfig(
            scale=base_config.scale,
            num_cycles=base_config.num_cycles,
            period=base_config.period,
            activity=base_config.activity,
            circuit_seed=base_config.circuit_seed,
            stimulus_seed=base_config.stimulus_seed,
            partition_seed=base_config.partition_seed,
            window_periods=window,
            gvt_interval=base_config.gvt_interval,
            tw_costs=base_config.tw_costs,
            seq_costs=base_config.seq_costs,
        )
        runner = ExperimentRunner(config)
        record = runner.record(circuit_name, "Multilevel", k)
        rows.append(
            (
                "unbounded" if window is None else f"{window:g}",
                f"{record.execution_time:.2f}",
                record.rollbacks,
                record.events_rolled_back,
                f"{record.efficiency:.3f}",
            )
        )
    return format_table(
        ["window (periods)", "time (s)", "rollbacks", "rolled-back ev",
         "efficiency"],
        rows,
        title=f"A5: optimism window sweep (Multilevel, {circuit_name}, k={k})",
    )
