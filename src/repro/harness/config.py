"""Experiment configuration (and the scaled-by-default policy).

Full-size ISCAS'89 circuits with hundreds of cycles are slow in pure
Python; by default experiments run faithfully-structured scaled
circuits (DESIGN.md §5). Environment overrides:

- ``REPRO_FULL=1`` — paper-scale circuits and cycle counts;
- ``REPRO_SCALE=0.25`` — explicit circuit scale;
- ``REPRO_CYCLES=200`` — explicit stimulus cycle count;
- ``REPRO_BACKEND=process`` — run Time Warp on real OS processes
  instead of the modelled virtual machine;
- ``REPRO_TW_TRANSPORT=shm`` — process-backend wire transport
  (``queue`` or ``shm`` shared-memory rings);
- ``REPRO_TRACE=path.jsonl`` — record a JSONL trace of every run
  (rollbacks, GVT rounds, queue depths; see :mod:`repro.obs`);
- ``REPRO_STATUS=path`` — live per-node status snapshots (process
  backend; ``tools/tw_top.py`` tails them);
- ``REPRO_TW_CKPT=interval`` — periodic consistent checkpoints every
  *interval* virtual time units (process backend: crash-recovery
  epochs; virtual backend: periodic state saving);
- ``REPRO_TW_RESTARTS=n`` — per-node restart budget for the process
  backend (needs ``REPRO_TW_CKPT``);
- ``REPRO_TW_MIGRATE=ratio`` — adaptive LP migration threshold (> 1):
  at each GVT epoch the busiest node sheds LPs toward the idlest when
  its busy window exceeds *ratio* times the idlest's (both backends);
- ``REPRO_TW_MIGRATE_FRACTION=f`` — max fraction of the busiest
  node's LPs moved per migration epoch (default 0.05);
- ``REPRO_METRICS=1`` — collect and print harness-level metrics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.warped.machine import TimeWarpCostModel
from repro.warped.parallel.transport import TRANSPORT_NAMES
from repro.sim.cost_model import SequentialCostModel

#: Circuits of the paper's Table 1, with the node counts Table 2 reports
#: (s15850 lacks the 2-node row: the paper reports that configuration
#: exhausted memory).
TABLE2_NODE_COUNTS: dict[str, tuple[int, ...]] = {
    "s5378": (2, 4, 6, 8),
    "s9234": (2, 4, 6, 8),
    "s15850": (4, 6, 8),
}

#: Node axis of Figures 4-6 (s9234).
FIGURE_NODE_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Partitioner order used in the paper's Table 2 columns.
ALGORITHMS: tuple[str, ...] = (
    "Random",
    "DFS",
    "Cluster",
    "Topological",
    "Multilevel",
    "ConePartition",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one experiment sweep depends on."""

    scale: float = 0.12
    num_cycles: int = 60
    period: int = 100
    activity: float = 0.5
    circuit_seed: int = 2000
    stimulus_seed: int = 7
    partition_seed: int = 3
    #: Optimism window in clock periods (None = unthrottled Time Warp).
    window_periods: float | None = 1.0
    #: Independent repetitions per cell (distinct stimulus seeds), with
    #: the mean reported — the paper "repeated five times and the
    #: average was used". 1 keeps the default artifacts fast.
    repetitions: int = 1
    gvt_interval: int = 512
    #: Time Warp execution substrate: "virtual" runs the deterministic
    #: modelled machine (the paper-reproduction default), "process" runs
    #: one OS process per node and reports measured wall-clock.
    backend: str = "virtual"
    #: Wire transport of the process backend: "queue" (portable
    #: multiprocessing.Queue inboxes) or "shm" (shared-memory rings of
    #: struct-packed records with batched sends).  Ignored by the
    #: virtual backend.
    transport: str = "queue"
    #: JSONL trace destination (None disables tracing).  Every run the
    #: harness executes appends a distinct file derived from this base
    #: (first run gets the exact path; see ExperimentRunner.trace_path).
    trace_path: str | None = None
    #: Live-status base path (process backend only): workers refresh
    #: per-node JSON snapshots ``<base>.node<i>`` every GVT round for
    #: ``tools/tw_top.py`` to tail.  None disables the snapshots.
    status_path: str | None = None
    #: Periodic consistent-checkpoint interval in virtual time units
    #: (None disables).  On the process backend this drives the
    #: crash-recovery epochs; on the virtual backend it selects the
    #: kernel's periodic state-saving policy.
    checkpoint_interval: int | None = None
    #: Per-node restart budget for the process backend (0 = fail-stop;
    #: > 0 needs ``checkpoint_interval``).
    max_restarts: int = 0
    #: Where the process backend keeps its checkpoint epoch files
    #: (None = a temporary directory per run).
    checkpoint_dir: str | None = None
    #: Adaptive LP migration: at each GVT epoch, when the busiest
    #: node's busy window exceeds this ratio times the idlest node's,
    #: loosely-attached hot LPs migrate toward the idlest node.  Must
    #: be > 1; None disables migration (static partitions, as in the
    #: paper).  Honoured by both backends.
    migration_threshold: float | None = None
    #: At most this fraction of the busiest node's LPs moves per
    #: migration epoch.
    migration_fraction: float = 0.05
    #: Collect counters/timers in the harness (printed by the CLI).
    metrics_enabled: bool = False
    tw_costs: TimeWarpCostModel = field(default_factory=TimeWarpCostModel)
    seq_costs: SequentialCostModel = field(default_factory=SequentialCostModel)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.num_cycles < 2:
            raise ConfigError("need at least 2 cycles (cycle 0 is reset)")
        if self.window_periods is not None and self.window_periods <= 0:
            raise ConfigError("window_periods must be positive or None")
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.backend not in ("virtual", "process"):
            raise ConfigError(
                f"backend must be 'virtual' or 'process', got {self.backend!r}"
            )
        if self.transport not in TRANSPORT_NAMES:
            raise ConfigError(
                f"transport must be one of {sorted(TRANSPORT_NAMES)}, "
                f"got {self.transport!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive or None")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.max_restarts > 0 and self.checkpoint_interval is None:
            raise ConfigError(
                "max_restarts needs checkpoint_interval: restarts resume "
                "from periodic checkpoint epochs"
            )
        if (
            self.migration_threshold is not None
            and self.migration_threshold <= 1.0
        ):
            raise ConfigError(
                "migration_threshold must be > 1 (or None): a ratio at or "
                "below 1 would migrate on every epoch"
            )
        if not 0.0 < self.migration_fraction <= 1.0:
            raise ConfigError("migration_fraction must be in (0, 1]")

    @property
    def optimism_window(self) -> int | None:
        if self.window_periods is None:
            return None
        return max(1, round(self.window_periods * self.period))

    @classmethod
    def from_env(cls, **overrides) -> "ExperimentConfig":
        """Default config, honouring the ``REPRO_*`` environment knobs.

        Precedence is uniform across every knob: an explicit override
        (keyword argument — e.g. a CLI flag or a served job's config)
        always wins, the environment only supplies defaults.  The
        specific knobs (``REPRO_SCALE``/``REPRO_CYCLES``) are applied
        before the blanket ``REPRO_FULL`` so they beat its paper-scale
        defaults too.
        """
        if "REPRO_SCALE" in os.environ:
            overrides.setdefault("scale", float(os.environ["REPRO_SCALE"]))
        if "REPRO_CYCLES" in os.environ:
            overrides.setdefault("num_cycles", int(os.environ["REPRO_CYCLES"]))
        if os.environ.get("REPRO_FULL") == "1":
            overrides.setdefault("scale", 1.0)
            overrides.setdefault("num_cycles", 400)
        if "REPRO_REPS" in os.environ:
            overrides.setdefault("repetitions", int(os.environ["REPRO_REPS"]))
        if "REPRO_BACKEND" in os.environ:
            overrides.setdefault("backend", os.environ["REPRO_BACKEND"])
        if "REPRO_TW_TRANSPORT" in os.environ:
            overrides.setdefault(
                "transport", os.environ["REPRO_TW_TRANSPORT"]
            )
        if "REPRO_TRACE" in os.environ:
            overrides.setdefault("trace_path", os.environ["REPRO_TRACE"])
        if "REPRO_STATUS" in os.environ:
            overrides.setdefault("status_path", os.environ["REPRO_STATUS"])
        if "REPRO_TW_CKPT" in os.environ:
            overrides.setdefault(
                "checkpoint_interval", int(os.environ["REPRO_TW_CKPT"])
            )
        if "REPRO_TW_RESTARTS" in os.environ:
            overrides.setdefault(
                "max_restarts", int(os.environ["REPRO_TW_RESTARTS"])
            )
        if "REPRO_TW_MIGRATE" in os.environ:
            overrides.setdefault(
                "migration_threshold", float(os.environ["REPRO_TW_MIGRATE"])
            )
        if "REPRO_TW_MIGRATE_FRACTION" in os.environ:
            overrides.setdefault(
                "migration_fraction",
                float(os.environ["REPRO_TW_MIGRATE_FRACTION"]),
            )
        if os.environ.get("REPRO_METRICS") == "1":
            overrides.setdefault("metrics_enabled", True)
        return cls(**overrides)

    def describe(self) -> str:
        """One-line description recorded next to every artifact."""
        window = (
            "unbounded"
            if self.window_periods is None
            else f"{self.window_periods} period(s)"
        )
        suffix = (
            ""
            if self.backend == "virtual"
            else f" backend={self.backend} transport={self.transport}"
        )
        return (
            f"scale={self.scale:g} cycles={self.num_cycles} "
            f"period={self.period} activity={self.activity:g} "
            f"window={window}{suffix}"
        )
