"""The cached experiment runner behind every table and figure."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import CircuitGraph
from repro.circuit.iscas89 import load_benchmark
from repro.harness.config import ExperimentConfig
from repro.obs import Metrics, TraceWriter
from repro.partition.assignment import PartitionAssignment
from repro.partition.registry import get_partitioner
from repro.sim.kernel import SequentialResult, SequentialSimulator
from repro.sim.stimulus import RandomStimulus
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.machine import VirtualMachine
from repro.warped.parallel import ProcessTimeWarpSimulator
from repro.warped.stats import TimeWarpResult


@dataclass(frozen=True)
class RunRecord:
    """One cell of the paper's evaluation: a (circuit, algo, nodes) run."""

    circuit: str
    algorithm: str
    nodes: int
    execution_time: float
    app_messages: int
    rollbacks: int
    events_processed: int
    events_rolled_back: int
    efficiency: float

    @classmethod
    def from_result(cls, result: TimeWarpResult) -> "RunRecord":
        return cls(
            circuit=result.circuit_name,
            algorithm=result.algorithm,
            nodes=result.num_nodes,
            execution_time=result.execution_time,
            app_messages=result.app_messages,
            rollbacks=result.rollbacks,
            events_processed=result.events_processed,
            events_rolled_back=result.events_rolled_back,
            efficiency=result.efficiency,
        )

    @classmethod
    def mean_of(cls, results: "list[TimeWarpResult]") -> "RunRecord":
        """Average over repetitions — the paper's five-run methodology.

        Counters are reported as (rounded) means so the figures keep
        integer-like semantics.
        """
        n = len(results)
        first = results[0]
        return cls(
            circuit=first.circuit_name,
            algorithm=first.algorithm,
            nodes=first.num_nodes,
            execution_time=sum(r.execution_time for r in results) / n,
            app_messages=round(sum(r.app_messages for r in results) / n),
            rollbacks=round(sum(r.rollbacks for r in results) / n),
            events_processed=round(
                sum(r.events_processed for r in results) / n
            ),
            events_rolled_back=round(
                sum(r.events_rolled_back for r in results) / n
            ),
            efficiency=sum(r.efficiency for r in results) / n,
        )


class ExperimentRunner:
    """Runs and memoizes the simulations behind the paper's artifacts.

    A single runner instance shares circuits, stimuli, partitions and
    completed runs across artifacts — Figures 4-6 reuse the s9234 rows
    of Table 2 instead of resimulating, exactly as the paper's numbers
    come from one set of experiments.
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig.from_env()
        self._circuits: dict[str, CircuitGraph] = {}
        self._stimuli: dict[tuple[str, int], RandomStimulus] = {}
        self._sequential: dict[tuple[str, int], SequentialResult] = {}
        self._partitions: dict[tuple[str, str, int], PartitionAssignment] = {}
        self._runs: dict[tuple[str, str, int, int], TimeWarpResult] = {}
        #: Harness-level counters/timers (a sink unless metrics_enabled).
        self.metrics = Metrics(enabled=self.config.metrics_enabled)
        #: Trace files written so far, in execution order.
        self.trace_files: list[str] = []

    # ------------------------------------------------------------------
    def _next_trace_path(self) -> str | None:
        """Distinct trace file per run: the base path, then numbered."""
        base = self.config.trace_path
        if base is None:
            return None
        path = base if not self.trace_files else f"{base}.{len(self.trace_files)}"
        self.trace_files.append(path)
        return path

    # ------------------------------------------------------------------
    def circuit(self, name: str) -> CircuitGraph:
        """The benchmark circuit at the configured scale (cached)."""
        if name not in self._circuits:
            scale = self.config.scale
            self._circuits[name] = load_benchmark(
                name, scale=scale, seed=self.config.circuit_seed
            )
        return self._circuits[name]

    def stimulus(self, name: str, rep: int = 0) -> RandomStimulus:
        """The workload for circuit *name*, repetition *rep* (cached)."""
        key = (name, rep)
        if key not in self._stimuli:
            self._stimuli[key] = RandomStimulus(
                self.circuit(name),
                num_cycles=self.config.num_cycles,
                period=self.config.period,
                activity=self.config.activity,
                seed=self.config.stimulus_seed + 7919 * rep,
            )
        return self._stimuli[key]

    def sequential(self, name: str, rep: int = 0) -> SequentialResult:
        """The sequential-baseline run for circuit *name* (cached).

        When repetitions > 1, the Table 2 "Seq Time" column uses the
        repetition mean, like every other cell.
        """
        key = (name, rep)
        if key not in self._sequential:
            with self.metrics.time("sequential_run_seconds"):
                self._sequential[key] = SequentialSimulator(
                    self.circuit(name),
                    self.stimulus(name, rep),
                    cost_model=self.config.seq_costs,
                ).run()
            self.metrics.inc("sequential_runs")
        return self._sequential[key]

    def sequential_time(self, name: str) -> float:
        """Mean sequential execution time over the repetitions."""
        reps = self.config.repetitions
        return sum(
            self.sequential(name, rep).execution_time for rep in range(reps)
        ) / reps

    def partition(self, name: str, algorithm: str, k: int) -> PartitionAssignment:
        """The k-way partition of *name* under *algorithm* (cached)."""
        key = (name, algorithm, k)
        if key not in self._partitions:
            partitioner = get_partitioner(
                algorithm, seed=self.config.partition_seed
            )
            self._partitions[key] = partitioner.partition(self.circuit(name), k)
        return self._partitions[key]

    def run(
        self, name: str, algorithm: str, nodes: int, rep: int = 0
    ) -> TimeWarpResult:
        """One optimistic parallel run (cached), verified against the oracle."""
        key = (name, algorithm, nodes, rep)
        if key not in self._runs:
            machine = VirtualMachine(
                num_nodes=nodes,
                cost_model=self.config.tw_costs,
                gvt_interval=self.config.gvt_interval,
                optimism_window=self.config.optimism_window,
                checkpoint_interval=self.config.checkpoint_interval,
                migration_threshold=self.config.migration_threshold,
                migration_fraction=self.config.migration_fraction,
            )
            trace_path = self._next_trace_path()
            quad = (
                self.circuit(name),
                self.partition(name, algorithm, nodes),
                self.stimulus(name, rep),
                machine,
            )
            with self.metrics.time("timewarp_run_seconds"):
                if self.config.backend == "process":
                    result = ProcessTimeWarpSimulator(
                        *quad,
                        trace_path=trace_path,
                        status_path=self.config.status_path,
                        max_restarts=self.config.max_restarts,
                        checkpoint_dir=self.config.checkpoint_dir,
                        transport=self.config.transport,
                    ).run()
                elif trace_path is not None:
                    with TraceWriter(trace_path) as tracer:
                        result = TimeWarpSimulator(*quad, tracer=tracer).run()
                else:
                    result = TimeWarpSimulator(*quad).run()
            self.metrics.inc("timewarp_runs")
            self.metrics.inc("rollbacks_total", result.rollbacks)
            self.metrics.observe("gvt_rounds", result.gvt_rounds)
            self.metrics.observe("rollbacks_per_run", result.rollbacks)
            # Correctness oracle: optimism must not change results.
            seq = self.sequential(name, rep)
            if result.final_values != seq.final_values:
                raise AssertionError(
                    f"Time Warp diverged from sequential on {key}"
                )
            if (
                result.committed_captures is not None
                and result.committed_captures != seq.committed_captures
            ):
                raise AssertionError(
                    f"Time Warp capture history diverged from sequential "
                    f"on {key}"
                )
            self._runs[key] = result
        return self._runs[key]

    def record(self, name: str, algorithm: str, nodes: int) -> RunRecord:
        """The (repetition-averaged) cell for one configuration."""
        reps = self.config.repetitions
        if reps == 1:
            return RunRecord.from_result(self.run(name, algorithm, nodes))
        return RunRecord.mean_of(
            [self.run(name, algorithm, nodes, rep) for rep in range(reps)]
        )

    def sweep(
        self,
        name: str,
        algorithms: tuple[str, ...],
        node_counts: tuple[int, ...],
    ) -> list[RunRecord]:
        """All (algorithm, nodes) cells for one circuit."""
        return [
            self.record(name, algorithm, nodes)
            for algorithm in algorithms
            for nodes in node_counts
        ]
