"""Extension artifacts beyond the paper's tables and figures.

E1 — speedup and parallel efficiency of the multilevel partition, the
metric a systems reader derives from Table 2 by hand: speedup(n) =
T_seq / T_n, efficiency(n) = speedup / n. The paper reports raw times
only; this view makes the scalability knee explicit.
"""

from __future__ import annotations

from repro.harness.config import TABLE2_NODE_COUNTS
from repro.harness.experiment import ExperimentRunner
from repro.utils.tables import format_table


def speedup_rows(
    runner: ExperimentRunner, algorithm: str = "Multilevel"
) -> list[tuple[str, int, float, float, float]]:
    """(circuit, nodes, time, speedup, efficiency) for every Table 2 cell."""
    rows = []
    for circuit, node_counts in TABLE2_NODE_COUNTS.items():
        seq_time = runner.sequential_time(circuit)
        for nodes in node_counts:
            time = runner.record(circuit, algorithm, nodes).execution_time
            speedup = seq_time / time
            rows.append((circuit, nodes, time, speedup, speedup / nodes))
    return rows


def generate_speedup(
    runner: ExperimentRunner | None = None, algorithm: str = "Multilevel"
) -> str:
    """Render the E1 speedup/efficiency table."""
    runner = runner or ExperimentRunner()
    rows = [
        (circuit, nodes, f"{time:.2f}", f"{speedup:.2f}x", f"{eff:.2f}")
        for circuit, nodes, time, speedup, eff in speedup_rows(
            runner, algorithm
        )
    ]
    return format_table(
        ["circuit", "nodes", "time (s)", "speedup", "efficiency"],
        rows,
        title=f"E1: {algorithm} speedup over sequential "
        f"({runner.config.describe()})",
    )
