"""Figures 4, 5 and 6: s9234 execution time, messages and rollbacks.

Each ``generate_fig*`` returns the rendered artifact (series table plus
a small ASCII plot); ``fig*_series`` returns the raw data for tests and
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.harness.config import ALGORITHMS, FIGURE_NODE_COUNTS
from repro.harness.experiment import ExperimentRunner
from repro.utils.tables import ascii_plot, format_series

FIGURE_CIRCUIT = "s9234"


def _series(
    runner: ExperimentRunner, metric: str, node_counts: tuple[int, ...]
) -> dict[str, list[float]]:
    series: dict[str, list[float]] = {}
    for algorithm in ALGORITHMS:
        series[algorithm] = [
            float(getattr(runner.record(FIGURE_CIRCUIT, algorithm, n), metric))
            for n in node_counts
        ]
    return series


def fig4_series(runner: ExperimentRunner) -> dict[str, list[float]]:
    """Execution time vs node count, plus the sequential reference."""
    series = {"Sequential": [
        runner.sequential_time(FIGURE_CIRCUIT)
    ] * len(FIGURE_NODE_COUNTS)}
    series.update(_series(runner, "execution_time", FIGURE_NODE_COUNTS))
    return series


def fig5_series(runner: ExperimentRunner) -> dict[str, list[float]]:
    """Application messages vs node count."""
    return _series(runner, "app_messages", FIGURE_NODE_COUNTS)


def fig6_series(runner: ExperimentRunner) -> dict[str, list[float]]:
    """Total rollbacks vs node count."""
    return _series(runner, "rollbacks", FIGURE_NODE_COUNTS)


def _render(title: str, series: dict[str, list[float]], runner) -> str:
    xs = list(FIGURE_NODE_COUNTS)
    table = format_series(
        "algorithm \\ nodes", xs, series,
        title=f"{title} ({runner.config.describe()})",
    )
    plot = ascii_plot(series, xs, title="")
    return f"{table}\n\n{plot}"


def generate_fig4(runner: ExperimentRunner | None = None) -> str:
    """Render Figure 4 (execution time vs node count)."""
    runner = runner or ExperimentRunner()
    return _render(
        "Figure 4: s9234 execution times (modelled s)",
        fig4_series(runner),
        runner,
    )


def generate_fig5(runner: ExperimentRunner | None = None) -> str:
    """Render Figure 5 (application messages vs node count)."""
    runner = runner or ExperimentRunner()
    return _render(
        "Figure 5: s9234 application messages",
        fig5_series(runner),
        runner,
    )


def generate_fig6(runner: ExperimentRunner | None = None) -> str:
    """Render Figure 6 (rollbacks vs node count)."""
    runner = runner or ExperimentRunner()
    return _render(
        "Figure 6: s9234 rollback behaviour",
        fig6_series(runner),
        runner,
    )
