"""Serialisable kernel-regression cases and their replay machinery.

A *case* is a plain JSON-able dict that pins one complete simulation
configuration: generator spec, stimulus, partitioner, node count,
machine policies, and the engines to run.  The fuzzer
(``tools/fuzz_kernels.py``) writes a case file for every failure it
finds; ``tests/test_regression_corpus.py`` replays every file committed
under ``tests/corpus/`` — so once a fuzz finding is fixed, the exact
configuration that exposed it keeps running in CI forever.

``run_case`` is the single replay path both of them share: it rebuilds
the world from the case, runs every requested engine, and returns a
list of human-readable mismatch descriptions (empty = the case is
clean).  Engine crashes propagate as exceptions; callers that must not
die (the fuzzer) catch them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.circuit import GeneratorSpec, generate_circuit
from repro.conservative import ConservativeSimulator
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import (
    ProcessTimeWarpSimulator,
    TimeWarpSimulator,
    VirtualMachine,
)

#: Machine knobs the process backend honours (the rest model policies
#: it does not implement and are dropped when building its machine).
_PROCESS_MACHINE_KEYS = (
    "optimism_window",
    "gvt_interval",
    "migration_threshold",
    "migration_fraction",
)


def run_case(case: dict) -> list[str]:
    """Replay *case*; returns mismatch descriptions (empty = clean)."""
    spec = GeneratorSpec(**case["spec"])
    circuit = generate_circuit(spec)
    stimulus = RandomStimulus(circuit, **case["stimulus"])
    sequential = SequentialSimulator(circuit, stimulus).run()
    k = case["k"]
    assignment = get_partitioner(
        case["partitioner"], seed=case.get("partitioner_seed", 0)
    ).partition(circuit, k)
    machine_kwargs = dict(case.get("machine", {}))
    failures: list[str] = []

    def check(engine: str, result) -> None:
        if result.final_values != sequential.final_values:
            failures.append(f"{engine}: final values diverged from sequential")
        captures = getattr(result, "committed_captures", None)
        if captures is not None and captures != sequential.committed_captures:
            failures.append(f"{engine}: capture history diverged from sequential")

    process_committed: dict[str, int] = {}
    for engine in case.get("engines", ("timewarp",)):
        if engine == "timewarp":
            machine = VirtualMachine(num_nodes=k, **machine_kwargs)
            result = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
        elif engine in ("process", "process-shm"):
            machine = VirtualMachine(
                num_nodes=k,
                **{
                    key: value
                    for key, value in machine_kwargs.items()
                    if key in _PROCESS_MACHINE_KEYS
                },
            )
            result = ProcessTimeWarpSimulator(
                circuit, assignment, stimulus, machine,
                transport="shm" if engine == "process-shm" else None,
            ).run()
            process_committed[engine] = result.events_committed
        elif engine in ("served", "served-shm"):
            # The warm-ring path the job server executes on: same
            # JobSpec body as the cold process backend, different
            # process lifecycle.  Running it through the differential
            # layer holds warm-pool results to the exact committed
            # output of every other engine.
            from repro.warped.parallel.ring import WorkerRing

            machine = VirtualMachine(
                num_nodes=k,
                **{
                    key: value
                    for key, value in machine_kwargs.items()
                    if key in _PROCESS_MACHINE_KEYS
                },
            )
            with WorkerRing(
                k, transport="shm" if engine == "served-shm" else None
            ) as ring:
                result = ring.run_job(circuit, assignment, stimulus, machine)
            process_committed[engine] = result.events_committed
        elif engine == "conservative":
            result = ConservativeSimulator(
                circuit, assignment, stimulus, VirtualMachine(num_nodes=k)
            ).run()
        else:
            raise ValueError(f"unknown engine {engine!r} in case")
        check(engine, result)
    if len(process_committed) >= 2:
        # Cross-engine determinism: rollback makes the *committed*
        # event count interleaving-independent, so every process-family
        # engine (cold queue/shm, warm served rings) must agree on it
        # exactly — any drift means an engine lost, duplicated, or
        # misdecoded a message.
        counts = sorted(process_committed.items())
        reference_engine, reference_n = counts[0]
        for engine, n in counts[1:]:
            if n != reference_n:
                failures.append(
                    f"engines diverged: {reference_engine} committed "
                    f"{reference_n} events, {engine} {n}"
                )
    return failures


def load_case(path: str | Path) -> dict:
    """Read one case file."""
    return json.loads(Path(path).read_text())


def write_case(case: dict, directory: str | Path, stem: str) -> Path:
    """Write *case* as ``<directory>/<stem>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{stem}.json"
    path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")
    return path
