"""One-shot reproduction report: every artifact plus verdicts.

``repro-sim report`` (or :func:`generate_report`) regenerates Table 1,
Table 2 and Figures 4-6 at the current configuration, computes the
paper's headline claims on the fresh numbers, and emits a single
markdown document — the quickest way to see whether a configuration
still reproduces the paper.
"""

from __future__ import annotations

from repro.harness.config import ALGORITHMS, TABLE2_NODE_COUNTS
from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import (
    FIGURE_NODE_COUNTS,
    fig4_series,
    fig5_series,
    fig6_series,
    generate_fig4,
    generate_fig5,
    generate_fig6,
)
from repro.harness.table1 import generate_table1
from repro.harness.table2 import generate_table2, winners_by_row


def headline_claims(runner: ExperimentRunner) -> list[tuple[str, bool, str]]:
    """(claim, holds?, evidence) for the paper's key statements."""
    claims: list[tuple[str, bool, str]] = []

    # 1. Multilevel halves sequential time at 8 nodes.
    evidence = []
    holds = True
    for circuit in TABLE2_NODE_COUNTS:
        seq = runner.sequential_time(circuit)
        ml = runner.record(circuit, "Multilevel", 8).execution_time
        ratio = ml / seq
        evidence.append(f"{circuit}: {ratio:.2f}x")
        holds &= ratio < 0.5
    claims.append((
        "Multilevel on 8 nodes runs in < 1/2 the sequential time",
        holds,
        ", ".join(evidence),
    ))

    # 2. Multilevel wins beyond 4 nodes on the figure circuit.
    series = fig4_series(runner)
    wins = []
    for nodes in (5, 6, 7, 8):
        idx = FIGURE_NODE_COUNTS.index(nodes)
        ml = series["Multilevel"][idx]
        best_other = min(
            series[a][idx] for a in ALGORITHMS if a != "Multilevel"
        )
        wins.append(ml <= best_other)
    claims.append((
        "Multilevel fastest on s9234 beyond 4 nodes",
        all(wins),
        f"wins at {sum(wins)}/4 of nodes 5-8",
    ))

    # 3. Multilevel fewest messages, Topological most (Figure 5).
    msg = fig5_series(runner)
    idx = FIGURE_NODE_COUNTS.index(8)
    ml_min = msg["Multilevel"][idx] == min(msg[a][idx] for a in ALGORITHMS)
    topo_max = msg["Topological"][idx] == max(msg[a][idx] for a in ALGORITHMS)
    claims.append((
        "Multilevel fewest / Topological most messages at 8 nodes",
        ml_min and topo_max,
        f"ML {msg['Multilevel'][idx]:.0f} vs Topo {msg['Topological'][idx]:.0f}",
    ))

    # 4. Topological never wins a Table 2 row.
    winners = winners_by_row(runner)
    claims.append((
        "Topological never the fastest strategy",
        "Topological" not in winners.values(),
        f"row winners: {sorted(set(winners.values()))}",
    ))

    # 5. Rollback-free at one node (sanity of the optimism machinery).
    rb = fig6_series(runner)
    one = FIGURE_NODE_COUNTS.index(1)
    claims.append((
        "No rollbacks and no messages on a single node",
        all(rb[a][one] == 0 for a in ALGORITHMS),
        "all algorithms at 0",
    ))
    return claims


def generate_report(runner: ExperimentRunner | None = None) -> str:
    """The full markdown report."""
    runner = runner or ExperimentRunner()
    claims = headline_claims(runner)
    held = sum(1 for _, ok, _ in claims if ok)
    lines = [
        "# Reproduction report",
        "",
        "Study of a Multilevel Approach to Partitioning for Parallel "
        "Logic Simulation (IPPS 2000).",
        "",
        f"Configuration: `{runner.config.describe()}`",
        "",
        f"## Headline claims — {held}/{len(claims)} hold",
        "",
    ]
    for claim, ok, evidence in claims:
        mark = "PASS" if ok else "FAIL"
        lines.append(f"- **[{mark}]** {claim} — {evidence}")
    lines.append("")
    for title, text in (
        ("Table 1", generate_table1(runner)),
        ("Table 2", generate_table2(runner)),
        ("Figure 4", generate_fig4(runner)),
        ("Figure 5", generate_fig5(runner)),
        ("Figure 6", generate_fig6(runner)),
    ):
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(text)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
