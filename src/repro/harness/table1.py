"""Table 1: characteristics of the benchmark circuits."""

from __future__ import annotations

from repro.circuit.stats import circuit_stats
from repro.harness.config import TABLE2_NODE_COUNTS
from repro.harness.experiment import ExperimentRunner
from repro.utils.tables import format_table

#: Values printed in the paper's Table 1 (for side-by-side comparison).
PAPER_TABLE1 = {
    "s5378": (35, 2779, 49),
    "s9234": (36, 5597, 39),
    "s15850": (77, 10383, 150),
}


def table1_rows(runner: ExperimentRunner) -> list[tuple[str, int, int, int]]:
    """(Circuit, Inputs, Gates, Outputs) for every benchmark at the
    runner's scale."""
    rows = []
    for name in TABLE2_NODE_COUNTS:
        stats = circuit_stats(runner.circuit(name))
        rows.append(stats.table1_row())
    return rows


def generate_table1(runner: ExperimentRunner | None = None) -> str:
    """Render Table 1, annotated with the paper's full-scale values."""
    runner = runner or ExperimentRunner()
    rows = []
    for circuit, inputs, gates, outputs in table1_rows(runner):
        base = circuit.split("@")[0]
        p_in, p_gates, p_out = PAPER_TABLE1[base]
        rows.append(
            (circuit, inputs, gates, outputs, p_in, p_gates, p_out)
        )
    table = format_table(
        ["Circuit", "Inputs", "Gates", "Outputs",
         "paper:In", "paper:Gates", "paper:Out"],
        rows,
        title="Table 1: Characteristics of benchmarks "
        f"({runner.config.describe()})",
    )
    return table
