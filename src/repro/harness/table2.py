"""Table 2: simulation times for every partitioning algorithm."""

from __future__ import annotations

from repro.harness.config import ALGORITHMS, TABLE2_NODE_COUNTS
from repro.harness.experiment import ExperimentRunner
from repro.utils.tables import format_table

#: The paper's Table 2, for shape comparison: (circuit, nodes) ->
#: (seq, Random, DFS, Cluster, Topological, Multilevel, Cone).
PAPER_TABLE2: dict[tuple[str, int], tuple[float, ...]] = {
    ("s5378", 2): (149.96, 166.44, 118.72, 97.45, 128.63, 91.66, 166.54),
    ("s5378", 4): (149.96, 116.11, 84.80, 83.28, 331.45, 84.07, 113.11),
    ("s5378", 6): (149.96, 131.95, 76.12, 96.86, 194.34, 63.61, 96.07),
    ("s5378", 8): (149.96, 101.89, 81.09, 78.62, 152.91, 52.94, 76.56),
    ("s9234", 2): (651.24, 675.07, 473.90, 417.63, 577.14, 529.39, 701.10),
    ("s9234", 4): (651.24, 496.30, 424.41, 322.02, 434.85, 341.84, 502.60),
    ("s9234", 6): (651.24, 520.80, 320.98, 373.41, 539.59, 316.96, 414.65),
    ("s9234", 8): (651.24, 383.32, 489.97, 415.02, 360.90, 290.31, 351.35),
    ("s15850", 4): (2154.21, 2090.82, 1279.19, 1317.28, 2272.62, 1043.43, 1832.24),
    ("s15850", 6): (2154.21, 1434.79, 906.08, 1351.17, 1439.99, 943.91, 1363.40),
    ("s15850", 8): (2154.21, 1407.33, 947.64, 1215.64, 2735.07, 864.03, 1176.36),
}


def table2_rows(runner: ExperimentRunner) -> list[list[object]]:
    """Rows of Table 2 at the runner's configuration."""
    rows: list[list[object]] = []
    for name, node_counts in TABLE2_NODE_COUNTS.items():
        seq_time = runner.sequential_time(name)
        for nodes in node_counts:
            row: list[object] = [name, f"{seq_time:.2f}", nodes]
            for algorithm in ALGORITHMS:
                record = runner.record(name, algorithm, nodes)
                row.append(record.execution_time)
            rows.append(row)
    return rows


def generate_table2(runner: ExperimentRunner | None = None) -> str:
    """Render Table 2 (modelled seconds)."""
    runner = runner or ExperimentRunner()
    headers = ["Circuit", "Seq Time", "Nodes", *ALGORITHMS]
    return format_table(
        headers,
        table2_rows(runner),
        title="Table 2: Simulation time (modelled s) per partitioning "
        f"algorithm ({runner.config.describe()})",
    )


def winners_by_row(runner: ExperimentRunner) -> dict[tuple[str, int], str]:
    """Fastest algorithm per (circuit, nodes) — the shape check's core."""
    winners = {}
    for name, node_counts in TABLE2_NODE_COUNTS.items():
        for nodes in node_counts:
            best = min(
                ALGORITHMS,
                key=lambda a: runner.record(name, a, nodes).execution_time,
            )
            winners[(name, nodes)] = best
    return winners
