"""Cross-engine observability: metrics and JSONL tracing.

``repro.obs`` is the shared instrumentation layer of the three
execution engines (sequential, virtual Time Warp, multiprocess Time
Warp).  It has two halves:

- :mod:`repro.obs.metrics` — counters, timers and histograms with
  near-zero overhead when disabled (a single attribute check on the
  hot path);
- :mod:`repro.obs.tracer` — a JSONL trace recorder.  Each engine emits
  structured records (per-LP rollback depth, GVT-round latency, inbox
  queue depth, per-node busy/idle breakdown); in the process backend
  every worker writes its own shard and the parent merges them into
  one file ordered by ``(wall time, node)``.

:mod:`repro.obs.report` summarizes merged traces (distributions,
per-node breakdowns) for ``tools/trace_report.py`` and the benchmark
suite.
"""

from repro.obs.metrics import Metrics, summarize
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.tracer import (
    TraceWriter,
    merge_shards,
    read_trace,
    shard_path,
)

__all__ = [
    "Metrics",
    "TraceWriter",
    "merge_shards",
    "read_trace",
    "render_trace_summary",
    "shard_path",
    "summarize",
    "summarize_trace",
]
