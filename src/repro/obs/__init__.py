"""Cross-engine observability: metrics and JSONL tracing.

``repro.obs`` is the shared instrumentation layer of the three
execution engines (sequential, virtual Time Warp, multiprocess Time
Warp).  It has two halves:

- :mod:`repro.obs.metrics` — counters, timers and histograms with
  near-zero overhead when disabled (a single attribute check on the
  hot path);
- :mod:`repro.obs.tracer` — a JSONL trace recorder.  Each engine emits
  structured records (per-LP rollback depth, GVT-round latency, inbox
  queue depth, per-node busy/idle breakdown); in the process backend
  every worker writes its own shard and the parent merges them into
  one file ordered by ``(wall time, node)``.

:mod:`repro.obs.report` summarizes merged traces (distributions,
per-node breakdowns) for ``tools/trace_report.py`` and the benchmark
suite.  :mod:`repro.obs.causality` reconstructs rollback cascades from
the enriched records, and :mod:`repro.obs.analyze` builds the full
forensics bundle (cascade forensics, committed timelines, critical
path, wall-time attribution) plus the per-partitioner scorecard behind
``tools/partition_report.py``.
"""

from repro.obs.analyze import (
    analyze_trace,
    render_analysis,
    render_scorecard,
    scorecard_row,
)
from repro.obs.causality import Cascade, RollbackEvent, build_cascades
from repro.obs.metrics import Metrics, summarize
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.tracer import (
    TraceWriter,
    merge_shards,
    read_trace,
    shard_path,
)

__all__ = [
    "Cascade",
    "Metrics",
    "RollbackEvent",
    "TraceWriter",
    "analyze_trace",
    "build_cascades",
    "merge_shards",
    "read_trace",
    "render_analysis",
    "render_scorecard",
    "render_trace_summary",
    "scorecard_row",
    "shard_path",
    "summarize",
    "summarize_trace",
]
