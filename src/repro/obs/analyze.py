"""Trace forensics: cascades, critical path, wall-time attribution.

``repro.obs.tracer`` records what happened; this module answers *why*
a run was slow.  Four analyses over one merged JSONL trace:

- **rollback forensics** (:func:`cascade_summary`) — the cascade
  forest of :mod:`repro.obs.causality` reduced to actionable numbers:
  depth/width/wasted-event distributions, the straggler sources and
  victim LPs burning the most committed work, and the partition cut
  edges that carried the triggering messages;
- **committed timelines** (:func:`commit_timelines`) — per-LP
  committed-event counts and virtual-time spans from ``commit``
  records;
- **critical path** (:func:`critical_path`) — a reduced estimate of
  the longest chain of causally-dependent committed events, weighted
  by each LP's committed work, with its partition crossings counted
  (needs the circuit; partition optional);
- **attribution** (:func:`wall_time_attribution`) — per-node wall
  clock split into compute / rollback waste / GVT / transport / idle,
  from the enriched ``node_summary`` records.

:func:`analyze_trace` bundles all four; :func:`scorecard_row` /
:func:`render_scorecard` join a run's analysis with the static
partition quality into the per-partitioner scorecard
``tools/partition_report.py`` emits (directly comparable to the
paper's Tables 2-4).
"""

from __future__ import annotations

from repro.obs.causality import Cascade, build_cascades
from repro.obs.metrics import summarize

#: Attribution categories in render order.
ATTR_KEYS = (
    "compute", "rollback", "gvt", "send", "recv",
    "transport", "migration", "idle",
)


# ----------------------------------------------------------------------
# rollback forensics
# ----------------------------------------------------------------------
def cascade_summary(cascades: list[Cascade], *, top: int = 5) -> dict:
    """Aggregate a cascade forest into distributions and top offenders."""
    by_root_src: dict[int, int] = {}
    by_victim: dict[int, dict] = {}
    cut_edges: dict[tuple[int, int], int] = {}
    remote_rollbacks = 0
    for cascade in cascades:
        src = cascade.root.cause_src
        if src is not None:
            by_root_src[int(src)] = by_root_src.get(int(src), 0) + cascade.wasted
        for member in cascade.members:
            bucket = by_victim.setdefault(
                member.lp, {"rollbacks": 0, "wasted": 0}
            )
            bucket["rollbacks"] += 1
            bucket["wasted"] += member.depth
            if member.remote_cause:
                remote_rollbacks += 1
        for edge, count in cascade.boundary_edges().items():
            cut_edges[edge] = cut_edges.get(edge, 0) + count
    rollbacks = sum(c.width for c in cascades)
    return {
        "cascades": len(cascades),
        "rollbacks": rollbacks,
        "wasted_total": sum(c.wasted for c in cascades),
        "remote_rollbacks": remote_rollbacks,
        "chain_depth": summarize([float(c.chain_depth) for c in cascades]),
        "width": summarize([float(c.width) for c in cascades]),
        "wasted": summarize([float(c.wasted) for c in cascades]),
        "top_straggler_sources": sorted(
            by_root_src.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top],
        "top_victims": sorted(
            by_victim.items(), key=lambda kv: (-kv[1]["wasted"], kv[0])
        )[:top],
        "top_cut_edges": sorted(
            cut_edges.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top],
    }


# ----------------------------------------------------------------------
# committed timelines & critical path
# ----------------------------------------------------------------------
def commit_timelines(records: list[dict]) -> dict[int, dict]:
    """Per-LP committed-event count and virtual-time span."""
    timelines: dict[int, dict] = {}
    for record in records:
        if record.get("kind") != "commit":
            continue
        lp = int(record["lp"])
        bucket = timelines.setdefault(
            lp, {"committed": 0, "t_lo": None, "t_hi": None,
                 "node": int(record.get("node", -1))}
        )
        bucket["committed"] += int(record.get("n", 0))
        t_lo = record.get("t_lo")
        if t_lo is not None and (bucket["t_lo"] is None or t_lo < bucket["t_lo"]):
            bucket["t_lo"] = t_lo
        t_hi = record.get("t_hi", t_lo)
        if t_hi is None:
            t_hi = t_lo
        if t_hi is not None and (bucket["t_hi"] is None or t_hi > bucket["t_hi"]):
            bucket["t_hi"] = t_hi
    return timelines


def critical_path(
    records: list[dict],
    circuit,
    *,
    assignment=None,
    cost_model=None,
) -> dict:
    """Reduced critical-path estimate over committed work.

    Longest path through the circuit's acyclic view (edges into DFFs
    cut, exactly :func:`repro.circuit.levelize.levelize`'s view), where
    each gate weighs its committed-event count — the longest chain of
    causally-dependent committed events the run cannot parallelize.
    With *assignment*, counts how often that chain crosses partitions;
    with *cost_model*, converts it to a lower-bound execution time
    (``events * event_cost + crossings * (send + recv overhead)``).
    """
    from repro.circuit.levelize import levelize, levels_to_buckets

    timelines = commit_timelines(records)
    weight = [0] * circuit.num_gates
    for lp, bucket in timelines.items():
        if 0 <= lp < circuit.num_gates:
            weight[lp] = bucket["committed"]
    best = list(weight)
    prev = [-1] * circuit.num_gates
    gates = circuit.gates
    for bucket in levels_to_buckets(levelize(circuit)):
        for v in bucket:
            gate = gates[v]
            if gate.gate_type.is_sequential or gate.gate_type.is_source:
                continue  # inbound edges are cut in the acyclic view
            for u in gate.fanin:
                if best[u] + weight[v] > best[v]:
                    best[v] = best[u] + weight[v]
                    prev[v] = u
    if not best:
        return {"events": 0, "path": [], "crossings": 0, "est_seconds": None}
    end = max(range(len(best)), key=best.__getitem__)
    path = []
    v = end
    while v != -1:
        path.append(v)
        v = prev[v]
    path.reverse()
    crossings = 0
    if assignment is not None:
        part = assignment.assignment
        crossings = sum(
            1 for u, v in zip(path, path[1:]) if part[u] != part[v]
        )
    est = None
    if cost_model is not None:
        est = best[end] * cost_model.event_cost + crossings * (
            cost_model.send_overhead + cost_model.recv_overhead
        )
    return {
        "events": best[end],
        "path": path,
        "crossings": crossings,
        "est_seconds": est,
    }


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def recovery_summary(records: list[dict]) -> dict:
    """Checkpoint/restart accounting from ``ckpt``/``restart`` records.

    Checkpoint totals come from the surviving (newest-attempt) shard
    records; each parent-emitted ``restart`` record contributes its
    replayed-message count and measured downtime, so the report can say
    how much wall clock crash recovery cost the run.
    """
    ckpts = 0
    ckpt_bytes = 0
    ckpt_secs = 0.0
    restarts = []
    for record in records:
        kind = record.get("kind")
        if kind == "ckpt":
            ckpts += 1
            ckpt_bytes += int(record.get("bytes", 0))
            ckpt_secs += float(record.get("secs", 0.0))
        elif kind == "restart":
            restarts.append(record)
    return {
        "checkpoints": ckpts,
        "checkpoint_bytes": ckpt_bytes,
        "checkpoint_seconds": ckpt_secs,
        "restarts": len(restarts),
        "replayed": sum(int(r.get("replayed", 0)) for r in restarts),
        "downtime": sum(float(r.get("downtime", 0.0)) for r in restarts),
        "restart_records": restarts,
    }


# ----------------------------------------------------------------------
# adaptive migration
# ----------------------------------------------------------------------
def migration_summary(records: list[dict]) -> dict:
    """Adaptive-repartitioning accounting from ``migr`` records.

    Each record is one migration event: the shedding node, the
    adopter, how many LPs moved, how many pending events travelled
    with them, and the GVT the decision was taken at.  The per-edge
    table (``src -> dst``) shows where load kept flowing — a single
    dominant edge means one statically overloaded node, a cycle means
    thrash.
    """
    migrations = 0
    lps_moved = 0
    pending_moved = 0
    edges: dict[tuple[int, int], int] = {}
    events = []
    for record in records:
        if record.get("kind") != "migr":
            continue
        migrations += 1
        lps = int(record.get("lps", 0))
        lps_moved += lps
        pending_moved += int(record.get("pending", 0))
        edge = (int(record.get("src", -1)), int(record.get("dst", -1)))
        edges[edge] = edges.get(edge, 0) + lps
        events.append(record)
    return {
        "migrations": migrations,
        "lps_moved": lps_moved,
        "pending_moved": pending_moved,
        "edges": edges,
        "events": events,
    }


# ----------------------------------------------------------------------
# wall-time attribution
# ----------------------------------------------------------------------
def wall_time_attribution(records: list[dict]) -> dict:
    """Per-node wall-clock split from enriched ``node_summary`` records."""
    nodes: dict[int, dict] = {}
    for record in records:
        if record.get("kind") != "node_summary":
            continue
        node = int(record.get("node", -1))
        attr = dict(record.get("attr") or {})
        nodes[node] = {
            "wall": float(record.get("wall", 0.0)),
            "busy": float(record.get("busy", 0.0)),
            "attr": attr,
        }
    totals: dict[str, float] = {}
    for bucket in nodes.values():
        for key, value in bucket["attr"].items():
            if value is not None:
                totals[key] = totals.get(key, 0.0) + float(value)
    return {"nodes": nodes, "totals": totals}


# ----------------------------------------------------------------------
# the bundle
# ----------------------------------------------------------------------
def analyze_trace(
    records: list[dict],
    *,
    circuit=None,
    assignment=None,
    cost_model=None,
    top: int = 5,
) -> dict:
    """Full forensics bundle over one merged trace.

    ``circuit``/``assignment``/``cost_model`` unlock the critical-path
    estimate and its partition crossings; without them the analysis is
    trace-only (cascades, timelines, attribution).
    """
    cascades = build_cascades(records)
    committed = commit_timelines(records)
    analysis = {
        "cascade": cascade_summary(cascades, top=top),
        "cascades": cascades,
        "commits": {
            "lps": len(committed),
            "committed_total": sum(b["committed"] for b in committed.values()),
            "timelines": committed,
        },
        "attribution": wall_time_attribution(records),
        "recovery": recovery_summary(records),
        "migration": migration_summary(records),
        "critical_path": None,
    }
    if circuit is not None:
        analysis["critical_path"] = critical_path(
            records, circuit, assignment=assignment, cost_model=cost_model
        )
    return analysis


def _fmt_seconds(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}s"


def render_analysis(analysis: dict, *, title: str = "trace") -> str:
    """Human-readable multi-section report of :func:`analyze_trace`."""
    cascade = analysis["cascade"]
    lines = [
        f"forensics — {title}",
        f"  rollbacks: {cascade['rollbacks']} in {cascade['cascades']} "
        f"cascades, {cascade['wasted_total']} events wasted "
        f"({cascade['remote_rollbacks']} rollbacks remote-caused)",
    ]
    for label, key in (
        ("chain depth", "chain_depth"),
        ("cascade width", "width"),
        ("wasted/cascade", "wasted"),
    ):
        digest = cascade[key]
        if digest["count"]:
            lines.append(
                f"  {label:<16s} n={digest['count']:<5d} "
                f"p50={digest['p50']:.4g} p90={digest['p90']:.4g} "
                f"max={digest['max']:.4g}"
            )
    if cascade["top_straggler_sources"]:
        lines.append("  top straggler sources (gate: wasted events):")
        for gate, wasted in cascade["top_straggler_sources"]:
            lines.append(f"    gate {gate:<6d} {wasted}")
    if cascade["top_victims"]:
        lines.append("  top victim LPs (gate: rollbacks, wasted):")
        for gate, bucket in cascade["top_victims"]:
            lines.append(
                f"    gate {gate:<6d} {bucket['rollbacks']} rb, "
                f"{bucket['wasted']} ev"
            )
    if cascade["top_cut_edges"]:
        lines.append("  hottest cut edges (src->victim: rollbacks):")
        for (src, dst), count in cascade["top_cut_edges"]:
            lines.append(f"    {src} -> {dst}: {count}")
    commits = analysis["commits"]
    lines.append(
        f"  committed: {commits['committed_total']} events over "
        f"{commits['lps']} LPs"
    )
    recovery = analysis.get("recovery")
    if recovery and (recovery["checkpoints"] or recovery["restarts"]):
        lines.append(
            f"  recovery: {recovery['checkpoints']} checkpoints "
            f"({recovery['checkpoint_bytes']} B, "
            f"{recovery['checkpoint_seconds']:.4g}s), "
            f"{recovery['restarts']} restarts "
            f"({recovery['replayed']} messages replayed, "
            f"{recovery['downtime']:.4g}s downtime)"
        )
        for record in recovery["restart_records"]:
            if record.get("epoch") is None:
                resumed = "restarted from scratch (no complete epoch)"
            else:
                resumed = (
                    f"resumed from epoch cid={record.get('epoch')} "
                    f"gvt={record.get('gvt')}"
                )
            lines.append(
                f"    restart -> attempt {record.get('to_attempt')}: "
                f"nodes {record.get('failed')} failed, {resumed}"
            )
    migration = analysis.get("migration")
    if migration and migration["migrations"]:
        lines.append(
            f"  migration: {migration['lps_moved']} LPs rehomed over "
            f"{migration['migrations']} epochs "
            f"({migration['pending_moved']} pending events travelled)"
        )
        for (src, dst), lps in sorted(
            migration["edges"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"    node {src} -> node {dst}: {lps} LPs")
    path = analysis.get("critical_path")
    if path is not None:
        lines.append(
            f"  critical path: {path['events']} committed events over "
            f"{len(path['path'])} LPs, {path['crossings']} partition "
            f"crossings, est >= {_fmt_seconds(path['est_seconds'])}"
        )
    attribution = analysis["attribution"]
    if attribution["nodes"]:
        lines.append("  wall-time attribution per node:")
        keys = [
            k for k in ATTR_KEYS
            if any(
                bucket["attr"].get(k) is not None
                for bucket in attribution["nodes"].values()
            )
        ]
        header = "    node   wall      " + "".join(f"{k:>10s}" for k in keys)
        lines.append(header)
        for node in sorted(attribution["nodes"]):
            bucket = attribution["nodes"][node]
            row = f"    {node:<6d} {bucket['wall']:<9.4g}"
            for key in keys:
                value = bucket["attr"].get(key)
                row += f"{value:>10.4g}" if value is not None else f"{'-':>10s}"
            lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the per-partitioner scorecard
# ----------------------------------------------------------------------
def boundary_lp_count(assignment) -> int:
    """LPs with at least one incident cut edge (the rollback frontier)."""
    part = assignment.assignment
    boundary: set[int] = set()
    for u, v in assignment.circuit.edges():
        if part[u] != part[v]:
            boundary.add(u)
            boundary.add(v)
    return len(boundary)


def scorecard_row(result, assignment, records: list[dict]) -> dict:
    """Join one traced run with its static partition quality.

    Raises ``AssertionError`` if the trace's cascade accounting does
    not reconcile exactly with the kernel counters — a scorecard built
    from an unaccounted trace would be garbage.
    """
    from repro.partition.metrics import edge_cut

    cascades = build_cascades(records)
    wasted = sum(c.wasted for c in cascades)
    rollbacks = sum(c.width for c in cascades)
    if rollbacks != result.rollbacks:
        raise AssertionError(
            f"{result.algorithm}: trace holds {rollbacks} rollbacks but the "
            f"kernel reports {result.rollbacks} — unattributed rollbacks"
        )
    if wasted != result.events_rolled_back:
        raise AssertionError(
            f"{result.algorithm}: cascades waste {wasted} events but the "
            f"kernel rolled back {result.events_rolled_back} — "
            "cascade accounting does not reconcile"
        )
    cut = edge_cut(assignment)
    messages = result.app_messages + result.local_messages
    return {
        "algorithm": result.algorithm,
        "nodes": result.num_nodes,
        "edge_cut": cut,
        "boundary_lps": boundary_lp_count(assignment),
        "execution_time": result.execution_time,
        "events": result.events_processed,
        "remote_ratio": result.app_messages / messages if messages else 0.0,
        "rollbacks": result.rollbacks,
        "rolled_back": result.events_rolled_back,
        "rollbacks_per_cut_edge": result.rollbacks / cut if cut else 0.0,
        "wasted_per_cut_edge": (
            result.events_rolled_back / cut if cut else 0.0
        ),
        "cascades": len(cascades),
        "max_chain_depth": max((c.chain_depth for c in cascades), default=0),
        "efficiency": result.efficiency,
        "migrations": getattr(result, "migrations", 0),
        "reconciled": True,
    }


def render_scorecard(rows: list[dict], *, title: str = "scorecard") -> str:
    """Aligned text table of :func:`scorecard_row` dicts."""
    header = (
        f"{'algorithm':<14s} {'cut':>5s} {'bLPs':>5s} {'T(s)':>8s} "
        f"{'remote%':>8s} {'rb':>6s} {'wasted':>7s} {'rb/cut':>7s} "
        f"{'casc':>5s} {'chain':>6s} {'eff':>6s} {'migr':>5s}"
    )
    lines = [f"{title} — every rollback cascade-attributed, totals reconciled",
             header]
    for row in rows:
        lines.append(
            f"{row['algorithm']:<14s} {row['edge_cut']:>5d} "
            f"{row['boundary_lps']:>5d} {row['execution_time']:>8.2f} "
            f"{row['remote_ratio']:>7.1%} {row['rollbacks']:>6d} "
            f"{row['rolled_back']:>7d} {row['rollbacks_per_cut_edge']:>7.2f} "
            f"{row['cascades']:>5d} {row['max_chain_depth']:>6d} "
            f"{row['efficiency']:>6.2f} {row.get('migrations', 0):>5d}"
        )
    return "\n".join(lines)
