"""Rollback-cascade reconstruction over enriched trace records.

Both Time Warp engines stamp every ``rollback`` record with its cause
(the straggler or anti-message that triggered it) and with the uids of
the sends the rollback undid (``antis`` — the cancellation obligations
it created).  Those two fields make the rollback history a forest:

- a rollback whose cause is an **anti-message** was triggered by the
  cancellation of a positive some *earlier* rollback undid, so its
  parent is the rollback whose ``antis`` list contains the cause uid;
- a rollback whose cause is a **straggler** (a positive arriving in
  the LP's past) starts a fresh cascade — it is a root.

:func:`build_cascades` reconstructs that forest and aggregates per
cascade: how deep the chain ran, how wide it fanned out, how many
committed-work events it wasted, and which partition-boundary edges it
crossed.  The accounting is exact, not sampled — the sum of wasted
events over all cascades equals the kernel's ``rolled_back`` counter
(``tools/partition_report.py`` and the analyze tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RollbackEvent:
    """One parsed ``rollback`` trace record, plus its cascade links."""

    node: int
    rid: int
    lp: int
    depth: int          # events undone by this rollback
    t: int              # virtual time rolled back to
    ts: float           # wall-clock (epoch-relative) emission time
    seq: int            # per-writer emission order (ts tie-break)
    cause_kind: str     # "straggler" | "anti" | "" (unknown/legacy)
    cause_uid: int | None
    cause_src: int | None   # gate that emitted the triggering message
    cause_node: int | None  # node hosting that gate at send time
    cause_t: int | None     # virtual time of the triggering message
    antis: tuple[int, ...]  # uids of the sends this rollback undid
    parent: "RollbackEvent | None" = None
    children: "list[RollbackEvent]" = field(default_factory=list)

    @property
    def key(self) -> tuple[int, int]:
        """(node, rid) — unique per writer, readable in reports."""
        return (self.node, self.rid)

    @property
    def order(self) -> tuple[float, int, int]:
        """Global happened-at order (wall time, node, writer seq)."""
        return (self.ts, self.node, self.seq)

    @property
    def remote_cause(self) -> bool:
        """True when the triggering message crossed a partition boundary."""
        return self.cause_node is not None and self.cause_node != self.node


def extract_rollbacks(records: list[dict]) -> list[RollbackEvent]:
    """Parse every ``rollback`` record of a trace, in merged order."""
    rollbacks = []
    for record in records:
        if record.get("kind") != "rollback":
            continue
        rollbacks.append(
            RollbackEvent(
                node=int(record.get("node", -1)),
                rid=int(record.get("rid", len(rollbacks) + 1)),
                lp=int(record["lp"]),
                depth=int(record.get("depth", 0)),
                t=int(record.get("t", 0)),
                ts=float(record.get("ts", 0.0)),
                seq=int(record.get("seq", len(rollbacks))),
                cause_kind=str(record.get("cause_kind", "") or ""),
                cause_uid=record.get("cause_uid"),
                cause_src=record.get("cause_src"),
                cause_node=record.get("cause_node"),
                cause_t=record.get("cause_t"),
                antis=tuple(record.get("antis", ())),
            )
        )
    return rollbacks


@dataclass
class Cascade:
    """One rollback tree: a root straggler and everything it triggered."""

    root: RollbackEvent
    members: list[RollbackEvent]

    @property
    def wasted(self) -> int:
        """Total events undone across the cascade (the real cost)."""
        return sum(member.depth for member in self.members)

    @property
    def width(self) -> int:
        """Number of rollback episodes in the cascade."""
        return len(self.members)

    @property
    def chain_depth(self) -> int:
        """Longest root-to-leaf chain of causally linked rollbacks."""
        depth_of: dict[tuple[int, int], int] = {}
        best = 0
        # Members are stored parents-before-children (see build_cascades).
        for member in self.members:
            parent_depth = (
                depth_of[member.parent.key] if member.parent is not None
                and member.parent.key in depth_of else 0
            )
            depth_of[member.key] = parent_depth + 1
            best = max(best, parent_depth + 1)
        return best

    @property
    def nodes(self) -> tuple[int, ...]:
        """Nodes the cascade touched, sorted."""
        return tuple(sorted({member.node for member in self.members}))

    def boundary_edges(self) -> dict[tuple[int, int], int]:
        """(src gate, victim LP) pairs whose message crossed nodes.

        Counts, per cascade member triggered from a *remote* sender,
        the cut edge the triggering message travelled — the partition
        boundaries this cascade burned time on.
        """
        edges: dict[tuple[int, int], int] = {}
        for member in self.members:
            if member.remote_cause and member.cause_src is not None:
                edge = (int(member.cause_src), member.lp)
                edges[edge] = edges.get(edge, 0) + 1
        return edges


def link_rollbacks(rollbacks: list[RollbackEvent]) -> None:
    """Resolve every rollback's ``parent`` link in place.

    A rollback caused by an anti-message links to the **latest**
    rollback (in global ``order``) that undid the cause uid and
    happened before it — "latest" matters under lazy cancellation,
    where a reused send can be undone more than once.  Unresolvable
    causes (straggler roots, missing uids) leave ``parent = None``.
    """
    undone_by: dict[int, list[RollbackEvent]] = {}
    for rollback in rollbacks:
        for uid in rollback.antis:
            undone_by.setdefault(uid, []).append(rollback)
    for candidates in undone_by.values():
        candidates.sort(key=lambda r: r.order)
    for rollback in rollbacks:
        rollback.parent = None
        rollback.children = []
        if rollback.cause_kind != "anti" or rollback.cause_uid is None:
            continue
        candidates = undone_by.get(rollback.cause_uid)
        if not candidates:
            continue
        parent = None
        for candidate in candidates:
            if candidate is rollback or candidate.order >= rollback.order:
                break
            parent = candidate
        rollback.parent = parent
    for rollback in rollbacks:
        if rollback.parent is not None:
            rollback.parent.children.append(rollback)


def build_cascades(records: list[dict]) -> list[Cascade]:
    """Reconstruct the full cascade forest of a merged trace.

    Every rollback record belongs to exactly one returned cascade (a
    rollback with no resolvable parent roots its own), so aggregate
    counts over the forest reconcile exactly with the kernel counters.
    """
    rollbacks = extract_rollbacks(records)
    link_rollbacks(rollbacks)
    cascades = []
    for rollback in rollbacks:
        if rollback.parent is not None:
            continue
        # Iterative pre-order walk: members parents-before-children,
        # which chain_depth relies on.
        members = []
        stack = [rollback]
        while stack:
            member = stack.pop()
            members.append(member)
            stack.extend(reversed(member.children))
        cascades.append(Cascade(root=rollback, members=members))
    return cascades
