"""Counters, timers and histograms with near-zero disabled overhead.

A :class:`Metrics` instance is either enabled or a sink: every method
of a disabled instance returns immediately after one attribute check,
and :meth:`Metrics.time` hands back a shared no-op context manager, so
instrumented code pays (almost) nothing when observability is off —
the overhead budget DESIGN.md §7 commits to.

Histograms store raw samples (runs are bounded: thousands of rollback
or GVT-round samples, not millions of events), which keeps percentile
queries exact.
"""

from __future__ import annotations

import time


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of pre-sorted *sorted_values*.

    Linear interpolation between closest ranks; empty input is a
    caller error.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


#: The digest of an empty sample list: every statistic present (so
#: consumers can read keys unconditionally) but explicitly null.
EMPTY_DIGEST: dict = {
    "count": 0,
    "min": None,
    "mean": None,
    "p50": None,
    "p90": None,
    "max": None,
}


def summarize(values: list[float]) -> dict:
    """count/min/mean/p50/p90/max digest of a sample list.

    An empty sample yields :data:`EMPTY_DIGEST` — all keys present,
    all statistics ``None`` — never a raise or a NaN, so empty-value
    series survive ``snapshot()``/``render()`` and JSON round-trips.
    """
    if not values:
        return dict(EMPTY_DIGEST)
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "min": ordered[0],
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "max": ordered[-1],
    }


class _NullTimer:
    """Shared no-op context manager for disabled metrics."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("metrics", "name", "t0")

    def __init__(self, metrics: "Metrics", name: str) -> None:
        self.metrics = metrics
        self.name = name

    def __enter__(self) -> "_Timer":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.metrics.observe(self.name, time.perf_counter() - self.t0)
        return False


class Metrics:
    """Named counters and histograms; ``enabled=False`` makes it a sink."""

    __slots__ = ("enabled", "counters", "histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, list[float]] = {}

    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name*."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        if not self.enabled:
            return
        self.histograms.setdefault(name, []).append(float(value))

    def time(self, name: str):
        """Context manager recording elapsed seconds into *name*."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    def snapshot(self) -> dict:
        """Plain-dict digest (counters verbatim, histograms summarized)."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: summarize(values)
                for name, values in self.histograms.items()
            },
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = ["metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<28s} {self.counters[name]}")
        for name in sorted(self.histograms):
            s = summarize(self.histograms[name])
            if not s["count"]:
                lines.append(f"  {name:<28s} n=0 (no samples)")
                continue
            lines.append(
                f"  {name:<28s} n={s['count']} min={s['min']:.4g} "
                f"p50={s['p50']:.4g} p90={s['p90']:.4g} max={s['max']:.4g}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
