"""Summaries over merged JSONL traces.

Shared by ``tools/trace_report.py`` (the command-line summarizer) and
the benchmark suite (``bench_process_backend.py`` renders the same
distributions next to its timing table).
"""

from __future__ import annotations

from repro.obs.metrics import summarize


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate a record list into per-node and per-kind digests."""
    kinds: dict[str, int] = {}
    nodes: dict[int, dict] = {}

    def node_bucket(node: int) -> dict:
        if node not in nodes:
            nodes[node] = {
                "rollbacks": 0,
                "rollback_depths": [],
                "inbox_depths": [],
                "events": 0,
                "committed": 0,
                "busy": 0.0,
                "wall": 0.0,
                "gvt_rounds": 0,
            }
        return nodes[node]

    gvt_latencies: list[float] = []
    gvt_trips: list[float] = []
    gvt_rounds = 0
    for record in records:
        kind = record["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        node = int(record.get("node", -1))
        if kind == "rollback":
            bucket = node_bucket(node)
            bucket["rollbacks"] += 1
            bucket["rollback_depths"].append(float(record.get("depth", 0)))
        elif kind == "gvt_round":
            gvt_rounds += 1
            node_bucket(node)["gvt_rounds"] += 1
            if record.get("latency") is not None:
                gvt_latencies.append(float(record["latency"]))
            if record.get("trips") is not None:
                gvt_trips.append(float(record["trips"]))
        elif kind == "inbox_depth":
            node_bucket(node)["inbox_depths"].append(
                float(record.get("depth", 0))
            )
        elif kind == "commit":
            node_bucket(node)["committed"] += int(record.get("n", 0))
        elif kind == "node_summary":
            bucket = node_bucket(node)
            bucket["events"] = int(record.get("events", 0))
            bucket["busy"] = float(record.get("busy", 0.0))
            bucket["wall"] = float(record.get("wall", 0.0))
    return {
        "records": len(records),
        "kinds": kinds,
        "nodes": nodes,
        "rollbacks_total": sum(b["rollbacks"] for b in nodes.values()),
        "gvt_rounds": gvt_rounds,
        "gvt_latency": summarize(gvt_latencies),
        "gvt_trips": summarize(gvt_trips),
        "rollback_depth": summarize(
            [d for b in nodes.values() for d in b["rollback_depths"]]
        ),
        "inbox_depth": summarize(
            [d for b in nodes.values() for d in b["inbox_depths"]]
        ),
    }


def _digest_line(label: str, digest: dict) -> str:
    if not digest.get("count"):
        return f"{label:<18s} (no samples)"
    return (
        f"{label:<18s} n={digest['count']:<6d} min={digest['min']:.4g} "
        f"p50={digest['p50']:.4g} p90={digest['p90']:.4g} "
        f"max={digest['max']:.4g}"
    )


def render_trace_summary(summary: dict, *, title: str = "trace") -> str:
    """ASCII report of :func:`summarize_trace` output."""
    lines = [
        f"{title}: {summary['records']} records, "
        f"{summary['rollbacks_total']} rollbacks, "
        f"{summary['gvt_rounds']} GVT rounds",
        "record kinds: "
        + ", ".join(
            f"{kind}={count}" for kind, count in sorted(summary["kinds"].items())
        ),
        _digest_line("rollback depth", summary["rollback_depth"]),
        _digest_line("gvt latency (s)", summary["gvt_latency"]),
        _digest_line("gvt ring trips", summary["gvt_trips"]),
        _digest_line("inbox depth", summary["inbox_depth"]),
    ]
    workers = {n: b for n, b in summary["nodes"].items() if n >= 0}
    if workers:
        lines.append("per node:")
        for node in sorted(workers):
            bucket = workers[node]
            wall = bucket["wall"]
            util = bucket["busy"] / wall if wall > 0 else 0.0
            lines.append(
                f"  node {node:2d}: events={bucket['events']:<8d} "
                f"rollbacks={bucket['rollbacks']:<6d} "
                f"busy={bucket['busy']:.3f}s wall={wall:.3f}s "
                f"util={util:.0%}"
            )
    return "\n".join(lines)
