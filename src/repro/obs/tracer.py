"""JSONL trace recording and multi-process shard merging.

One trace record per line::

    {"ts": 0.001234, "node": 2, "seq": 41, "kind": "rollback", ...}

``ts`` is seconds since the run's epoch (wall clock, comparable across
processes — every shard writer shares the epoch the parent sampled at
launch).  ``node`` is the emitting node, ``-1`` for the parent or a
single-process engine.  ``seq`` is a per-writer monotonic counter —
the within-writer emission order, robust to ``ts`` collisions (the
clock's resolution is far coarser than the emit rate).  ``kind``
selects the schema of the remaining fields; DESIGN.md §7 documents
every kind.

In the process backend each worker writes its own shard
(``<base>.node<i>``, see :func:`shard_path`) so tracing never
synchronizes the workers; the parent merges the shards into ``<base>``
ordered by ``(ts, node, seq)`` once the run completes — a total,
deterministic order even when records from different writers collide
on wall time.

Non-finite floats are mapped to ``None`` on the way out so every line
is strict JSON (``GVT == +inf`` — the quiescence proof — serializes as
``"gvt": null`` with ``"final": true`` alongside).
"""

from __future__ import annotations

import json
import math
import time


def shard_path(base: str, node: int, attempt: int = 0) -> str:
    """The per-worker shard file for *node* under merged path *base*.

    Restart attempts write to distinct files (``<base>.node<i>.r<k>``
    for attempt ``k > 0``) so a crashed worker's shard survives for
    post-mortem while its replacement starts a fresh one.
    """
    if attempt:
        return f"{base}.node{node}.r{attempt}"
    return f"{base}.node{node}"


class TraceWriter:
    """Streaming JSONL writer for one process's trace records."""

    __slots__ = ("path", "node", "epoch", "attempt", "records_written", "_fh")

    def __init__(
        self,
        path: str,
        *,
        node: int = -1,
        epoch: float | None = None,
        attempt: int = 0,
    ):
        self.path = str(path)
        self.node = node
        self.epoch = time.time() if epoch is None else epoch
        #: Restart-attempt id; stamped on every record when non-zero so
        #: :func:`merge_shards` can discard a crashed lineage's records
        #: in favour of its replacement's.
        self.attempt = attempt
        self.records_written = 0
        # Line-buffered on purpose: a crashing worker leaves complete
        # records behind for post-mortem instead of an empty shard.
        self._fh = open(self.path, "w", buffering=1)

    def emit(self, kind: str, *, node: int | None = None, **fields) -> None:
        """Append one record of *kind* (extra fields go out verbatim)."""
        if self._fh is None:  # pragma: no cover - defensive
            return
        record: dict = {
            "ts": round(time.time() - self.epoch, 6),
            "node": self.node if node is None else node,
            "seq": self.records_written,
            "kind": kind,
        }
        if self.attempt:
            record["attempt"] = self.attempt
        for key, value in fields.items():
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            record[key] = value
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_trace(path: str) -> list[dict]:
    """All records of a JSONL trace file, in file order."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_shards(
    base: str,
    shards: list[str],
    *,
    extra: list[dict] | None = None,
    keep_shards: bool = False,
) -> int:
    """Merge worker *shards* into *base*, ordered by ``(ts, node, seq)``.

    ``seq`` is the per-writer monotonic counter :class:`TraceWriter`
    stamps on every record, so records with identical wall time — from
    the same writer or from different nodes — merge deterministically;
    legacy records without a ``seq`` field fall back to their
    within-shard file order.  Missing shards are skipped — a worker
    that died before opening its file is not an error here; the backend
    reports worker death separately.

    Records carry an ``attempt`` field when a restarted worker emitted
    them (see :class:`TraceWriter`); for each node only the records of
    its **newest** attempt are merged.  A respawned worker re-executes
    — and re-traces — the work since the restore checkpoint, so keeping
    a crashed lineage's records alongside its replacement's would
    double-count that overlap.  Parent-emitted records (``node == -1``)
    never carry ``attempt`` and are always kept.

    Shards are deleted after a successful merge unless *keep_shards*.
    Returns the number of merged records.
    """
    import os

    staged: list[tuple[float, int, int, dict]] = []
    newest: dict[int, int] = {}
    for path in shards:
        try:
            records = read_trace(path)
        except FileNotFoundError:
            continue
        for order, record in enumerate(records):
            node = int(record.get("node", -1))
            newest[node] = max(newest.get(node, 0), record.get("attempt", 0))
            staged.append(
                (float(record.get("ts", 0.0)), node,
                 int(record.get("seq", order)), record)
            )
    keyed = [
        item for item in staged
        if item[3].get("attempt", 0) == newest.get(item[1], 0)
    ]
    for order, record in enumerate(extra or []):
        keyed.append(
            (float(record.get("ts", 0.0)), int(record.get("node", -1)),
             int(record.get("seq", order)), record)
        )
    keyed.sort(key=lambda item: item[:3])
    with open(base, "w") as fh:
        for _, _, _, record in keyed:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    if not keep_shards:
        for path in shards:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
    return len(keyed)
