"""Circuit partitioning: the six algorithms of the paper plus metrics.

All partitioners implement the same interface (:class:`Partitioner`):
given a frozen :class:`~repro.circuit.CircuitGraph` and a partition
count ``k``, return a :class:`PartitionAssignment` mapping every gate to
a partition. :data:`repro.partition.registry.PARTITIONERS` enumerates
them by the names used in the paper's tables/figures.
"""

from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner
from repro.partition.metrics import (
    PartitionQuality,
    edge_cut,
    load_imbalance,
    partition_quality,
)
from repro.partition.random_part import RandomPartitioner
from repro.partition.topological import TopologicalPartitioner
from repro.partition.depth_first import DepthFirstPartitioner
from repro.partition.cluster_bfs import ClusterPartitioner
from repro.partition.cone import ConePartitioner
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.registry import PARTITIONERS, get_partitioner

__all__ = [
    "PARTITIONERS",
    "ClusterPartitioner",
    "ConePartitioner",
    "DepthFirstPartitioner",
    "MultilevelPartitioner",
    "PartitionAssignment",
    "PartitionQuality",
    "Partitioner",
    "RandomPartitioner",
    "TopologicalPartitioner",
    "edge_cut",
    "get_partitioner",
    "load_imbalance",
    "partition_quality",
]
