"""Partition assignments: gate -> partition mapping with invariants."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.circuit.graph import CircuitGraph
from repro.errors import PartitionError


class PartitionAssignment:
    """A complete ``k``-way assignment of gates to partitions.

    Invariants (enforced by :meth:`validate`): every gate of the circuit
    is assigned to exactly one partition in ``0..k-1``, and no partition
    is empty when ``k <= num_gates``.
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        k: int,
        assignment: Sequence[int],
        *,
        algorithm: str = "unknown",
    ) -> None:
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        if len(assignment) != circuit.num_gates:
            raise PartitionError(
                f"assignment covers {len(assignment)} gates, "
                f"circuit has {circuit.num_gates}"
            )
        self.circuit = circuit
        self.k = k
        self.assignment = list(assignment)
        self.algorithm = algorithm

    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(
        cls,
        circuit: CircuitGraph,
        blocks: Sequence[Iterable[int]],
        *,
        algorithm: str = "unknown",
    ) -> "PartitionAssignment":
        """Build from explicit per-partition gate lists."""
        assignment = [-1] * circuit.num_gates
        for part, members in enumerate(blocks):
            for gate in members:
                if not 0 <= gate < circuit.num_gates:
                    raise PartitionError(f"gate index {gate} out of range")
                if assignment[gate] != -1:
                    raise PartitionError(
                        f"gate {gate} assigned to partitions "
                        f"{assignment[gate]} and {part}"
                    )
                assignment[gate] = part
        if any(p == -1 for p in assignment):
            missing = assignment.index(-1)
            raise PartitionError(
                f"gate {circuit.gates[missing].name!r} is unassigned"
            )
        return cls(circuit, len(blocks), assignment, algorithm=algorithm)

    @classmethod
    def from_mapping(
        cls,
        circuit: CircuitGraph,
        k: int,
        mapping: Mapping[int, int],
        *,
        algorithm: str = "unknown",
    ) -> "PartitionAssignment":
        """Build from a ``{gate_index: partition}`` mapping."""
        assignment = [-1] * circuit.num_gates
        for gate, part in mapping.items():
            assignment[gate] = part
        return cls(circuit, k, assignment, algorithm=algorithm)

    # ------------------------------------------------------------------
    def __getitem__(self, gate: int) -> int:
        return self.assignment[gate]

    def __len__(self) -> int:
        return len(self.assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionAssignment):
            return NotImplemented
        return self.k == other.k and self.assignment == other.assignment

    def parts(self) -> list[list[int]]:
        """Gate indices grouped by partition."""
        blocks: list[list[int]] = [[] for _ in range(self.k)]
        for gate, part in enumerate(self.assignment):
            blocks[part].append(gate)
        return blocks

    def sizes(self) -> list[int]:
        """Number of gates in each partition."""
        counts = [0] * self.k
        for part in self.assignment:
            counts[part] += 1
        return counts

    def validate(self) -> None:
        """Raise :class:`PartitionError` if any invariant is violated."""
        for gate, part in enumerate(self.assignment):
            if not 0 <= part < self.k:
                raise PartitionError(
                    f"gate {self.circuit.gates[gate].name!r} assigned to "
                    f"partition {part}, legal range 0..{self.k - 1}"
                )
        if self.k <= self.circuit.num_gates:
            sizes = self.sizes()
            for part, size in enumerate(sizes):
                if size == 0:
                    raise PartitionError(f"partition {part} is empty")

    def relabel(self, new_k: int, mapping: Sequence[int]) -> "PartitionAssignment":
        """Apply a partition-id relabelling (e.g. merging partitions)."""
        if len(mapping) != self.k:
            raise PartitionError("mapping must cover all current partitions")
        return PartitionAssignment(
            self.circuit,
            new_k,
            [mapping[p] for p in self.assignment],
            algorithm=self.algorithm,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionAssignment(k={self.k}, algorithm={self.algorithm!r}, "
            f"sizes={self.sizes()})"
        )
