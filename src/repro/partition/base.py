"""Abstract partitioner interface."""

from __future__ import annotations

import abc
import time

from repro.circuit.graph import CircuitGraph
from repro.errors import PartitionError
from repro.partition.assignment import PartitionAssignment
from repro.utils.rng import RngLike


class Partitioner(abc.ABC):
    """Base class for all static circuit partitioners.

    Subclasses set :attr:`name` to the label used in the paper's figures
    and implement :meth:`_partition`. The public :meth:`partition`
    validates inputs and the result, so algorithm implementations can
    focus on the assignment itself.
    """

    #: Display name; matches the legend labels in the paper's figures.
    name: str = "abstract"

    def __init__(self, seed: RngLike = None) -> None:
        self.seed = seed
        #: Wall-clock seconds spent in the last :meth:`partition` call.
        self.last_runtime: float = 0.0

    @abc.abstractmethod
    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        """Produce a k-way assignment (invariants checked by the caller)."""

    def partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        """Partition *circuit* into *k* parts; validates the result."""
        if not circuit.frozen:
            raise PartitionError("circuit must be frozen before partitioning")
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        if k > circuit.num_gates:
            raise PartitionError(
                f"cannot split {circuit.num_gates} gates into {k} partitions"
            )
        start = time.perf_counter()
        result = self._partition(circuit, k)
        self.last_runtime = time.perf_counter() - start
        result.algorithm = self.name
        result.validate()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self.seed!r})"


def fill_empty_partitions(assignment: list[int], k: int) -> None:
    """Repair *assignment* in place so every partition id 0..k-1 is used.

    Moves single gates out of the largest partitions. Degenerate inputs
    (k close to the gate count with chunky capacity rounding) are the
    only way partitioners reach this; the repair is O(n·empties).
    """
    counts = [0] * k
    for part in assignment:
        counts[part] += 1
    for dest in range(k):
        while counts[dest] == 0:
            donor = max(range(k), key=counts.__getitem__)
            if counts[donor] <= 1:
                raise PartitionError("not enough gates to populate partitions")
            mover = next(i for i, p in enumerate(assignment) if p == donor)
            assignment[mover] = dest
            counts[donor] -= 1
            counts[dest] += 1


def balanced_capacity(num_gates: int, k: int, slack: float = 0.0) -> int:
    """Maximum partition size for a balanced k-way split with *slack*.

    ``slack=0.05`` allows each partition 5% above the perfectly even
    share (rounded up); partitioners use this as their feasibility bound.
    """
    if k < 1:
        raise PartitionError("k must be >= 1")
    even = -(-num_gates // k)  # ceil division
    return max(1, int(even * (1.0 + slack)) + (1 if slack > 0 else 0))
