"""Cluster (breadth-first) partitioning.

Like the DFS partitioner but over a BFS traversal from the primary
inputs: gates at similar depths cluster into the same contiguous chunk.
The paper labels this scheme "Cluster (Breadth First)"; it shares DFS's
concurrency weakness (chunks activate in sequence) while cutting fewer
chain edges than Random.
"""

from __future__ import annotations

from collections import deque

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner


def bfs_order(circuit: CircuitGraph) -> list[int]:
    """Gate indices in BFS-over-fanout order from all primary inputs.

    The BFS starts from every primary input simultaneously (one shared
    frontier), so the order is by increasing hop distance from the
    inputs. Unreached gates are appended in index order.
    """
    seen = [False] * circuit.num_gates
    order: list[int] = []
    queue: deque[int] = deque()
    for root in circuit.primary_inputs:
        if not seen[root]:
            seen[root] = True
            queue.append(root)
    gates = circuit.gates
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in gates[u].fanout:
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    for u in range(circuit.num_gates):
        if not seen[u]:
            order.append(u)
    return order


class ClusterPartitioner(Partitioner):
    """Contiguous chunks of the BFS traversal order."""

    name = "Cluster"

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        order = bfs_order(circuit)
        n = len(order)
        assignment = [0] * n
        for position, gate in enumerate(order):
            assignment[gate] = min(k - 1, position * k // n)
        return PartitionAssignment(circuit, k, assignment)
