"""Fanout-cone partitioning (Smith et al. [19]).

The fanout cone of each primary input — every gate its transitions can
reach — is kept together: cones are assigned whole where possible
(first-come for gates shared by several cones) to the currently
least-loaded partition, largest cone first. Keeping cones intact
minimises communication along activity paths; the balance granularity
is coarse, which is why the paper finds the Cone partitioner
competitive but not the winner.

Real circuits have strongly overlapping cones, and a high-fanout input
can reach most of the netlist; a capacity bound therefore spills the
tail of an oversized cone (in DFS preorder, so each spilled piece is a
deep subtree) into the next partitions instead of collapsing everything
into one.
"""

from __future__ import annotations


from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import (
    Partitioner,
    balanced_capacity,
    fill_empty_partitions,
)
from repro.utils.rng import derive_rng


def _cone_dfs_order(circuit: CircuitGraph, root: int) -> list[int]:
    """Fanout cone of *root* (through DFFs) in DFS preorder.

    Preorder matters when a cone is larger than a partition and must be
    spilled: consecutive preorder slices are deep subtrees with few
    boundary signals, whereas breadth-first slices cut every chain they
    cross.
    """
    seen = {root}
    order: list[int] = []
    stack = [root]
    gates = circuit.gates
    while stack:
        u = stack.pop()
        order.append(u)
        for v in reversed(gates[u].fanout):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return order


class ConePartitioner(Partitioner):
    """Cluster the fanout cones of the primary inputs."""

    name = "ConePartition"

    def __init__(self, seed=None, *, slack: float = 0.10) -> None:
        super().__init__(seed)
        self.slack = slack

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "cone-partitioner", circuit.name, k)
        capacity = balanced_capacity(circuit.num_gates, k, self.slack)
        cones = [
            (pi, _cone_dfs_order(circuit, pi)) for pi in circuit.primary_inputs
        ]
        cones.sort(key=lambda item: (-len(item[1]), item[0]))

        assignment = [-1] * circuit.num_gates
        sizes = [0] * k
        for _, cone in cones:
            fresh = [g for g in cone if assignment[g] == -1]
            while fresh:
                dest = min(range(k), key=sizes.__getitem__)
                room = capacity - sizes[dest]
                if room <= 0:
                    # All partitions at capacity can only happen through
                    # rounding; relax by one gate at a time.
                    room = 1
                chunk, fresh = fresh[:room], fresh[room:]
                for gate in chunk:
                    assignment[gate] = dest
                sizes[dest] += len(chunk)
        # Gates unreachable from any primary input (isolated DFF loops):
        # scatter them over the least-loaded partitions.
        stragglers = [g for g in range(circuit.num_gates) if assignment[g] == -1]
        rng.shuffle(stragglers)
        for gate in stragglers:
            dest = min(range(k), key=sizes.__getitem__)
            assignment[gate] = dest
            sizes[dest] += 1
        # Tight capacities (k close to the gate count) can still strand
        # empty partitions; peel single gates off the largest ones.
        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
