"""Depth-first traversal partitioning (Kapp et al. [11]).

Gates are visited by an iterative DFS over fanout edges starting from
the primary inputs, and assigned to partitions in traversal order in
contiguous chunks of ``n/k``. Chunks follow signal chains, so the edge
cut is small — but the first partitions hold all the shallow logic, so
partitions are activated one after another: the low-concurrency failure
mode the paper reports for DFS at higher node counts.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner


def dfs_order(circuit: CircuitGraph) -> list[int]:
    """Gate indices in DFS-over-fanout order from the primary inputs.

    Unreached gates (possible with isolated DFF loops) are appended in
    index order so the order is always a complete permutation.
    """
    seen = [False] * circuit.num_gates
    order: list[int] = []
    gates = circuit.gates
    for root in circuit.primary_inputs:
        if seen[root]:
            continue
        stack = [root]
        while stack:
            u = stack.pop()
            if seen[u]:
                continue
            seen[u] = True
            order.append(u)
            # Reversed so the first-listed fanout is explored first.
            stack.extend(v for v in reversed(gates[u].fanout) if not seen[v])
    for u in range(circuit.num_gates):
        if not seen[u]:
            order.append(u)
    return order


class DepthFirstPartitioner(Partitioner):
    """Contiguous chunks of the DFS traversal order."""

    name = "DFS"

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        order = dfs_order(circuit)
        n = len(order)
        assignment = [0] * n
        for position, gate in enumerate(order):
            assignment[gate] = min(k - 1, position * k // n)
        return PartitionAssignment(circuit, k, assignment)
