"""Related-work partitioners surveyed in Section 2 of the paper.

These are NOT part of the paper's six-way study (Table 2 / Figures 4-6
use only the strategies in :data:`repro.partition.registry.PARTITIONERS`);
they implement the surrounding literature the paper reviews, so the
multilevel algorithm can be compared against a wider field:

- :class:`StringPartitioner` — element strings (Agrawal [1]);
- :class:`AnnealingPartitioner` — simulated annealing over a
  cut/balance cost function (Patil et al. [17]);
- :class:`SpectralPartitioner` — recursive spectral bisection
  (the classical method multilevel algorithms were measured against
  [8, 12]);
- :class:`CorollaPartitioner` — two-phase corolla clustering
  (Sporrer & Bauer [20]);
- :class:`CppPartitioner` — concurrency-preserving partitioning with
  per-level workload balancing (Kim & Jean [14]);
- :class:`ActivityMultilevelPartitioner` — the paper's own §6 future
  work: multilevel phases over activity-weighted signals.
"""

from repro.partition.extra.strings import StringPartitioner
from repro.partition.extra.annealing import AnnealingPartitioner
from repro.partition.extra.spectral import SpectralPartitioner
from repro.partition.extra.corolla import CorollaPartitioner
from repro.partition.extra.cpp import CppPartitioner
from repro.partition.extra_activity import ActivityMultilevelPartitioner

#: Name -> class for the related-work strategies.
EXTRA_PARTITIONERS = {
    "String": StringPartitioner,
    "Annealing": AnnealingPartitioner,
    "Spectral": SpectralPartitioner,
    "Corolla": CorollaPartitioner,
    "CPP": CppPartitioner,
    "ActivityML": ActivityMultilevelPartitioner,
}

__all__ = [
    "ActivityMultilevelPartitioner",
    "AnnealingPartitioner",
    "CorollaPartitioner",
    "CppPartitioner",
    "EXTRA_PARTITIONERS",
    "SpectralPartitioner",
    "StringPartitioner",
]
