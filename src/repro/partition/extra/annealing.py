"""Simulated-annealing partitioning (Patil, Banerjee & Polychronopoulos [17]).

Minimises a weighted cost ``cut + lambda * imbalance`` by
Metropolis-accepted single-gate moves under geometric cooling. The
initial temperature is calibrated from the observed move-cost spread
(median uphill delta), the textbook recipe. Slow compared to the
constructive heuristics — which is precisely the comparison point the
original authors made.
"""

from __future__ import annotations

import math

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, fill_empty_partitions
from repro.partition.metrics import gain_of_move
from repro.utils.rng import derive_rng


class AnnealingPartitioner(Partitioner):
    """Metropolis single-move annealing over cut + imbalance."""

    name = "Annealing"

    def __init__(
        self,
        seed=None,
        *,
        moves_per_gate: float = 40.0,
        cooling: float = 0.95,
        balance_weight: float = 2.0,
        slack: float = 0.10,
    ) -> None:
        super().__init__(seed)
        self.moves_per_gate = moves_per_gate
        self.cooling = cooling
        self.balance_weight = balance_weight
        self.slack = slack

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "annealing-partitioner", circuit.name, k)
        n = circuit.num_gates
        assignment = [int(x) for x in rng.integers(0, k, size=n)]
        load = [0] * k
        for part in assignment:
            load[part] += 1
        even = n / k
        cap = even * (1.0 + self.slack)

        def move_cost_delta(gate: int, dest: int) -> float:
            """Cost change of moving *gate* to *dest* (negative = better)."""
            src = assignment[gate]
            cut_delta = -gain_of_move(circuit, assignment, gate, dest)
            balance_delta = (
                max(0.0, load[dest] + 1 - cap) - max(0.0, load[src] - cap)
            )
            return cut_delta + self.balance_weight * balance_delta

        # Calibrate T0 so a median uphill move is accepted ~80% of the time.
        probes = []
        for _ in range(min(200, 4 * n)):
            gate = int(rng.integers(0, n))
            dest = int(rng.integers(0, k))
            delta = move_cost_delta(gate, dest)
            if delta > 0:
                probes.append(delta)
        t0 = (sorted(probes)[len(probes) // 2] / 0.22) if probes else 1.0

        temperature = t0
        total_moves = int(self.moves_per_gate * n)
        moves_per_step = max(1, n // 2)
        performed = 0
        while performed < total_moves and temperature > 1e-3:
            for _ in range(moves_per_step):
                gate = int(rng.integers(0, n))
                src = assignment[gate]
                if load[src] <= 1:
                    continue
                dest = int(rng.integers(0, k))
                if dest == src:
                    continue
                delta = move_cost_delta(gate, dest)
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    assignment[gate] = dest
                    load[src] -= 1
                    load[dest] += 1
            performed += moves_per_step
            temperature *= self.cooling

        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
