"""Corolla partitioning (Sporrer & Bauer [20]).

Two phases, as in the original: a *fine-grained* step first groups each
gate with its fanout-free region — the maximal single-sink cones
("petals") that form around reconvergence points, which are the
strongly connected activity regions of combinational logic — then a
*coarse-grained* step packs the petals into partitions, preferring the
partition already holding the most neighbouring petals (affinity)
subject to a balance cap.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import (
    Partitioner,
    balanced_capacity,
    fill_empty_partitions,
)
from repro.utils.rng import derive_rng


def fanout_free_regions(circuit: CircuitGraph) -> list[int]:
    """Map each gate to the root of its fanout-free region (FFR).

    A gate with a single sink belongs to its sink's region; gates with
    multiple (or zero) sinks root their own region. Classic linear-time
    netlist decomposition.
    """
    n = circuit.num_gates
    gates = circuit.gates
    root = list(range(n))
    # Process in reverse topological-ish order by repeated passes: a
    # gate's root is its unique sink's root. Circuit graphs are shallow
    # enough that path compression over a few passes settles it; DFFs
    # always root their own region (their fanout is next-cycle logic).
    order = sorted(range(n), key=lambda g: -len(gates[g].fanout))

    def find(g: int) -> int:
        while root[g] != g:
            root[g] = root[root[g]]
            g = root[g]
        return g

    for g in order:
        sinks = set(gates[g].fanout)
        if len(sinks) == 1 and not gates[g].gate_type.is_sequential:
            (sink,) = sinks
            if find(sink) != g:  # avoid creating a union cycle
                root[g] = find(sink)
    return [find(g) for g in range(n)]


class CorollaPartitioner(Partitioner):
    """FFR clustering followed by affinity-driven packing."""

    name = "Corolla"

    def __init__(self, seed=None, *, slack: float = 0.10) -> None:
        super().__init__(seed)
        self.slack = slack

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "corolla-partitioner", circuit.name, k)
        roots = fanout_free_regions(circuit)
        clusters: dict[int, list[int]] = {}
        for gate, root in enumerate(roots):
            clusters.setdefault(root, []).append(gate)

        # Cluster adjacency (for affinity): edges between clusters.
        neighbor_weight: dict[int, dict[int, int]] = {r: {} for r in clusters}
        for u, v in circuit.edges():
            ru, rv = roots[u], roots[v]
            if ru != rv:
                neighbor_weight[ru][rv] = neighbor_weight[ru].get(rv, 0) + 1
                neighbor_weight[rv][ru] = neighbor_weight[rv].get(ru, 0) + 1

        capacity = balanced_capacity(circuit.num_gates, k, self.slack)
        order = sorted(
            clusters, key=lambda r: (-len(clusters[r]), r)
        )
        rng.shuffle(order[len(order) // 2 :])  # diversify the small tail

        assignment = [-1] * circuit.num_gates
        cluster_part: dict[int, int] = {}
        load = [0] * k
        for root in order:
            members = clusters[root]
            # Affinity: weight of edges into each already-placed partition.
            affinity = [0] * k
            for other, weight in neighbor_weight[root].items():
                part = cluster_part.get(other)
                if part is not None:
                    affinity[part] += weight
            candidates = [
                p for p in range(k) if load[p] + len(members) <= capacity
            ]
            if not candidates:
                candidates = list(range(k))
            dest = max(candidates, key=lambda p: (affinity[p], -load[p]))
            cluster_part[root] = dest
            for gate in members:
                assignment[gate] = dest
            load[dest] += len(members)

        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
