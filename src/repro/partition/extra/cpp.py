"""Concurrency-preserving partitioning — CPP (Kim & Jean [14]).

CPP balances the *instantaneous* workload: gates at the same
topological level tend to be active at the same simulated instant, so
each level's gates are spread over all partitions (concurrency) while
each gate individually prefers the partition that already holds most
of its fanin (communication affinity). A per-level quota keeps any one
partition from hoarding a level.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.circuit.levelize import levelize, levels_to_buckets
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import (
    Partitioner,
    balanced_capacity,
    fill_empty_partitions,
)
from repro.utils.rng import derive_rng


class CppPartitioner(Partitioner):
    """Per-level spreading with fanin affinity."""

    name = "CPP"

    def __init__(self, seed=None, *, slack: float = 0.10) -> None:
        super().__init__(seed)
        self.slack = slack

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "cpp-partitioner", circuit.name, k)
        buckets = levels_to_buckets(levelize(circuit))
        capacity = balanced_capacity(circuit.num_gates, k, self.slack)
        assignment = [-1] * circuit.num_gates
        load = [0] * k

        for bucket in buckets:
            if not bucket:
                continue
            # Per-level quota: even share of this level, rounded up.
            quota = -(-len(bucket) // k)
            level_load = [0] * k
            order = list(bucket)
            rng.shuffle(order)
            for gate in order:
                affinity = [0] * k
                for driver in circuit.fanin(gate):
                    part = assignment[driver]
                    if part >= 0:
                        affinity[part] += 1
                candidates = [
                    p
                    for p in range(k)
                    if level_load[p] < quota and load[p] < capacity
                ]
                if not candidates:
                    candidates = [
                        p for p in range(k) if load[p] < capacity
                    ] or list(range(k))
                dest = max(
                    candidates, key=lambda p: (affinity[p], -load[p], -p)
                )
                assignment[gate] = dest
                load[dest] += 1
                level_load[dest] += 1

        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
