"""Recursive spectral bisection.

The classical eigenvector method the multilevel literature (paper
references [8, 12]) measured itself against: split by the sign/median
of the Fiedler vector (second-smallest Laplacian eigenvector), recurse
until ``k`` parts exist. Eigenvectors come from
``scipy.sparse.linalg.eigsh`` with a dense fallback for tiny blocks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, fill_empty_partitions
from repro.utils.rng import derive_rng


def _fiedler_order(adj: sp.csr_matrix, rng) -> np.ndarray:
    """Vertex order by Fiedler-vector value (ties randomised)."""
    n = adj.shape[0]
    laplacian = sp.csgraph.laplacian(adj, normed=False).astype(np.float64)
    if n <= 32:
        eigvals, eigvecs = np.linalg.eigh(laplacian.toarray())
        fiedler = eigvecs[:, 1] if n > 1 else np.zeros(1)
    else:
        # Explicit deterministic start vector: eigsh otherwise seeds its
        # Lanczos iteration from global numpy randomness, making results
        # depend on unrelated library calls.
        v0 = rng.random(n) + 0.1
        # Shift-invert converges fastest near zero; fall back to the
        # plain smallest-eigenvalue solve if factorisation fails.
        try:
            _, eigvecs = spla.eigsh(
                laplacian, k=2, sigma=-1e-3, which="LM", v0=v0
            )
        except Exception:
            _, eigvecs = spla.eigsh(
                laplacian, k=2, which="SM", maxiter=5000, tol=1e-6, v0=v0
            )
        fiedler = eigvecs[:, 1]
    jitter = rng.random(n) * 1e-12  # deterministic tie-break
    return np.argsort(fiedler + jitter, kind="stable")


class SpectralPartitioner(Partitioner):
    """Recursive spectral bisection into k (not necessarily 2^m) parts."""

    name = "Spectral"

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "spectral-partitioner", circuit.name, k)
        n = circuit.num_gates
        rows, cols = [], []
        for u, v in circuit.edges():
            rows.extend((u, v))
            cols.extend((v, u))
        adj = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )

        assignment = [0] * n
        next_label = [0]

        def bisect(vertices: np.ndarray, parts: int) -> None:
            if parts == 1 or len(vertices) <= 1:
                label = next_label[0]
                next_label[0] += 1
                for v in vertices:
                    assignment[int(v)] = label
                return
            sub = adj[vertices][:, vertices]
            order = _fiedler_order(sub.tocsr(), rng)
            # Split proportionally so odd k still balances.
            left_parts = parts // 2
            split = round(len(vertices) * left_parts / parts)
            split = min(max(split, 1), len(vertices) - 1)
            bisect(vertices[order[:split]], left_parts)
            bisect(vertices[order[split:]], parts - left_parts)

        bisect(np.arange(n), k)
        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
