"""Element-string partitioning (Agrawal [1]).

The circuit is decomposed into *strings* — maximal chains of gates
linked driver-to-sole-sink — and whole strings are dealt over the
partitions. Chains serialize anyway (each gate waits for its
predecessor), so placing a chain on one processor costs no concurrency,
while spreading *different* chains across processors keeps them all
busy; and a chain kept together never pays communication along its own
length.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, fill_empty_partitions
from repro.utils.rng import derive_rng


def extract_strings(circuit: CircuitGraph) -> list[list[int]]:
    """Decompose the gate set into disjoint chains (strings).

    A string extends from gate ``u`` to ``v`` when ``v`` is u's only
    sink and ``u`` is v's only driver — the classic chain condition.
    Every gate belongs to exactly one string (singletons included);
    strings are returned in discovery order, heads first.
    """
    gates = circuit.gates

    def chain_next(u: int) -> int | None:
        sinks = set(gates[u].fanout)
        if len(sinks) != 1:
            return None
        (v,) = sinks
        if len(set(gates[v].fanin)) != 1:
            return None
        return v

    # Heads: gates that are not the chain-continuation of anything.
    continued_to: set[int] = set()
    for u in range(circuit.num_gates):
        nxt = chain_next(u)
        if nxt is not None:
            continued_to.add(nxt)

    strings: list[list[int]] = []
    seen = [False] * circuit.num_gates
    for head in range(circuit.num_gates):
        if head in continued_to or seen[head]:
            continue
        chain = [head]
        seen[head] = True
        current = head
        while True:
            nxt = chain_next(current)
            if nxt is None or seen[nxt]:
                break
            chain.append(nxt)
            seen[nxt] = True
            current = nxt
        strings.append(chain)
    # Cycle safety: a pure chain loop (all gates continued-to) has no
    # head; sweep leftovers as their own strings.
    for u in range(circuit.num_gates):
        if not seen[u]:
            seen[u] = True
            strings.append([u])
    return strings


class StringPartitioner(Partitioner):
    """Deal whole gate-chains over the partitions, longest first."""

    name = "String"

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "string-partitioner", circuit.name, k)
        strings = extract_strings(circuit)
        # Longest strings placed first into the lightest partition, with
        # random tie-breaking so equal-length strings spread out.
        order = rng.permutation(len(strings))
        strings = [strings[i] for i in order]
        strings.sort(key=len, reverse=True)
        assignment = [0] * circuit.num_gates
        load = [0] * k
        for chain in strings:
            dest = min(range(k), key=load.__getitem__)
            for gate in chain:
                assignment[gate] = dest
            load[dest] += len(chain)
        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
