"""Activity-weighted multilevel partitioning — the paper's §6 direction.

"We are currently investigating the use of activity levels of
communication to make better decisions while coarsening." This module
implements exactly that: a short sequential profiling run measures how
often each signal actually toggles (:mod:`repro.sim.activity`), and the
multilevel phases then operate on the activity-weighted circuit graph —
coarsening merges along the *busiest* signal of a globule, and
refinement minimises the *expected message count* rather than the raw
edge count. A rarely-toggling signal is cheap to cut even if it is
structurally central; a hot signal is kept internal at almost any cost.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.multilevel.multilevel import MultilevelPartitioner
from repro.sim.activity import ActivityProfile, profile_activity
from repro.utils.rng import RngLike


class ActivityMultilevelPartitioner(MultilevelPartitioner):
    """Multilevel partitioning over activity-weighted signals.

    Parameters mirror :class:`MultilevelPartitioner`; additionally:

    profile_cycles:
        Length of the profiling simulation (default 16 clock cycles —
        enough to separate hot control/clock-adjacent nets from cold
        datapath corners).
    profile:
        A precomputed :class:`~repro.sim.activity.ActivityProfile` to
        use instead of running the profiler (e.g. measured on the real
        workload).
    balance_work:
        When True (default) partition load is balanced in measured
        events per gate rather than gate count, so a hot corner of the
        netlist does not overload its node.
    """

    name = "ActivityML"

    def __init__(
        self,
        seed: RngLike = None,
        *,
        profile_cycles: int = 16,
        profile: ActivityProfile | None = None,
        balance_work: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(seed, **kwargs)
        self.profile_cycles = profile_cycles
        self.profile = profile
        self.balance_work = balance_work
        #: The profile actually used by the last partition() call.
        self.last_profile: ActivityProfile | None = None

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        profile = self.profile
        if profile is None or profile.circuit_name != circuit.name:
            profile = profile_activity(
                circuit,
                num_cycles=self.profile_cycles,
                seed=self.seed if isinstance(self.seed, int) else None,
            )
        self.last_profile = profile
        self.edge_weights = [
            profile.edge_weight(gate) for gate in range(circuit.num_gates)
        ]
        if self.balance_work:
            # Work per gate ~ events it processes ~ changes of its
            # drivers (each triggers one evaluation) + its own changes.
            work = []
            for gate in circuit.gates:
                evaluations = sum(
                    profile.changes[d] for d in gate.fanin
                )
                work.append(1 + evaluations + profile.changes[gate.index])
            self.vertex_weights = work
        try:
            return super()._partition(circuit, k)
        finally:
            self.edge_weights = None
            self.vertex_weights = None
