"""Static quality metrics for partition assignments.

The paper evaluates partitions *dynamically* (execution time, messages,
rollbacks of the Time Warp run); these static metrics explain those
outcomes and drive the quality ablation (DESIGN.md A3):

- **edge cut** — signals crossing partitions; each cut edge is a
  potential inter-processor message per transition (what the multilevel
  refinement phase minimises).
- **load imbalance** — max partition size over the even share; an
  imbalanced partition idles processors.
- **concurrency** — how evenly each topological level's gates spread
  over partitions; low concurrency serialises the simulation and breeds
  rollbacks (what the coarsening phase protects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.graph import CircuitGraph
from repro.circuit.levelize import levelize, levels_to_buckets
from repro.partition.assignment import PartitionAssignment


def edge_cut(assignment: PartitionAssignment) -> int:
    """Number of signal edges whose endpoints lie in different partitions."""
    part = assignment.assignment
    return sum(1 for u, v in assignment.circuit.edges() if part[u] != part[v])


def cut_fraction(assignment: PartitionAssignment) -> float:
    """Edge cut as a fraction of all edges."""
    total = assignment.circuit.num_edges
    return edge_cut(assignment) / total if total else 0.0


def load_imbalance(assignment: PartitionAssignment) -> float:
    """``max(sizes) / (n/k)``: 1.0 is perfect balance."""
    sizes = assignment.sizes()
    even = assignment.circuit.num_gates / assignment.k
    return max(sizes) / even if even else 1.0


def concurrency_score(assignment: PartitionAssignment) -> float:
    """Mean per-level partition coverage, size-weighted, in (0, 1].

    For each topological level, count the fraction of partitions that
    hold at least one gate of that level (capped by the level's size);
    weight by level size. 1.0 means every level is spread over all the
    partitions it could be — maximal concurrent progress; a score near
    ``1/k`` means levels are confined to single partitions and the
    simulation advances one processor at a time.
    """
    level = levelize(assignment.circuit)
    buckets = levels_to_buckets(level)
    part = assignment.assignment
    k = assignment.k
    total_weight = 0
    acc = 0.0
    for bucket in buckets:
        if not bucket:
            continue
        present = len({part[g] for g in bucket})
        possible = min(k, len(bucket))
        acc += len(bucket) * (present / possible)
        total_weight += len(bucket)
    return acc / total_weight if total_weight else 1.0


def external_messages_upper_bound(assignment: PartitionAssignment) -> int:
    """Distinct (driver, destination-partition) pairs over cut edges.

    A driver gate whose fanout touches a remote partition sends one
    message per transition to that partition (signals with multiple
    remote sinks in the same partition still cost one message there in
    the clustered kernel); this counts those channels.
    """
    part = assignment.assignment
    channels: set[tuple[int, int]] = set()
    for u, v in assignment.circuit.edges():
        if part[u] != part[v]:
            channels.add((u, part[v]))
    return len(channels)


@dataclass(frozen=True)
class PartitionQuality:
    """All static metrics for one assignment (ablation A3 row)."""

    algorithm: str
    k: int
    edge_cut: int
    cut_fraction: float
    load_imbalance: float
    concurrency: float
    message_channels: int
    sizes: tuple[int, ...]


def partition_quality(assignment: PartitionAssignment) -> PartitionQuality:
    """Compute :class:`PartitionQuality` for *assignment*."""
    return PartitionQuality(
        algorithm=assignment.algorithm,
        k=assignment.k,
        edge_cut=edge_cut(assignment),
        cut_fraction=cut_fraction(assignment),
        load_imbalance=load_imbalance(assignment),
        concurrency=concurrency_score(assignment),
        message_channels=external_messages_upper_bound(assignment),
        sizes=tuple(assignment.sizes()),
    )


def gain_of_move(
    circuit: CircuitGraph, part: list[int], gate: int, dest: int
) -> int:
    """Edge-cut reduction if *gate* moves to partition *dest*.

    Positive gain means the cut shrinks. Counts each incident edge once
    (parallel edges count with multiplicity).
    """
    src = part[gate]
    if dest == src:
        return 0
    gain = 0
    g = circuit.gates[gate]
    for other in g.fanin:
        p = part[other]
        if p == src:
            gain -= 1
        elif p == dest:
            gain += 1
    for other in g.fanout:
        p = part[other]
        if p == src:
            gain -= 1
        elif p == dest:
            gain += 1
    return gain
