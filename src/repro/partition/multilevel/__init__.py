"""The multilevel partitioning algorithm (Section 3 of the paper).

Three decoupled phases:

1. :mod:`~repro.partition.multilevel.coarsening` — fanout coarsening
   from the primary inputs builds a hierarchy ``G0, G1, ... Gm`` of
   successively smaller graphs (concurrency phase);
2. :mod:`~repro.partition.multilevel.initial` — a load-balanced k-way
   partition of the coarsest graph, input globules spread evenly
   (load-balance phase);
3. greedy k-way refinement
   (:mod:`~repro.partition.multilevel.refine_greedy`) applied at every
   level while projecting the partition back to ``G0`` (communication
   phase). KL- and FM-style refiners are provided for the ablation.
"""

from repro.partition.multilevel.coarse_graph import CoarseGraph
from repro.partition.multilevel.coarsening import CoarseningResult, coarsen, coarsen_once
from repro.partition.multilevel.initial import initial_partition
from repro.partition.multilevel.refine_greedy import greedy_refine
from repro.partition.multilevel.refine_kl import kl_refine
from repro.partition.multilevel.refine_fm import fm_refine
from repro.partition.multilevel.multilevel import MultilevelPartitioner

__all__ = [
    "CoarseGraph",
    "CoarseningResult",
    "MultilevelPartitioner",
    "coarsen",
    "coarsen_once",
    "fm_refine",
    "greedy_refine",
    "initial_partition",
    "kl_refine",
]
