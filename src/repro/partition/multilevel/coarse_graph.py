"""Weighted coarse graphs — one level of the multilevel hierarchy.

Each vertex (*globule*, the paper's term) stands for a connected set of
vertices of the next finer graph. Vertex weight counts the original
gates subsumed; edge weight counts the original signals running between
two globules (the union-of-edges relation of Section 3).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import PartitionError


class CoarseGraph:
    """A directed weighted multigraph over globules.

    ``fanout[u]`` maps sink globule -> total signal weight (directed,
    used by fanout coarsening); ``neighbors[u]`` is the undirected view
    (used by gain computation in refinement). ``members[u]`` lists the
    *finer-level* vertex ids subsumed by globule ``u``; ``seeds`` marks
    globules that grew (≥2 members) during the coarsening step that
    produced this graph — the next step's depth-first traversal starts
    from them, per the paper.
    """

    def __init__(self, num_vertices: int) -> None:
        self.n = num_vertices
        self.weight = [1] * num_vertices
        self.contains_input = [False] * num_vertices
        self.fanout: list[dict[int, int]] = [dict() for _ in range(num_vertices)]
        self.neighbors: list[dict[int, int]] = [dict() for _ in range(num_vertices)]
        self.members: list[list[int]] = [[i] for i in range(num_vertices)]
        self.seeds: list[int] = []
        #: Total weight of all vertices (== number of original gates).
        self.total_weight = num_vertices

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(
        cls,
        circuit: CircuitGraph,
        edge_weights: Sequence[int] | None = None,
        vertex_weights: Sequence[int] | None = None,
    ) -> "CoarseGraph":
        """Level-0 graph: one globule per gate.

        *edge_weights*, when given, holds one weight per DRIVER gate —
        the weight every edge of that gate's output signal carries
        (e.g. its measured activity). Heavier signals are then kept
        internal by coarsening and refinement alike.

        *vertex_weights* replaces the unit gate weight with measured
        per-gate work (e.g. event counts), so load balancing equalises
        actual workload instead of gate count.
        """
        g = cls(circuit.num_gates)
        for gate in circuit.gates:
            if gate.gate_type is GateType.INPUT:
                g.contains_input[gate.index] = True
        if edge_weights is not None and len(edge_weights) != circuit.num_gates:
            raise PartitionError(
                "edge_weights must hold one weight per gate (driver)"
            )
        if vertex_weights is not None:
            if len(vertex_weights) != circuit.num_gates:
                raise PartitionError(
                    "vertex_weights must hold one weight per gate"
                )
            g.weight = [max(1, int(w)) for w in vertex_weights]
            g.total_weight = sum(g.weight)
        for u, v in circuit.edges():
            weight = 1 if edge_weights is None else max(1, int(edge_weights[u]))
            g.add_edge(u, v, weight)
        g.seeds = list(circuit.primary_inputs)
        return g

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Accumulate a directed edge ``u -> v`` of *weight* signals."""
        if u == v:
            return  # internal signals of a globule carry no cut cost
        self.fanout[u][v] = self.fanout[u].get(v, 0) + weight
        self.neighbors[u][v] = self.neighbors[u].get(v, 0) + weight
        self.neighbors[v][u] = self.neighbors[v].get(u, 0) + weight

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of distinct directed coarse edges."""
        return sum(len(adj) for adj in self.fanout)

    @property
    def input_globules(self) -> list[int]:
        """Globules containing at least one primary input."""
        return [u for u in range(self.n) if self.contains_input[u]]

    def edge_weight_total(self) -> int:
        """Sum of directed edge weights (== finer-level signal count)."""
        return sum(sum(adj.values()) for adj in self.fanout)

    def contract(self, groups: Sequence[Sequence[int]]) -> "CoarseGraph":
        """Build the next coarser graph from a partition of this one.

        *groups* must cover every vertex exactly once; each group becomes
        one globule of the new graph. Groups with ≥2 members are recorded
        as the new graph's ``seeds``.
        """
        coarse_of = [-1] * self.n
        for gi, group in enumerate(groups):
            for v in group:
                if coarse_of[v] != -1:
                    raise PartitionError(f"vertex {v} in two coarsening groups")
                coarse_of[v] = gi
        if any(c == -1 for c in coarse_of):
            missing = coarse_of.index(-1)
            raise PartitionError(f"vertex {missing} not covered by coarsening")

        out = CoarseGraph(len(groups))
        out.total_weight = self.total_weight
        out.seeds = []
        for gi, group in enumerate(groups):
            out.weight[gi] = sum(self.weight[v] for v in group)
            out.contains_input[gi] = any(self.contains_input[v] for v in group)
            members: list[int] = []
            for v in group:
                members.extend([v])
            out.members[gi] = members
            if len(group) >= 2:
                out.seeds.append(gi)
        for u in range(self.n):
            cu = coarse_of[u]
            for v, w in self.fanout[u].items():
                out.add_edge(cu, coarse_of[v], w)
        return out

    def project(self, coarse_partition: Sequence[int]) -> list[int]:
        """Map a partition of THIS graph down to the next finer graph.

        ``members[u]`` holds finer-level ids, so ``result[fine] =
        coarse_partition[u]`` for every ``fine in members[u]`` — the
        paper's invariant ``∀ v ∈ V_ij : P[v] = P[V_ij]``.
        """
        size = sum(len(m) for m in self.members)
        fine = [0] * size
        for u in range(self.n):
            p = coarse_partition[u]
            for v in self.members[u]:
                fine[v] = p
        return fine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoarseGraph(n={self.n}, edges={self.num_edges})"
