"""Phase 1: fanout coarsening (the concurrency phase).

Exactly the scheme of Section 3:

- traversal is depth-first, starting from the primary-input globules at
  the first level and from the globules *grown in the previous step*
  (``CoarseGraph.seeds``) at later levels — growing linear chains keeps
  concurrency high;
- a chosen vertex is combined with all not-yet-coarsened vertices on
  its fanout signal, keeping the vertices of a signal together (fewer
  split signals → fewer remote messages → fewer rollbacks);
- each vertex is coarsened at most once per level;
- two globules that both contain a primary input never merge (inputs
  stay spread out, preserving concurrent event sources);
- coarsening halts when the globule count drops below a threshold or
  when only input globules remain (no legal combination left).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.partition.multilevel.coarse_graph import CoarseGraph


@dataclass
class CoarseningResult:
    """The hierarchy ``G0 .. Gm`` plus per-level bookkeeping."""

    levels: list[CoarseGraph] = field(default_factory=list)

    @property
    def coarsest(self) -> CoarseGraph:
        return self.levels[-1]

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def coarsen_once(
    graph: CoarseGraph,
    *,
    merge_all: bool = False,
    max_group_weight: float | None = None,
) -> tuple[list[list[int]], int]:
    """One coarsening step: group vertices of *graph* by fanout merging.

    With ``merge_all`` (the first level, where every vertex is a single
    gate driving exactly one signal) a chosen vertex combines with *all*
    free vertices on its fanout — "maintaining vertices on a signal
    together". At coarser levels a globule drives several coarse signals
    and the paper's rule "only one of them is considered for coarsening"
    applies: the globule merges along its single heaviest outgoing edge.

    Returns ``(groups, merged)`` where *groups* partitions the vertex
    set (singletons included) and *merged* counts groups with ≥2
    members. ``contract`` is left to the caller so tests can inspect the
    grouping itself.
    """
    n = graph.n
    matched = [False] * n
    groups: list[list[int]] = []
    cap = max_group_weight if max_group_weight is not None else float("inf")

    def grow_group(v: int) -> list[int]:
        """Merge *v* with free vertices on its chosen fanout signal."""
        matched[v] = True
        group = [v]
        group_weight = graph.weight[v]
        has_input = graph.contains_input[v]
        if merge_all:
            candidates = list(graph.fanout[v])
        else:
            legal = [
                (weight, sink)
                for sink, weight in graph.fanout[v].items()
                if not matched[sink]
                and not (has_input and graph.contains_input[sink])
                and group_weight + graph.weight[sink] <= cap
            ]
            candidates = [max(legal)[1]] if legal else []
        for sink in candidates:
            if matched[sink]:
                continue
            if has_input and graph.contains_input[sink]:
                continue  # input globules may not combine together
            if group_weight + graph.weight[sink] > cap:
                continue  # weight cap: oversized globules wreck balance
            matched[sink] = True
            group.append(sink)
            group_weight += graph.weight[sink]
            if graph.contains_input[sink]:
                has_input = True
        return group

    # Depth-first traversal seeded per the paper. Seeds first; vertices
    # not reachable from any seed are swept afterwards in index order so
    # the grouping always covers V.
    roots = list(graph.seeds) if graph.seeds else list(range(n))
    visited = [False] * n
    for root in roots:
        if visited[root]:
            continue
        stack = [root]
        while stack:
            u = stack.pop()
            if visited[u]:
                continue
            visited[u] = True
            if not matched[u]:
                groups.append(grow_group(u))
            stack.extend(
                sink for sink in reversed(list(graph.fanout[u])) if not visited[sink]
            )
    for u in range(n):
        if not matched[u]:
            groups.append(grow_group(u))

    merged = sum(1 for g in groups if len(g) >= 2)
    return groups, merged


def hem_coarsen_once(
    graph: CoarseGraph,
    rng,
    *,
    max_group_weight: float | None = None,
) -> tuple[list[list[int]], int]:
    """Heavy-edge matching — the METIS-style alternative scheme.

    Visits vertices in random order and pairs each unmatched vertex
    with the unmatched neighbour sharing the heaviest (undirected)
    edge. Compared to the paper's fanout scheme it ignores signal
    direction and chains, maximising absorbed edge weight per level —
    ablation A10 measures what that trades away. The input-globule and
    weight-cap rules still apply.
    """
    n = graph.n
    cap = max_group_weight if max_group_weight is not None else float("inf")
    matched = [False] * n
    groups: list[list[int]] = []
    order = rng.permutation(n)
    for v in map(int, order):
        if matched[v]:
            continue
        matched[v] = True
        best = None
        best_weight = 0
        for neighbor, weight in graph.neighbors[v].items():
            if matched[neighbor]:
                continue
            if graph.contains_input[v] and graph.contains_input[neighbor]:
                continue
            if graph.weight[v] + graph.weight[neighbor] > cap:
                continue
            if weight > best_weight:
                best = neighbor
                best_weight = weight
        if best is None:
            groups.append([v])
        else:
            matched[best] = True
            groups.append([v, best])
    merged = sum(1 for g in groups if len(g) >= 2)
    return groups, merged


def coarsen(
    graph: CoarseGraph,
    *,
    threshold: int,
    min_vertices: int = 1,
    max_levels: int = 64,
    max_globule_weight: float | None = None,
    scheme: str = "fanout",
    rng=None,
) -> CoarseningResult:
    """Build the full hierarchy ``G0 .. Gm`` starting from *graph*.

    Halts when the globule count falls below *threshold*, when a step
    stops making progress (every globule is an input globule, or fanout
    merging found nothing to combine), or at *max_levels* as a safety
    net. A level with fewer than *min_vertices* globules is discarded
    (callers need at least ``k`` globules to build a k-way partition).

    ``max_globule_weight`` caps the original-gate count a single globule
    may subsume; the default allows ~1.5x the even share of the target
    coarsest graph, which keeps the initial-partitioning phase able to
    balance. The first (gate-level) step is exempt — a whole fanout
    signal always stays together, per the paper.
    """
    if scheme not in ("fanout", "hem"):
        raise PartitionError(f"unknown coarsening scheme {scheme!r}")
    if scheme == "hem" and rng is None:
        raise PartitionError("HEM coarsening needs an rng")
    if max_globule_weight is None:
        max_globule_weight = max(2.0, 1.5 * graph.total_weight / max(threshold, 1))
    result = CoarseningResult(levels=[graph])
    current = graph
    first = True
    while current.n > threshold and result.num_levels <= max_levels:
        if all(current.contains_input[v] for v in range(current.n)):
            break  # only input globules remain: no legal combination
        if scheme == "hem":
            groups, merged = hem_coarsen_once(
                current, rng, max_group_weight=max_globule_weight
            )
        else:
            groups, merged = coarsen_once(
                current,
                merge_all=first,
                max_group_weight=None if first else max_globule_weight,
            )
        first = False
        if merged == 0:
            break
        if len(groups) < min_vertices:
            break
        current = current.contract(groups)
        result.levels.append(current)
    return result
