"""Phase 2: initial partitioning of the coarsest graph.

Per Section 3: the input globules of the coarsest level are split
equally across the ``k`` partitions (preserving concurrency — every
partition owns event sources), then the remaining globules are placed
randomly while keeping the load balanced. Load is measured in globule
*weight* (original gate count), not globule count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.partition.multilevel.coarse_graph import CoarseGraph


def initial_partition(
    graph: CoarseGraph, k: int, rng: np.random.Generator
) -> list[int]:
    """Return a k-way partition array over the globules of *graph*."""
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if k > graph.n:
        raise PartitionError(
            f"coarsest graph has {graph.n} globules, cannot make {k} parts"
        )
    partition = [-1] * graph.n
    load = [0] * k

    # Input globules round-robin over a shuffled order: equal spread.
    inputs = graph.input_globules
    order = list(inputs)
    rng.shuffle(order)
    for i, globule in enumerate(order):
        dest = i % k
        partition[globule] = dest
        load[dest] += graph.weight[globule]

    # Remaining globules: random visit order, heaviest-first within the
    # random tie-break, each to the currently lightest partition — the
    # "random manner, maintaining load balance" of the paper.
    rest = [v for v in range(graph.n) if partition[v] == -1]
    rng.shuffle(rest)
    rest.sort(key=lambda v: -graph.weight[v])
    for globule in rest:
        dest = min(range(k), key=load.__getitem__)
        partition[globule] = dest
        load[dest] += graph.weight[globule]

    # Guarantee no empty partition (possible when k > #inputs and a few
    # huge globules soak all the load): move the lightest globule out of
    # the most loaded multi-globule partition.
    counts = [0] * k
    for p in partition:
        counts[p] += 1
    for dest in range(k):
        if counts[dest]:
            continue
        candidates = [v for v in range(graph.n) if counts[partition[v]] > 1]
        if not candidates:
            raise PartitionError("cannot populate every partition")
        mover = min(candidates, key=lambda v: graph.weight[v])
        counts[partition[mover]] -= 1
        partition[mover] = dest
        counts[dest] += 1
    return partition
