"""Phase orchestration: the multilevel partitioner itself.

Coarsen → initially partition the coarsest graph → refine at every
level while projecting back up to the original graph (Figures 1 and 2
of the paper). The refiner is pluggable (``greedy`` — the paper's
choice, ``kl``, ``fm`` or ``none``) for ablation A2.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.circuit.graph import CircuitGraph
from repro.errors import PartitionError
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner, fill_empty_partitions
from repro.partition.multilevel.coarse_graph import CoarseGraph
from repro.partition.multilevel.coarsening import coarsen
from repro.partition.multilevel.initial import initial_partition
from repro.partition.multilevel.refine_greedy import cut_weight, greedy_refine
from repro.partition.multilevel.refine_kl import kl_refine
from repro.partition.multilevel.refine_fm import fm_refine
from repro.utils.rng import derive_rng

RefinerFn = Callable[..., int]

_REFINERS: dict[str, RefinerFn | None] = {
    "greedy": greedy_refine,
    "kl": kl_refine,
    "fm": fm_refine,
    "none": None,
}


class MultilevelPartitioner(Partitioner):
    """The paper's three-phase multilevel partitioning algorithm.

    Parameters
    ----------
    seed:
        Root seed for the initial-partitioning and refinement RNG.
    coarsen_threshold:
        Stop coarsening once the globule count falls below this; the
        default ``max(32, 8*k)`` leaves the initial phase enough globules
        to balance while keeping the coarsest graph trivial to split.
    coarsening:
        ``"fanout"`` (the paper's scheme) or ``"hem"`` (heavy-edge
        matching, the METIS-style alternative §6 alludes to).
    refiner:
        ``"greedy"`` (paper), ``"kl"``, ``"fm"`` or ``"none"``.
    slack:
        Allowed load imbalance for refinement moves, as a fraction over
        the even share per partition. The 5% default trades a little
        cut for balance — on an N-node machine the slowest node IS the
        execution time, so imbalance converts to time one-for-one.
    num_initial:
        Number of random initial partitions tried at the coarsest level
        (the best refined cut wins) — multi-start costs almost nothing
        there and consistently buys cut quality.
    edge_weights:
        Optional per-driver signal weights; see
        :class:`repro.partition.extra_activity.ActivityMultilevelPartitioner`
        for the activity-profiled variant (the paper's §6 direction).
    """

    name = "Multilevel"

    def __init__(
        self,
        seed=None,
        *,
        coarsen_threshold: int | None = None,
        coarsening: str = "fanout",
        refiner: str = "greedy",
        slack: float = 0.05,
        max_refine_iterations: int = 8,
        num_initial: int = 4,
        edge_weights: list[int] | None = None,
        vertex_weights: list[int] | None = None,
    ) -> None:
        super().__init__(seed)
        if refiner not in _REFINERS:
            raise PartitionError(
                f"unknown refiner {refiner!r}; choose from {sorted(_REFINERS)}"
            )
        self.coarsen_threshold = coarsen_threshold
        self.coarsening = coarsening
        self.refiner = refiner
        self.slack = slack
        self.max_refine_iterations = max_refine_iterations
        self.num_initial = num_initial
        #: Optional per-driver signal weights (activity counts): phases
        #: then minimise *weighted* cut = expected message traffic.
        self.edge_weights = edge_weights
        #: Optional per-gate work weights: balance measured load instead
        #: of gate count.
        self.vertex_weights = vertex_weights
        #: Diagnostics from the last run: globule count per level.
        self.last_level_sizes: list[int] = []

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "multilevel", circuit.name, k)
        threshold = self.coarsen_threshold or max(32, 8 * k)
        threshold = max(threshold, k)

        level0 = CoarseGraph.from_circuit(
            circuit, self.edge_weights, self.vertex_weights
        )
        hierarchy = coarsen(
            level0,
            threshold=threshold,
            min_vertices=k,
            scheme=self.coarsening,
            rng=rng,
        )
        self.last_level_sizes = [g.n for g in hierarchy.levels]

        coarsest = hierarchy.coarsest
        max_weight = (level0.total_weight / k) * (1.0 + self.slack)
        max_weight = max(max_weight, max(coarsest.weight))

        # Multi-start: several random initial partitions are refined at
        # the coarsest level (where refinement is nearly free) and the
        # best cut proceeds down the hierarchy.
        refine = _REFINERS[self.refiner]
        best_partition: list[int] | None = None
        best_cut = -1
        for _ in range(max(1, self.num_initial)):
            candidate = initial_partition(coarsest, k, rng)
            if refine is not None:
                refine(coarsest, candidate, k, rng, max_weight=max_weight)
            cut = cut_weight(coarsest, candidate)
            if best_partition is None or cut < best_cut:
                best_partition = candidate
                best_cut = cut
        partition = best_partition

        # Refine the coarsest level, then project down one level at a
        # time, refining after each projection (Figure 2).
        for level in range(hierarchy.num_levels - 1, -1, -1):
            graph = hierarchy.levels[level]
            if refine is not None:
                refine(
                    graph,
                    partition,
                    k,
                    rng,
                    max_weight=max_weight,
                    **(
                        {"max_iterations": self.max_refine_iterations}
                        if self.refiner == "greedy"
                        else {}
                    ),
                )
            if level > 0:
                partition = graph.project(partition)
        if len(partition) != circuit.num_gates:
            raise PartitionError(
                "projection lost vertices: "
                f"{len(partition)} != {circuit.num_gates}"
            )
        # Refinement respects non-emptiness, but initial partitions with
        # k near the globule count plus weight-capped moves can still
        # strand an empty block on pathological graphs; repair cheaply.
        fill_empty_partitions(partition, k)
        return PartitionAssignment(circuit, k, partition)
