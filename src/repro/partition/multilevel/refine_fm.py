"""Ablation refiner: Fiduccia–Mattheyses-style k-way passes [6].

Unlike the greedy refiner, an FM pass applies moves *tentatively* —
including negative-gain moves — and afterwards rolls back to the prefix
of the move sequence with the best cumulative gain. This hill-climbing
lets FM escape local minima the greedy refiner is stuck in, at the cost
of more work per pass; the paper (citing [12]) reports the greedy
scheme reaches comparable cuts faster, which ablation A2 checks.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.multilevel.coarse_graph import CoarseGraph
from repro.partition.multilevel.refine_greedy import move_gains


def fm_refine(
    graph: CoarseGraph,
    partition: list[int],
    k: int,
    rng: np.random.Generator,
    *,
    max_weight: float,
    max_passes: int = 4,
) -> int:
    """Refine *partition* in place; return the number of retained moves."""
    retained_total = 0
    for _ in range(max_passes):
        retained = _one_pass(graph, partition, k, max_weight)
        retained_total += retained
        if retained == 0:
            break
    return retained_total


def _one_pass(
    graph: CoarseGraph, partition: list[int], k: int, max_weight: float
) -> int:
    load = [0] * k
    count = [0] * k
    for v in range(graph.n):
        load[partition[v]] += graph.weight[v]
        count[partition[v]] += 1

    # Max-heap of candidate moves with lazy invalidation: entries carry
    # the gain they were computed with and are revalidated on pop.
    heap: list[tuple[int, int, int, int]] = []  # (-gain, tiebreak, v, dest)
    tiebreak = 0

    def push_moves(v: int) -> None:
        nonlocal tiebreak
        for dest, gain in move_gains(graph, partition, v).items():
            heapq.heappush(heap, (-gain, tiebreak, v, dest))
            tiebreak += 1

    for v in range(graph.n):
        push_moves(v)

    locked = bytearray(graph.n)
    history: list[tuple[int, int, int]] = []  # (v, src, dest)
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0

    while heap:
        neg_gain, _, v, dest = heapq.heappop(heap)
        if locked[v]:
            continue
        src = partition[v]
        current = move_gains(graph, partition, v).get(dest)
        if current is None or -neg_gain != current:
            if current is not None:
                heapq.heappush(heap, (-current, tiebreak, v, dest))
            continue  # stale entry: reinsert fresh value if still legal
        if load[dest] + graph.weight[v] > max_weight or count[src] <= 1:
            continue
        partition[v] = dest
        load[src] -= graph.weight[v]
        load[dest] += graph.weight[v]
        count[src] -= 1
        count[dest] += 1
        locked[v] = 1
        history.append((v, src, dest))
        cumulative += current
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(history)
        for neighbor in graph.neighbors[v]:
            if not locked[neighbor]:
                push_moves(neighbor)

    # Keep the best prefix of the tentative move sequence; since the
    # locking discipline moves each vertex at most once per pass, undoing
    # a move is a simple re-assignment.
    if best_cumulative > 0:
        for v, src, _ in history[best_prefix:]:
            partition[v] = src
        return best_prefix
    for v, src, _ in history:
        partition[v] = src
    return 0
