"""Phase 3 refiner: greedy k-way refinement (Karypis & Kumar [12]).

Per iteration, vertices are visited in random order; each unlocked
vertex computes the cut-set gain of moving to every adjacent partition,
takes the maximum-gain move if it is strictly positive and keeps the
load balanced, and is then locked until the iteration ends. Iterations
repeat until a full pass makes no move (the paper observes convergence
in a few iterations).
"""

from __future__ import annotations

import numpy as np

from repro.partition.multilevel.coarse_graph import CoarseGraph


def move_gains(
    graph: CoarseGraph, partition: list[int], vertex: int
) -> dict[int, int]:
    """Cut-weight reduction for moving *vertex* to each adjacent partition.

    Only partitions that contain a neighbour can yield positive gain, so
    only those are returned. Gain = (edge weight to the destination) -
    (edge weight kept in the current partition).
    """
    src = partition[vertex]
    internal = 0
    external: dict[int, int] = {}
    for neighbor, weight in graph.neighbors[vertex].items():
        p = partition[neighbor]
        if p == src:
            internal += weight
        else:
            external[p] = external.get(p, 0) + weight
    return {dest: w - internal for dest, w in external.items()}


def greedy_refine(
    graph: CoarseGraph,
    partition: list[int],
    k: int,
    rng: np.random.Generator,
    *,
    max_weight: float,
    max_iterations: int = 8,
) -> int:
    """Refine *partition* in place; return the total number of moves.

    ``max_weight`` is the load-balance capacity per partition, in
    original-gate units (globule weight).
    """
    load = [0] * k
    count = [0] * k
    for v in range(graph.n):
        load[partition[v]] += graph.weight[v]
        count[partition[v]] += 1

    total_moves = 0
    order = np.arange(graph.n)
    for _ in range(max_iterations):
        locked = bytearray(graph.n)
        rng.shuffle(order)
        moves_this_iter = 0
        for v in map(int, order):
            if locked[v]:
                continue
            src = partition[v]
            if count[src] <= 1:
                continue  # never empty a partition
            gains = move_gains(graph, partition, v)
            if not gains:
                continue
            # Highest gain; ties broken toward the lighter partition so
            # refinement also nudges the balance in the right direction.
            best_dest = -1
            best_gain = 0
            for dest, gain in gains.items():
                if load[dest] + graph.weight[v] > max_weight:
                    continue
                if gain > best_gain or (
                    gain == best_gain and best_dest >= 0 and load[dest] < load[best_dest]
                ):
                    best_dest = dest
                    best_gain = gain
            if best_dest < 0 or best_gain <= 0:
                continue
            partition[v] = best_dest
            load[src] -= graph.weight[v]
            load[best_dest] += graph.weight[v]
            count[src] -= 1
            count[best_dest] += 1
            locked[v] = 1
            moves_this_iter += 1
        total_moves += moves_this_iter
        if moves_this_iter == 0:
            break
    return total_moves


def cut_weight(graph: CoarseGraph, partition: list[int]) -> int:
    """Total weight of directed edges crossing partitions."""
    total = 0
    for u in range(graph.n):
        pu = partition[u]
        for v, w in graph.fanout[u].items():
            if partition[v] != pu:
                total += w
    return total
