"""Ablation refiner: Kernighan–Lin pairwise exchanges [13].

The classical KL algorithm improves a *bisection* by swapping vertex
pairs; for k-way partitions it is applied to every pair of partitions
in turn. Swaps keep partition *cardinalities* fixed, but on weighted
coarse graphs the swapped globules carry different weights, so the load
can still drift — swaps that would push a side past ``max_weight`` are
rejected. KL's pairwise structure and swap granularity are two reasons
[12] found move-based refinement superior, which ablation A2 revisits.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.partition.multilevel.coarse_graph import CoarseGraph


def _d_value(graph: CoarseGraph, partition: list[int], v: int, other: int) -> int:
    """KL D-value of *v* w.r.t. partition *other*: external - internal."""
    own = partition[v]
    internal = 0
    external = 0
    for neighbor, weight in graph.neighbors[v].items():
        p = partition[neighbor]
        if p == own:
            internal += weight
        elif p == other:
            external += weight
    return external - internal


def kl_refine(
    graph: CoarseGraph,
    partition: list[int],
    k: int,
    rng: np.random.Generator,
    *,
    max_weight: float,
    max_passes: int = 2,
    max_swaps_per_pair: int = 64,
) -> int:
    """Refine *partition* in place via pairwise KL; return swap count."""
    load = [0.0] * k
    for v in range(graph.n):
        load[partition[v]] += graph.weight[v]
    total_swaps = 0
    for _ in range(max_passes):
        swaps = 0
        for a, b in combinations(range(k), 2):
            swaps += _kl_pair(
                graph, partition, a, b, max_swaps_per_pair, load, max_weight
            )
        total_swaps += swaps
        if swaps == 0:
            break
    return total_swaps


def _kl_pair(
    graph: CoarseGraph,
    partition: list[int],
    a: int,
    b: int,
    max_swaps: int,
    load: list[float],
    max_weight: float,
) -> int:
    """One KL improvement pass between partitions *a* and *b*.

    Greedy best-positive-swap with locking — the best-prefix variant
    over full tentative sequences is quadratic per pass and the study
    only needs KL as a comparison point, so positive swaps suffice.
    """
    side_a = [v for v in range(graph.n) if partition[v] == a]
    side_b = [v for v in range(graph.n) if partition[v] == b]
    if not side_a or not side_b:
        return 0
    locked: set[int] = set()
    swaps = 0
    for _ in range(min(max_swaps, len(side_a), len(side_b))):
        best: tuple[int, int, int] | None = None  # (gain, va, vb)
        d_a = {
            v: _d_value(graph, partition, v, b)
            for v in side_a
            if v not in locked
        }
        d_b = {
            v: _d_value(graph, partition, v, a)
            for v in side_b
            if v not in locked
        }
        # Restrict to the most promising vertices: full O(|A||B|) pairing
        # on big sides is wasteful when only boundary vertices matter.
        top_a = sorted(d_a, key=d_a.get, reverse=True)[:24]
        top_b = sorted(d_b, key=d_b.get, reverse=True)[:24]
        for va in top_a:
            for vb in top_b:
                delta = graph.weight[va] - graph.weight[vb]
                if load[b] + delta > max_weight or load[a] - delta > max_weight:
                    continue  # weighted swap would break the balance cap
                cross = graph.neighbors[va].get(vb, 0)
                gain = d_a[va] + d_b[vb] - 2 * cross
                if best is None or gain > best[0]:
                    best = (gain, va, vb)
        if best is None or best[0] <= 0:
            break
        _, va, vb = best
        delta = graph.weight[va] - graph.weight[vb]
        load[b] += delta
        load[a] -= delta
        partition[va] = b
        partition[vb] = a
        side_a.remove(va)
        side_b.remove(vb)
        side_a.append(vb)
        side_b.append(va)
        locked.add(va)
        locked.add(vb)
        swaps += 1
    return swaps
