"""Random load-balanced partitioning (Kravitz & Ackland [15]).

Gates are dealt round-robin over a random permutation: balance is
perfect by construction, but neighbouring gates land on arbitrary
partitions, so the expected cut fraction is ``(k-1)/k`` — this is the
communication-bound baseline of the study.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import Partitioner
from repro.utils.rng import derive_rng


class RandomPartitioner(Partitioner):
    """Uniformly random, perfectly load-balanced assignment."""

    name = "Random"

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        rng = derive_rng(self.seed, "random-partitioner", circuit.name, k)
        order = rng.permutation(circuit.num_gates)
        assignment = [0] * circuit.num_gates
        for position, gate in enumerate(order):
            assignment[int(gate)] = position % k
        return PartitionAssignment(circuit, k, assignment)
