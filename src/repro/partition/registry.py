"""Registry of the six partitioning strategies, keyed by paper name.

Mirrors the runtime-selectable partitioner library the paper integrated
into TYVIS: the algorithm is chosen by name at run time, no recompilation
(Section 4).
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.partition.base import Partitioner
from repro.partition.cluster_bfs import ClusterPartitioner
from repro.partition.cone import ConePartitioner
from repro.partition.depth_first import DepthFirstPartitioner
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.random_part import RandomPartitioner
from repro.partition.topological import TopologicalPartitioner
from repro.utils.rng import RngLike

#: Name -> class, in the order the paper's Table 2 lists them.
PARTITIONERS: dict[str, type[Partitioner]] = {
    "Random": RandomPartitioner,
    "DFS": DepthFirstPartitioner,
    "Cluster": ClusterPartitioner,
    "Topological": TopologicalPartitioner,
    "Multilevel": MultilevelPartitioner,
    "ConePartition": ConePartitioner,
}


def all_partitioners() -> dict[str, type[Partitioner]]:
    """The paper's six strategies plus the related-work field.

    Imported lazily: the extra strategies pull in scipy.sparse, which
    the core study does not need.
    """
    from repro.partition.extra import EXTRA_PARTITIONERS

    return {**PARTITIONERS, **EXTRA_PARTITIONERS}


def get_partitioner(name: str, seed: RngLike = None, **kwargs) -> Partitioner:
    """Instantiate the partitioner registered under *name*.

    Resolves the paper's six strategies first, then the related-work
    extras (``String``, ``Annealing``, ``Spectral``, ``Corolla``,
    ``CPP``).
    """
    registry = PARTITIONERS if name in PARTITIONERS else all_partitioners()
    try:
        cls = registry[name]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {name!r}; available: "
            f"{sorted(all_partitioners())}"
        ) from None
    return cls(seed, **kwargs)
