"""Topological (level) partitioning (Cloutier [5], Smith [19]).

The circuit is levelized and each topological level is assigned to a
partition, cycling ``level mod k``. Gates that can evaluate at the same
time thus sit in *different* partitions from their predecessors: the
scheme buys concurrency by splitting almost every signal across a
partition boundary, which is exactly the communication blow-up the
paper observes for it.
"""

from __future__ import annotations

from repro.circuit.graph import CircuitGraph
from repro.circuit.levelize import levelize, levels_to_buckets
from repro.partition.assignment import PartitionAssignment
from repro.partition.base import (
    Partitioner,
    balanced_capacity,
    fill_empty_partitions,
)


class TopologicalPartitioner(Partitioner):
    """Assign whole topological levels to partitions, round-robin."""

    name = "Topological"

    def __init__(self, seed=None, *, slack: float = 0.10) -> None:
        super().__init__(seed)
        self.slack = slack

    def _partition(self, circuit: CircuitGraph, k: int) -> PartitionAssignment:
        buckets = levels_to_buckets(levelize(circuit))
        capacity = balanced_capacity(circuit.num_gates, k, self.slack)
        sizes = [0] * k
        assignment = [0] * circuit.num_gates
        for level, bucket in enumerate(buckets):
            target = level % k
            for gate in bucket:
                dest = target
                if sizes[dest] >= capacity:
                    # Level overflowed its round-robin slot: spill to the
                    # least-loaded partition to preserve balance.
                    dest = min(range(k), key=sizes.__getitem__)
                assignment[gate] = dest
                sizes[dest] += 1
        fill_empty_partitions(assignment, k)
        return PartitionAssignment(circuit, k, assignment)
