"""Simulation-as-a-service: the asyncio job server and its caches.

``python -m repro serve --port 8472`` turns the process backend into a
long-lived service: POSTed jobs (a named benchmark or inline BENCH
source, a partitioner, a machine config) run on a pool of warm
:class:`~repro.warped.parallel.ring.WorkerRing` worker rings, behind a
two-tier cache — a partition cache (partitioning dominates setup cost
on repeat configurations) and a full-result cache (a repeat job is a
dictionary lookup).  Live per-node status streams over Server-Sent
Events while a job runs.

Layering::

    app.py    HTTP surface (stdlib asyncio; no third-party deps)
    jobs.py   JobManager: queueing, concurrency, timeouts, caching
    pool.py   RingPool: warm WorkerRing lifecycle
    cache.py  LruCache: bounded, metrics-instrumented
    keys.py   canonical digests: what "the same job" means
"""

from repro.serve.cache import LruCache
from repro.serve.jobs import JobManager, JobRequest, JobState
from repro.serve.keys import (
    circuit_fingerprint,
    machine_fingerprint,
    partition_key,
    result_key,
    stimulus_fingerprint,
)
from repro.serve.pool import RingPool

__all__ = [
    "JobManager",
    "JobRequest",
    "JobState",
    "LruCache",
    "RingPool",
    "circuit_fingerprint",
    "machine_fingerprint",
    "partition_key",
    "result_key",
    "stimulus_fingerprint",
]
