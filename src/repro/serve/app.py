"""Stdlib-asyncio HTTP surface of the simulation server.

No third-party web framework: the container this repo targets ships
only the standard library, so the server speaks a deliberately small
slice of HTTP/1.1 over ``asyncio.start_server`` — enough for JSON
request/response bodies, Server-Sent Events, and ``curl``.

Routes::

    GET    /healthz            liveness probe
    GET    /metrics            counters, timers, cache + pool stats
    GET    /jobs               job listing (summaries, no results)
    POST   /jobs               submit a job (JSON body -> 202 + record)
    GET    /jobs/<id>          job detail incl. result when done;
                               ``?wait=SECONDS`` long-polls for a
                               terminal state
    GET    /jobs/<id>/events   SSE stream: live per-node status
                               snapshots while running, one final
                               ``state`` event at terminal state
    DELETE /jobs/<id>          cancel (queued: dropped; running: ring
                               killed)

Blocking :class:`~repro.serve.jobs.JobManager` calls stay off the event
loop — submissions and long-polls run in the default thread executor.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ConfigError
from repro.serve.jobs import JobManager, JobRequest

#: SSE frame cadence while a job runs.
_EVENT_INTERVAL = 0.25
#: Upper bound for ?wait= long-polls.
_MAX_WAIT = 120.0
#: Largest request body the server accepts (inline netlists included).
_MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload) -> bytes:
    return _response(status, (json.dumps(payload) + "\n").encode())


class ServeApp:
    """One HTTP server bound to one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 8472,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            method, path, query, headers = await self._read_request_head(reader)
            body = await self._read_body(reader, headers)
            await self._route(method, path, query, body, writer)
        except _HttpError as exc:
            writer.write(_json_response(exc.status, {"error": exc.message}))
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request/stream
        except Exception as exc:  # noqa: BLE001 - server must survive
            try:
                writer.write(
                    _json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request_head(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        path, _, raw_query = target.partition("?")
        query: dict[str, str] = {}
        if raw_query:
            for pair in raw_query.split("&"):
                key, _, value = pair.partition("=")
                if key:
                    query[key] = value
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return method.upper(), path, query, headers

    async def _read_body(self, reader, headers: dict[str, str]) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    # ------------------------------------------------------------------
    async def _route(self, method, path, query, body, writer) -> None:
        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, {"ok": True}))
            return
        if path == "/metrics" and method == "GET":
            payload = dict(self.manager.stats())
            payload["counters"] = self.manager.metrics.snapshot()
            writer.write(_json_response(200, payload))
            return
        if path == "/jobs" and method == "GET":
            writer.write(
                _json_response(
                    200,
                    {
                        "jobs": [
                            job.to_dict(include_result=False)
                            for job in self.manager.jobs()
                        ]
                    },
                )
            )
            return
        if path == "/jobs" and method == "POST":
            await self._submit(body, writer)
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if tail == "" and method == "GET":
                await self._job_detail(job_id, query, writer)
                return
            if tail == "" and method == "DELETE":
                self._cancel(job_id, writer)
                return
            if tail == "events" and method == "GET":
                await self._stream_events(job_id, writer)
                return
        raise _HttpError(
            404 if method in ("GET", "POST", "DELETE") else 405,
            f"no route for {method} {path}",
        )

    # ------------------------------------------------------------------
    async def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        try:
            request = JobRequest.from_dict(payload)
            loop = asyncio.get_running_loop()
            job = await loop.run_in_executor(
                None, self.manager.submit, request
            )
        except ConfigError as exc:
            raise _HttpError(400, str(exc)) from None
        writer.write(_json_response(202, job.to_dict(include_result=False)))

    async def _job_detail(self, job_id: str, query, writer) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        if "wait" in query:
            try:
                patience = min(float(query["wait"] or _MAX_WAIT), _MAX_WAIT)
            except ValueError:
                raise _HttpError(400, "wait must be a number") from None
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, self.manager.wait, job_id, patience
            )
        writer.write(_json_response(200, job.to_dict()))

    def _cancel(self, job_id: str, writer) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        changed = self.manager.cancel(job_id)
        writer.write(
            _json_response(
                200, {"id": job_id, "cancelled": changed,
                      "state": job.state.value}
            )
        )

    async def _stream_events(self, job_id: str, writer) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, f"no such job: {job_id}")
        writer.write(
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n".encode("ascii")
        )
        await writer.drain()
        while True:
            snapshots = self.manager.status_snapshots(job_id)
            frame = {
                "state": job.state.value,
                "nodes": {str(n): s for n, s in sorted(snapshots.items())},
            }
            event = "state" if job.state.terminal else "status"
            writer.write(
                f"event: {event}\ndata: {json.dumps(frame)}\n\n".encode()
            )
            await writer.drain()
            if job.state.terminal:
                return
            await asyncio.sleep(_EVENT_INTERVAL)


async def run_server(
    manager: JobManager, *, host: str = "127.0.0.1", port: int = 8472
) -> None:
    """Run the server until cancelled (the CLI entry point awaits this)."""
    app = ServeApp(manager, host=host, port=port)
    await app.start()
    print(f"repro-sim serve: listening on http://{app.host}:{app.port}")
    try:
        await app.serve_forever()
    finally:
        await app.stop()
