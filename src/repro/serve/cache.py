"""Bounded, metrics-instrumented LRU cache for the job server.

Both server caches (partition, full result) are instances of
:class:`LruCache`: an ``OrderedDict`` with move-to-end on hit and
evict-oldest on overflow, guarded by a lock because job workers run on
a thread pool.  Every get/put feeds ``repro.obs`` counters
(``<name>_hits`` / ``<name>_misses`` / ``<name>_evictions``) so the
``/metrics`` endpoint reports cache effectiveness without bespoke
bookkeeping.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ConfigError
from repro.obs import Metrics

_MISSING = object()


class LruCache:
    """Least-recently-used mapping bounded to *capacity* entries."""

    def __init__(
        self,
        capacity: int,
        *,
        metrics: Metrics | None = None,
        name: str = "cache",
    ) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._metrics = metrics if metrics is not None else Metrics(enabled=False)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key, default=None):
        """Return the cached value (refreshing its recency) or *default*."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                self._metrics.inc(f"{self.name}_misses")
                return default
            self._data.move_to_end(key)
            self.hits += 1
            self._metrics.inc(f"{self.name}_hits")
            return value

    def put(self, key, value) -> None:
        """Insert/refresh *key*, evicting the oldest entry on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                self._metrics.inc(f"{self.name}_evictions")

    def stats(self) -> dict:
        """Snapshot for the ``/metrics`` endpoint."""
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
