"""Job lifecycle for the simulation server.

:class:`JobRequest` is the validated, immutable description of one
simulation a client asked for — a named benchmark or inline BENCH
source, a partitioner, the machine knobs.  :class:`JobManager` runs
requests on a bounded thread pool, each worker thread leasing a warm
ring from the :class:`~repro.serve.pool.RingPool`, behind the two-tier
cache:

1. **Result cache** — keyed by :func:`~repro.serve.keys.result_key`.
   A hit returns the stored :class:`TimeWarpResult` object itself: the
   served payload is bit-identical to the cold run that populated the
   entry, in every counter (the cache-key layer guarantees nothing
   semantic differs between the two jobs).
2. **Partition cache** — keyed by
   :func:`~repro.serve.keys.partition_key`; partitioning dominates the
   setup cost of repeat configurations that differ only in stimulus or
   machine knobs.  Entries store ``(circuit, assignment)`` *together*
   so the assignment's circuit identity stays consistent with the
   circuit the stimulus is built on.

Jobs are cancellable: a queued job is simply dropped; a running one
has its leased ring killed (cancellation costs the ring — there is no
safe mid-GVT stop), and the pool replaces it on the next lease.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.bench_parser import parse_bench
from repro.circuit.graph import CircuitGraph
from repro.circuit.iscas89 import load_benchmark
from repro.errors import ConfigError, ReproError
from repro.obs import Metrics
from repro.obs.tracer import shard_path
from repro.partition.registry import get_partitioner
from repro.serve.cache import LruCache
from repro.serve.keys import (
    circuit_fingerprint,
    machine_fingerprint,
    partition_key,
    result_key,
    stimulus_fingerprint,
)
from repro.serve.pool import RingPool
from repro.sim.stimulus import RandomStimulus
from repro.warped.machine import VirtualMachine
from repro.warped.stats import TimeWarpResult


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Hard ceiling on a client-supplied timeout (a server must not let one
#: job camp on a worker slot for hours).
MAX_TIMEOUT = 600.0


@dataclass(frozen=True)
class JobRequest:
    """One client-submitted simulation, validated at construction."""

    #: Named benchmark (``s27``/``s5378``/...) — exclusive with *bench*.
    circuit: str | None = None
    #: Inline ISCAS'89 ``.bench`` netlist source.
    bench: str | None = None
    scale: float = 1.0
    circuit_seed: int = 2000
    algorithm: str = "Multilevel"
    partition_seed: int = 3
    nodes: int = 2
    num_cycles: int = 40
    period: int = 100
    activity: float = 0.5
    stimulus_seed: int = 7
    gvt_interval: int = 512
    optimism_window: int | None = 100
    migration_threshold: float | None = None
    migration_fraction: float = 0.05
    max_events: int = 50_000_000
    timeout: float = 120.0

    def __post_init__(self) -> None:
        if (self.circuit is None) == (self.bench is None):
            raise ConfigError(
                "a job names exactly one netlist source: 'circuit' "
                "(a benchmark name) or 'bench' (inline netlist text)"
            )
        if self.nodes < 1:
            raise ConfigError("nodes must be >= 1")
        if self.num_cycles < 2:
            raise ConfigError("need at least 2 cycles (cycle 0 is reset)")
        if not 0.0 < self.activity <= 1.0:
            raise ConfigError("activity must be in (0, 1]")
        if self.period < 1:
            raise ConfigError("period must be >= 1")
        if self.max_events < 1:
            raise ConfigError("max_events must be >= 1")
        if not 0 < self.timeout <= MAX_TIMEOUT:
            raise ConfigError(f"timeout must be in (0, {MAX_TIMEOUT:g}]")

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRequest":
        if not isinstance(payload, dict):
            raise ConfigError("job payload must be a JSON object")
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ConfigError(f"unknown job field(s): {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(str(exc)) from None

    def machine(self) -> VirtualMachine:
        return VirtualMachine(
            num_nodes=self.nodes,
            gvt_interval=self.gvt_interval,
            optimism_window=self.optimism_window,
            migration_threshold=self.migration_threshold,
            migration_fraction=self.migration_fraction,
        )

    def describe(self) -> dict:
        payload = dataclasses.asdict(self)
        if payload["bench"] is not None:
            # Don't echo whole netlists back in job listings.
            payload["bench"] = (
                f"<{len(self.bench)} chars, "
                f"sha256 {hashlib.sha256(self.bench.encode()).hexdigest()[:12]}>"
            )
        return payload


@dataclass
class Job:
    """Mutable server-side record of one submitted request."""

    id: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    result: TimeWarpResult | None = None
    #: "hit" / "miss" per cache tier, filled in as the job executes.
    cache: dict = field(default_factory=dict)
    #: Live-status snapshot base path (None when the server has no
    #: status directory).
    status_base: str | None = None
    cancel_requested: bool = False
    _ring = None  # leased WorkerRing while RUNNING (not serialised)
    _done_event: threading.Event = field(default_factory=threading.Event)
    _future = None

    def to_dict(self, *, include_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "state": self.state.value,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "cache": dict(self.cache),
            "request": self.request.describe(),
        }
        if include_result and self.result is not None:
            payload["result"] = dataclasses.asdict(self.result)
        return payload


class JobManager:
    """Bounded-concurrency executor + two-tier cache for served jobs."""

    def __init__(
        self,
        *,
        transport: str | None = None,
        max_concurrency: int = 2,
        result_cache_size: int = 128,
        partition_cache_size: int = 64,
        circuit_cache_size: int = 32,
        max_idle_rings: int = 4,
        status_dir: str | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ConfigError("max_concurrency must be >= 1")
        self.metrics = metrics if metrics is not None else Metrics(enabled=True)
        self.result_cache = LruCache(
            result_cache_size, metrics=self.metrics, name="result_cache"
        )
        self.partition_cache = LruCache(
            partition_cache_size, metrics=self.metrics, name="partition_cache"
        )
        self._circuit_cache = LruCache(
            circuit_cache_size, metrics=self.metrics, name="circuit_cache"
        )
        self.pool = RingPool(
            transport=transport,
            max_idle=max_idle_rings,
            metrics=self.metrics,
        )
        self.status_dir = status_dir
        if status_dir is not None:
            os.makedirs(status_dir, exist_ok=True)
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="serve-job"
        )
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Queue *request*; returns its :class:`Job` record."""
        with self._lock:
            if self._closed:
                raise ConfigError("job manager is closed")
            job_id = f"job-{next(self._seq):06d}"
            job = Job(id=job_id, request=request)
            if self.status_dir is not None:
                job.status_base = os.path.join(self.status_dir, job_id)
            self._jobs[job_id] = job
        self.metrics.inc("jobs_submitted")
        job._future = self._executor.submit(self._execute, job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until the job reaches a terminal state (long-poll)."""
        job = self.get(job_id)
        if job is None:
            return None
        job._done_event.wait(timeout)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; True if anything changed."""
        job = self.get(job_id)
        if job is None or job.state.terminal:
            return False
        job.cancel_requested = True
        future = job._future
        if future is not None and future.cancel():
            # Never started: finalise here (the executor won't call us).
            self._finish(job, JobState.CANCELLED, error="cancelled while queued")
            return True
        ring = job._ring
        if ring is not None:
            # Running: killing the ring unblocks the worker thread's
            # run_job with a SimulationError; _execute turns that into
            # CANCELLED because cancel_requested is set.
            ring.kill()
        return True

    def status_snapshots(self, job_id: str) -> dict[int, dict]:
        """Current per-node live-status snapshots for a running job.

        Only snapshots stamped with this job's run id are returned —
        a recycled status base can briefly hold files from an earlier,
        wider run.
        """
        job = self.get(job_id)
        if job is None or job.status_base is None:
            return {}
        snapshots: dict[int, dict] = {}
        for node in range(job.request.nodes):
            try:
                with open(shard_path(job.status_base, node)) as fh:
                    snapshot = json.loads(fh.read())
            except (OSError, ValueError):
                continue
            if snapshot.get("run") == job.id:
                snapshots[node] = snapshot
        return snapshots

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _resolve_circuit(self, request: JobRequest):
        """(circuit, digest) for the request's netlist, cached."""
        if request.bench is not None:
            key = ("bench", hashlib.sha256(request.bench.encode()).hexdigest())
        else:
            key = (
                "named", request.circuit, request.scale, request.circuit_seed,
            )
        entry = self._circuit_cache.get(key)
        if entry is None:
            if request.bench is not None:
                circuit = parse_bench(request.bench, name="inline")
            else:
                circuit = load_benchmark(
                    request.circuit,
                    scale=request.scale,
                    seed=request.circuit_seed,
                )
            entry = (circuit, circuit_fingerprint(circuit))
            self._circuit_cache.put(key, entry)
        return entry

    def _resolve_partition(self, request: JobRequest, circuit, digest):
        """(circuit, assignment) under the partition cache.

        On a hit the *cached* circuit object is returned alongside the
        assignment (assignment.circuit identity must match whatever the
        stimulus is built on).
        """
        pkey = partition_key(
            digest, request.algorithm, request.partition_seed, request.nodes
        )
        entry = self.partition_cache.get(pkey)
        if entry is None:
            assignment = get_partitioner(
                request.algorithm, seed=request.partition_seed
            ).partition(circuit, request.nodes)
            entry = (circuit, assignment)
            self.partition_cache.put(pkey, entry)
            return entry, "miss"
        return entry, "hit"

    def _execute(self, job: Job) -> None:
        request = job.request
        try:
            job.started = time.time()
            job.state = JobState.RUNNING
            circuit, digest = self._resolve_circuit(request)
            machine = request.machine()
            rkey = result_key(
                digest,
                request.algorithm,
                request.partition_seed,
                request.nodes,
                machine_fingerprint(machine),
                stimulus_fingerprint(
                    request.num_cycles,
                    request.period,
                    request.activity,
                    request.stimulus_seed,
                ),
                request.max_events,
            )
            cached = self.result_cache.get(rkey)
            if cached is not None:
                job.cache["result"] = "hit"
                job.result = cached
                self.metrics.inc("jobs_result_cache_hits")
                self._finish(job, JobState.DONE)
                return
            job.cache["result"] = "miss"
            (circuit, assignment), partition_state = self._resolve_partition(
                request, circuit, digest
            )
            job.cache["partition"] = partition_state
            stimulus = RandomStimulus(
                circuit,
                num_cycles=request.num_cycles,
                period=request.period,
                activity=request.activity,
                seed=request.stimulus_seed,
            )
            if job.cancel_requested:
                raise CancelledError("cancelled before execution")
            with self.metrics.time("job_run_seconds"):
                with self.pool.lease(request.nodes) as ring:
                    job._ring = ring
                    try:
                        result = ring.run_job(
                            circuit,
                            assignment,
                            stimulus,
                            machine,
                            max_events=request.max_events,
                            timeout=request.timeout,
                            status_path=job.status_base,
                            run_id=job.id,
                        )
                    finally:
                        job._ring = None
            self.result_cache.put(rkey, result)
            job.result = result
            self._finish(job, JobState.DONE)
        except CancelledError as exc:
            self._finish(job, JobState.CANCELLED, error=str(exc))
        except ReproError as exc:
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED, error="cancelled mid-run")
            else:
                self._finish(job, JobState.FAILED, error=str(exc))
        except BaseException as exc:  # noqa: BLE001 - server must survive
            self._finish(
                job, JobState.FAILED, error=f"{type(exc).__name__}: {exc}"
            )

    def _finish(
        self, job: Job, state: JobState, *, error: str | None = None
    ) -> None:
        job.state = state
        job.error = error
        job.finished = time.time()
        self.metrics.inc(f"jobs_{state.value}")
        job._done_event.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        states: dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "jobs": states,
            "result_cache": self.result_cache.stats(),
            "partition_cache": self.partition_cache.stats(),
            "circuit_cache": self._circuit_cache.stats(),
            "pool": self.pool.stats(),
        }

    def close(self) -> None:
        """Cancel queued jobs, wait for running ones, shut the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            future = job._future
            if future is not None and future.cancel():
                self._finish(
                    job, JobState.CANCELLED, error="server shutting down"
                )
        self._executor.shutdown(wait=True)
        self.pool.close()
