"""Canonical digests: what makes two served jobs "the same job".

The job server's caches are only sound if the key captures *everything*
the committed result depends on — and only that.  Three layers:

- :func:`circuit_fingerprint` hashes the circuit's **semantic** content:
  per-gate (name, type, delay, output flag, ordered fanin-by-name).
  Gate *insertion order* is representation, not semantics (the BENCH
  format allows any line order and the committed results cannot depend
  on it), so gates are serialised sorted by name.  Fanin order is kept:
  gate inputs are positional in general.
- :func:`machine_fingerprint` / :func:`stimulus_fingerprint` hash the
  knobs that govern a run's committed output and counters.
- :func:`result_key` combines them with the partition identity
  (algorithm + seed + k) into the full-result cache key.

Everything is hashed via a stable JSON encoding (sorted keys, no
whitespace drift, floats via ``repr``-faithful ``json``) so digests are
reproducible across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json

from repro.circuit.graph import CircuitGraph
from repro.warped.machine import VirtualMachine


def _digest(payload) -> str:
    """sha256 hex digest of the stable JSON encoding of *payload*."""
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(encoded.encode("ascii")).hexdigest()


def circuit_fingerprint(circuit: CircuitGraph) -> str:
    """Canonical content hash of *circuit*.

    Invariant to gate insertion order (gates serialised sorted by
    name, fanin referenced by name); sensitive to every semantic field:
    gate type, inertial delay, primary-output flag, and fanin order.
    """
    gates = sorted(circuit.gates, key=lambda g: g.name)
    payload = [
        [
            gate.name,
            gate.gate_type.value,
            gate.delay,
            bool(gate.is_output),
            [circuit.gates[driver].name for driver in gate.fanin],
        ]
        for gate in gates
    ]
    return _digest(payload)


def machine_fingerprint(machine: VirtualMachine) -> str:
    """Hash of the machine knobs a served run's outcome depends on.

    Cost/network models are excluded deliberately: the process backend
    measures real time and ignores them, so they cannot change a served
    result.
    """
    return _digest(
        {
            "num_nodes": machine.num_nodes,
            "gvt_interval": machine.gvt_interval,
            "optimism_window": machine.optimism_window,
            "cancellation": machine.cancellation,
            "migration_threshold": machine.migration_threshold,
            "migration_fraction": machine.migration_fraction,
        }
    )


def stimulus_fingerprint(
    num_cycles: int, period: int, activity: float, seed: int
) -> str:
    """Hash of the workload parameters (they fully determine the
    stimulus: RandomStimulus is a pure function of circuit + these)."""
    return _digest(
        {
            "num_cycles": num_cycles,
            "period": period,
            "activity": activity,
            "seed": seed,
        }
    )


def partition_key(
    circuit_digest: str, algorithm: str, seed: int, k: int
) -> str:
    """Partition-cache key: the partition is a pure function of these."""
    return _digest(
        {
            "circuit": circuit_digest,
            "algorithm": algorithm,
            "seed": seed,
            "k": k,
        }
    )


def result_key(
    circuit_digest: str,
    algorithm: str,
    partition_seed: int,
    k: int,
    machine_digest: str,
    stimulus_digest: str,
    max_events: int,
) -> str:
    """Full-result cache key.

    ``max_events`` is included because hitting the budget aborts a run:
    two jobs differing only there can observably differ.
    """
    return _digest(
        {
            "circuit": circuit_digest,
            "partition": [algorithm, partition_seed, k],
            "machine": machine_digest,
            "stimulus": stimulus_digest,
            "max_events": max_events,
        }
    )
