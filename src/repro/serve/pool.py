"""Warm worker-ring pool: spawn rings once, lease them per job.

Forking N node processes and building their transport channels is the
dominant fixed cost of a small process-backend run.  :class:`RingPool`
keeps finished rings warm, keyed by node count, and leases them to
jobs: a repeat configuration pays only the simulation itself.

Lifecycle rules:

- :meth:`lease` is a context manager.  On release a healthy ring goes
  back to the idle shelf; a poisoned one (job error, timeout,
  cancellation) is closed and forgotten — rings never carry failure
  state between jobs.
- The shelf holds at most ``max_idle`` rings total; releasing onto a
  full shelf closes the least-recently-used idle ring (LRU across node
  counts, so a burst of 8-node jobs eventually reclaims idle 2-node
  rings).
- Counters (``ring_spawns`` / ``ring_reuses`` / ``ring_retires``) feed
  the server's metrics so warm-pool effectiveness is observable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager

from repro.errors import ConfigError
from repro.obs import Metrics
from repro.warped.parallel.ring import WorkerRing


class RingPool:
    """Bounded shelf of warm :class:`WorkerRing` instances."""

    def __init__(
        self,
        *,
        transport: str | None = None,
        max_idle: int = 4,
        metrics: Metrics | None = None,
    ) -> None:
        if max_idle < 0:
            raise ConfigError("max_idle must be >= 0")
        self.transport = transport
        self.max_idle = max_idle
        self._metrics = metrics if metrics is not None else Metrics(enabled=False)
        # token -> (num_nodes, ring); ordered oldest-released first.
        self._idle: OrderedDict[int, tuple[int, WorkerRing]] = OrderedDict()
        self._token = 0
        self._lock = threading.Lock()
        self._closed = False
        self.spawned = 0
        self.reused = 0
        self.retired = 0

    # ------------------------------------------------------------------
    def _take_idle(self, num_nodes: int) -> WorkerRing | None:
        """Pop the most-recently-released idle ring of this size."""
        for token in reversed(self._idle):
            size, ring = self._idle[token]
            if size == num_nodes:
                del self._idle[token]
                return ring
        return None

    @contextmanager
    def lease(self, num_nodes: int):
        """Borrow a warm ring of *num_nodes* nodes (spawning on miss)."""
        with self._lock:
            if self._closed:
                raise ConfigError("ring pool is closed")
            ring = self._take_idle(num_nodes)
        if ring is not None and not ring.alive:
            # A shelved ring can only die from worker crash while idle;
            # treat it as a miss.
            ring.close()
            with self._lock:
                self.retired += 1
            self._metrics.inc("ring_retires")
            ring = None
        if ring is None:
            ring = WorkerRing(num_nodes, transport=self.transport).start()
            with self._lock:
                self.spawned += 1
            self._metrics.inc("ring_spawns")
        else:
            with self._lock:
                self.reused += 1
            self._metrics.inc("ring_reuses")
        try:
            yield ring
        finally:
            self._release(num_nodes, ring)

    def _release(self, num_nodes: int, ring: WorkerRing) -> None:
        if not ring.alive:
            ring.close()
            with self._lock:
                self.retired += 1
            self._metrics.inc("ring_retires")
            return
        to_close: list[WorkerRing] = []
        with self._lock:
            if self._closed or self.max_idle == 0:
                to_close.append(ring)
            else:
                self._token += 1
                self._idle[self._token] = (num_nodes, ring)
                while len(self._idle) > self.max_idle:
                    _, (_, oldest) = self._idle.popitem(last=False)
                    to_close.append(oldest)
        for stale in to_close:
            stale.close()
            with self._lock:
                self.retired += 1
            self._metrics.inc("ring_retires")

    # ------------------------------------------------------------------
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def stats(self) -> dict:
        with self._lock:
            return {
                "idle": len(self._idle),
                "max_idle": self.max_idle,
                "spawned": self.spawned,
                "reused": self.reused,
                "retired": self.retired,
                "transport": self.transport,
            }

    def close(self) -> None:
        """Close every idle ring and refuse further leases."""
        with self._lock:
            self._closed = True
            rings = [ring for _, ring in self._idle.values()]
            self._idle.clear()
        for ring in rings:
            ring.close()
