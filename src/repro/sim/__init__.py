"""Sequential event-driven logic simulation (the baseline of Table 2).

The event semantics here are shared with the Time Warp kernel
(:mod:`repro.warped`): events are gate *output changes* carrying the
deterministic key ``(time, priority, source gate, emission number)``,
DFFs capture on an implicit clock at priority 0, and primary-input
stimulus applies at priority 2. Because both engines order events by
the same keys, an optimistic run must quiesce to exactly the same final
signal values as the sequential run — the correctness oracle the
integration tests enforce.
"""

from repro.sim.event import CAPTURE, SIG, STIM, Event
from repro.sim.event_queue import EventQueue
from repro.sim.stimulus import RandomStimulus, Stimulus, VectorStimulus
from repro.sim.kernel import SequentialResult, SequentialSimulator
from repro.sim.cost_model import SequentialCostModel
from repro.sim.trace import Trace
from repro.sim.activity import ActivityProfile, profile_activity
from repro.sim.vcd import write_vcd

__all__ = [
    "ActivityProfile",
    "CAPTURE",
    "Event",
    "EventQueue",
    "RandomStimulus",
    "SIG",
    "STIM",
    "SequentialCostModel",
    "SequentialResult",
    "SequentialSimulator",
    "Stimulus",
    "Trace",
    "VectorStimulus",
    "profile_activity",
    "write_vcd",
]
