"""Signal-activity profiling.

Section 6 of the paper names activity-aware coarsening as ongoing work:
"the use of activity levels of communication to make better decisions
while coarsening". This module supplies the activity data — a short
profiling run of the sequential simulator counting output changes per
gate, i.e. how much traffic each signal actually carries. The
activity-weighted multilevel partitioner
(:class:`repro.partition.extra_activity.ActivityMultilevelPartitioner`)
feeds these counts in as edge weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus, Stimulus
from repro.sim.trace import Trace


@dataclass(frozen=True)
class ActivityProfile:
    """Per-gate output-change counts from a profiling run."""

    circuit_name: str
    num_cycles: int
    changes: tuple[int, ...]

    def edge_weight(self, driver: int, floor: int = 1) -> int:
        """Activity weight of *driver*'s output signal (≥ *floor*).

        A floor keeps never-toggling signals from becoming free to cut —
        the partitioner should still not scatter them gratuitously.
        """
        return max(floor, self.changes[driver])

    @property
    def total_changes(self) -> int:
        return sum(self.changes)


class _CountingTrace(Trace):
    """Trace subclass that only counts changes (no waveform storage)."""

    def __init__(self, circuit: CircuitGraph) -> None:
        super().__init__(circuit, watch=())
        self.counts = [0] * circuit.num_gates

    def record(self, time: int, gate: int, value: int) -> None:
        self.counts[gate] += 1


def profile_activity(
    circuit: CircuitGraph,
    *,
    num_cycles: int = 16,
    period: int = 100,
    activity: float = 0.5,
    seed: int | None = None,
    stimulus: Stimulus | None = None,
) -> ActivityProfile:
    """Run a short sequential simulation and count per-gate changes.

    A custom *stimulus* may be supplied (e.g. the first cycles of the
    production workload); by default a short random-vector profile run
    is used, which captures the structural activity skew (clock
    domains, control nets, datapath) well enough for weighting.
    """
    if num_cycles < 2:
        raise SimulationError("profiling needs at least 2 cycles")
    if stimulus is None:
        stimulus = RandomStimulus(
            circuit,
            num_cycles=num_cycles,
            period=period,
            activity=activity,
            seed=seed,
        )
    trace = _CountingTrace(circuit)
    SequentialSimulator(circuit, stimulus, trace=trace).run()
    return ActivityProfile(
        circuit_name=circuit.name,
        num_cycles=stimulus.num_cycles,
        changes=tuple(trace.counts),
    )
