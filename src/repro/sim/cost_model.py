"""Wall-clock cost model for the sequential baseline.

The paper's Table 2 reports sequential times measured on a Pentium II;
here the sequential "execution time" is (events processed) x (per-event
service time). The default service time is calibrated so a full-size
s9234 run over a few hundred cycles lands in the paper's magnitude
range; EXPERIMENTS.md records the configuration each artifact used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class SequentialCostModel:
    """Per-event service time of the sequential simulator.

    ``event_cost``: seconds of (modelled) wall-clock per processed
    event, covering dequeue, gate evaluation and scheduling. The
    default, 280 µs, reflects the paper's era: a VHDL-kernel process
    evaluation on a ~300 MHz Pentium II (TYVIS carries full VHDL
    signal-update semantics, far heavier than a bare gate eval).
    """

    event_cost: float = 280e-6

    def __post_init__(self) -> None:
        if self.event_cost <= 0:
            raise ConfigError("event_cost must be positive")

    def execution_time(self, events_processed: int) -> float:
        """Modelled wall-clock seconds for *events_processed* events."""
        return events_processed * self.event_cost
