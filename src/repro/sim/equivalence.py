"""Random-vector equivalence checking between two circuits.

Drives both circuits with the same input sequences (matched by primary
input NAME) and compares the quiescent values of every shared primary
output after each run. Not a formal proof — it is the standard
simulation-based sanity check used to validate netlist transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus, VectorStimulus
from repro.utils.rng import derive_rng


@dataclass
class EquivalenceReport:
    """Outcome of one equivalence run."""

    equivalent: bool
    vectors_tried: int
    #: (run index, output name, value in a, value in b) per mismatch.
    mismatches: list[tuple[int, str, int, int]] = field(default_factory=list)

    def __bool__(self) -> bool:  # truthy iff equivalent
        return self.equivalent


def _interface(circuit: CircuitGraph) -> tuple[list[str], list[str]]:
    inputs = [circuit.gates[i].name for i in circuit.primary_inputs]
    outputs = [circuit.gates[i].name for i in circuit.primary_outputs]
    return inputs, outputs


def check_equivalence(
    a: CircuitGraph,
    b: CircuitGraph,
    *,
    runs: int = 8,
    cycles: int = 12,
    seed: int | None = None,
    period: int = 50,
) -> EquivalenceReport:
    """Compare *a* and *b* over random workloads.

    The circuits must share their primary-input names; outputs are
    compared over the intersection of output names (a transform may
    legitimately drop dead outputs... it may not — outputs are the
    interface — so a missing output in either circuit is an error).
    """
    in_a, out_a = _interface(a)
    in_b, out_b = _interface(b)
    if sorted(in_a) != sorted(in_b):
        raise SimulationError(
            f"input interfaces differ: {sorted(in_a)} vs {sorted(in_b)}"
        )
    if sorted(out_a) != sorted(out_b):
        raise SimulationError(
            f"output interfaces differ: {sorted(out_a)} vs {sorted(out_b)}"
        )

    rng = derive_rng(seed, "equivalence", a.name, b.name)
    mismatches: list[tuple[int, str, int, int]] = []
    for run in range(runs):
        # One shared vector set, replayed into both circuits by name.
        reference = RandomStimulus(
            a, num_cycles=cycles, period=period,
            seed=int(rng.integers(0, 2**31)),
        )
        vectors = []
        for cycle in range(cycles):
            vectors.append(
                {
                    name: reference.value(a.index_of(name), cycle)
                    for name in in_a
                }
            )
        result_a = SequentialSimulator(
            a, VectorStimulus(a, vectors, period=period)
        ).run()
        result_b = SequentialSimulator(
            b, VectorStimulus(b, vectors, period=period)
        ).run()
        for name in out_a:
            va = result_a.value_of(a, name)
            vb = result_b.value_of(b, name)
            if va != vb:
                mismatches.append((run, name, va, vb))
    return EquivalenceReport(
        equivalent=not mismatches,
        vectors_tried=runs * cycles,
        mismatches=mismatches,
    )
