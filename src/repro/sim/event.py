"""Event records and the deterministic total order both engines share.

An event states "gate ``src``'s output becomes ``value`` at virtual
time ``time``". The key ``(time, prio, src, n)`` totally orders events:

- ``prio`` separates the three kinds at equal times — DFF captures
  (``CAPTURE``, 0) must read their data input *before* the same
  instant's stimulus (``STIM``, 1) and signal changes (``SIG``, 2)
  land;
- ``src`` and ``n`` (the per-source emission counter at this receive
  time) break remaining ties identically in the sequential and the
  Time Warp engine, so both resolve same-time glitches the same way.

Every emission is scheduled at least one delay unit after the event
that produced it, so an event's key is always strictly smaller than its
consequences' keys — the property optimistic rollback relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Event kind priorities (smaller processes first at equal times).
CAPTURE = 0
STIM = 1
SIG = 2

KIND_NAMES = {CAPTURE: "CAPTURE", STIM: "STIM", SIG: "SIG"}

#: Type alias for the total-order key.
EventKey = tuple[int, int, int, int]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled output change (or DFF capture / PI stimulus)."""

    time: int
    prio: int
    src: int
    n: int
    value: int

    @property
    def key(self) -> EventKey:
        """The deterministic total-order key."""
        return (self.time, self.prio, self.src, self.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = KIND_NAMES.get(self.prio, str(self.prio))
        return f"Event(t={self.time}, {kind}, src={self.src}, n={self.n}, v={self.value})"
