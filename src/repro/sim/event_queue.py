"""A binary-heap event queue ordered by the shared event key."""

from __future__ import annotations

import heapq

from repro.sim.event import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, prio, src, n)``.

    Supports lazy deletion by key (annihilation of a scheduled event);
    the sequential kernel never deletes. ``remove`` enforces the same
    strict contract as ``NodeQueue.annihilate``: deleting a key that was
    never pushed, is already dead, or was already popped raises
    ``KeyError`` — silently accepting it would let the live count drift
    negative and ``__len__``/``__bool__`` disagree.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[int, int, int, int], Event]] = []
        self._dead: set[tuple[int, int, int, int]] = set()
        self._live_keys: set[tuple[int, int, int, int]] = set()

    def push(self, event: Event) -> None:
        """Insert *event* (reviving its key if it was lazily deleted)."""
        key = event.key
        if key in self._dead:
            # The annihilated copy is still sitting in the heap (lazy
            # deletion). Purge it now: merely clearing the dead mark
            # would leave two entries live under one key, and pop could
            # hand back the stale corpse instead of this fresh emission.
            self._dead.discard(key)
            self._heap = [entry for entry in self._heap if entry[0] != key]
            heapq.heapify(self._heap)
        heapq.heappush(self._heap, (key, event))
        self._live_keys.add(key)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            key, event = heapq.heappop(self._heap)
            if key in self._dead:
                self._dead.discard(key)
                continue
            self._live_keys.discard(key)
            return event
        raise IndexError("pop from empty EventQueue")

    def remove(self, key: tuple[int, int, int, int]) -> None:
        """Lazily delete the (unique) live event with *key*.

        Raises :class:`KeyError` if no live event has that key.
        """
        if key not in self._live_keys:
            raise KeyError(f"event key {key} is not pending")
        self._live_keys.discard(key)
        self._dead.add(key)

    def peek_key(self) -> tuple[int, int, int, int] | None:
        """Key of the next live event, or ``None`` when empty."""
        while self._heap:
            key, _ = self._heap[0]
            if key in self._dead:
                heapq.heappop(self._heap)
                self._dead.discard(key)
                continue
            return key
        return None

    def __len__(self) -> int:
        return len(self._live_keys)

    def __bool__(self) -> bool:
        return bool(self._live_keys)
