"""A binary-heap event queue ordered by the shared event key."""

from __future__ import annotations

import heapq

from repro.sim.event import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, prio, src, n)``.

    Supports lazy deletion (needed by the Time Warp node queues for
    anti-message annihilation); the sequential kernel never deletes.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[int, int, int, int], Event]] = []
        self._dead: set[tuple[int, int, int, int]] = set()
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert *event* (reviving its key if it was lazily deleted)."""
        key = event.key
        if key in self._dead:
            # Re-inserting a key marked dead revives it (annihilation
            # consumed the old copy; this is a fresh emission).
            self._dead.discard(key)
        heapq.heappush(self._heap, (key, event))
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            key, event = heapq.heappop(self._heap)
            if key in self._dead:
                self._dead.discard(key)
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def remove(self, key: tuple[int, int, int, int]) -> None:
        """Lazily delete the (unique) event with *key*."""
        self._dead.add(key)
        self._live -= 1

    def peek_key(self) -> tuple[int, int, int, int] | None:
        """Key of the next live event, or ``None`` when empty."""
        while self._heap:
            key, _ = self._heap[0]
            if key in self._dead:
                heapq.heappop(self._heap)
                self._dead.discard(key)
                continue
            return key
        return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_key() is not None
