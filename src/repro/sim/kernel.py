"""The sequential event-driven simulator.

Processing model (shared key semantics with the Time Warp kernel — see
:mod:`repro.sim.event`): an event applies gate ``src``'s new output
value, then every combinational sink re-evaluates and, if its result
changed from its last evaluation, emits its own output change after its
inertial delay. DFFs capture their data input at clock boundaries
(priority 0, i.e. before same-instant stimulus/signal changes) and all
flip-flops power up reset to 0 via an emission at t=0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gate import FALSE, UNKNOWN, GateType, eval_func
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.sim.cost_model import SequentialCostModel
from repro.sim.event import CAPTURE, SIG, STIM, Event
from repro.sim.event_queue import EventQueue
from repro.sim.stimulus import Stimulus
from repro.sim.trace import Trace


@dataclass
class SequentialResult:
    """Outcome of one sequential run."""

    circuit_name: str
    num_cycles: int
    events_processed: int
    emissions: int
    final_values: list[int]
    execution_time: float
    trace: Trace | None = None
    #: DFF capture history as sorted (gate, cycle, value) triples — one
    #: entry per capture that changed the flip-flop's output.  The Time
    #: Warp backends produce the identical committed log; the
    #: differential tests compare against this oracle.
    committed_captures: list[tuple[int, int, int]] | None = None

    def value_of(self, circuit: CircuitGraph, name: str) -> int:
        """Final value of the gate called *name*."""
        return self.final_values[circuit.index_of(name)]


class SequentialSimulator:
    """Single event queue, global state — the Table 2 baseline."""

    def __init__(
        self,
        circuit: CircuitGraph,
        stimulus: Stimulus,
        *,
        cost_model: SequentialCostModel | None = None,
        trace: Trace | None = None,
        max_events: int = 50_000_000,
        forced: dict[int, int] | None = None,
        tracer=None,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        self.circuit = circuit
        self.stimulus = stimulus
        self.cost_model = cost_model or SequentialCostModel()
        self.trace = trace
        self.max_events = max_events
        #: Optional :class:`repro.obs.tracer.TraceWriter`.  The
        #: sequential engine has no rollbacks or GVT; it contributes
        #: ``run_start``/``run_end`` records so cross-engine traces
        #: share one schema.
        self.tracer = tracer
        #: Gate outputs pinned to constant values for the whole run —
        #: the fault-injection mechanism (stuck-at faults) and a general
        #: what-if tool. A forced gate never evaluates, captures or
        #: follows stimulus; its pinned value propagates from t=0.
        self.forced = dict(forced or {})
        for gate, value in self.forced.items():
            if not 0 <= gate < circuit.num_gates:
                raise SimulationError(f"forced gate {gate} out of range")
            if value not in (0, 1):
                raise SimulationError(
                    f"forced value for gate {gate} must be 0 or 1"
                )

    def run(self) -> SequentialResult:
        """Simulate to quiescence and return the result."""
        circuit = self.circuit
        stim = self.stimulus
        n = circuit.num_gates
        value = [UNKNOWN] * n       # applied (visible) output values
        eval_value = [UNKNOWN] * n  # last evaluation result per gate
        emit_count: dict[tuple[int, int], int] = {}
        queue = EventQueue()
        events_processed = 0
        emissions = 0
        capture_log: dict[tuple[int, int], int] = {}

        def emit(time: int, src: int, v: int) -> None:
            nonlocal emissions
            key = (src, time)
            seq = emit_count.get(key, 0)
            emit_count[key] = seq + 1
            queue.push(Event(time, SIG, src, seq, v))
            emissions += 1

        forced = self.forced
        # --- initial schedule: forced pins, DFF resets, captures, stimulus.
        for gate_index, pinned in forced.items():
            eval_value[gate_index] = pinned
            emit(0, gate_index, pinned)
        for ff in circuit.dffs:
            if ff in forced:
                continue
            eval_value[ff] = FALSE
            emit(0, ff, FALSE)
        for cycle in range(stim.num_cycles):
            t = stim.cycle_time(cycle)
            if cycle > 0:
                # Cycle 0 is the reset cycle: a capture there would race
                # the power-up reset and latch X into feedback loops.
                for ff in circuit.dffs:
                    queue.push(Event(t, CAPTURE, ff, cycle, 0))
            for pi in circuit.primary_inputs:
                queue.push(Event(t, STIM, pi, cycle, stim.value(pi, cycle)))

        if self.tracer is not None:
            self.tracer.emit(
                "run_start",
                engine="sequential",
                circuit=circuit.name,
                cycles=stim.num_cycles,
            )
        gates = circuit.gates
        # Hot-loop tables: one indexed read per use instead of attribute
        # chains and per-call arity validation (the circuit is frozen —
        # arity was checked once at build time).
        evals = [eval_func(g.gate_type, len(g.fanin)) for g in gates]
        fanins = [g.fanin for g in gates]
        fanouts = [g.fanout for g in gates]
        delays = [g.delay for g in gates]
        sequential = [g.gate_type.is_sequential for g in gates]
        trace_record = self.trace.record if self.trace is not None else None
        queue_pop = queue.pop
        max_events = self.max_events
        # Per-gate committed-event tally for the trace timeline (every
        # sequential event is committed); None when tracing is off so
        # the hot loop pays a single identity check.
        commit_n = [0] * circuit.num_gates if self.tracer is not None else None
        while queue:
            event = queue_pop()
            events_processed += 1
            if commit_n is not None:
                commit_n[event.src] += 1
            if events_processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "runaway oscillation or workload too large"
                )
            src = event.src
            if forced and src in forced and event.prio != SIG:
                continue  # pinned gates ignore stimulus and clocks
            if event.prio == CAPTURE:
                data = value[fanins[src][0]]
                if data != eval_value[src]:
                    eval_value[src] = data
                    capture_log[(src, event.n)] = data
                    emit(event.time + delays[src], src, data)
                continue
            # STIM and SIG both apply an output change, then fan out.
            value[src] = event.value
            if trace_record is not None:
                trace_record(event.time, src, event.value)
            time_ = event.time
            for sink in fanouts[src]:
                if forced and sink in forced:
                    continue  # pinned gates never re-evaluate
                if sequential[sink]:
                    continue  # DFFs sample on CAPTURE, not on data edges
                nv = evals[sink]([value[d] for d in fanins[sink]])
                if nv != eval_value[sink]:
                    eval_value[sink] = nv
                    emit(time_ + delays[sink], sink, nv)

        if self.tracer is not None:
            # Committed-timeline records (one per active gate), same
            # shape the Time Warp engines emit at fossil collection, so
            # repro.obs.analyze reads all three engines identically.
            for gate_index, n in enumerate(commit_n):
                if n:
                    self.tracer.emit(
                        "commit",
                        node=0,
                        lp=gate_index,
                        n=n,
                        t_lo=0,
                        t_hi=None,
                        final=True,
                    )
            self.tracer.emit(
                "run_end",
                engine="sequential",
                events=events_processed,
                emissions=emissions,
            )
        return SequentialResult(
            circuit_name=circuit.name,
            num_cycles=stim.num_cycles,
            events_processed=events_processed,
            emissions=emissions,
            final_values=value,
            execution_time=self.cost_model.execution_time(events_processed),
            trace=self.trace,
            committed_captures=sorted(
                (gate, cycle, data)
                for (gate, cycle), data in capture_log.items()
            ),
        )
