"""Primary-input stimulus generation.

Both engines pull input vectors from a :class:`Stimulus` object keyed
by ``(gate, cycle)``, so the optimistic simulation applies bit-for-bit
the same workload as the sequential baseline regardless of execution
order. Vectors are pure functions of the seed — an LP can (re)compute
its stimulus after a rollback without coordination.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

from repro.circuit.gate import FALSE, TRUE
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.utils.rng import derive_rng


class Stimulus(abc.ABC):
    """Produces the value each primary input takes at each clock cycle."""

    def __init__(self, circuit: CircuitGraph, num_cycles: int, period: int = 10):
        if num_cycles < 1:
            raise SimulationError("need at least one stimulus cycle")
        if period < 2:
            raise SimulationError("clock period must be >= 2 time units")
        self.circuit = circuit
        self.num_cycles = num_cycles
        self.period = period

    @abc.abstractmethod
    def value(self, gate: int, cycle: int) -> int:
        """Value driven onto primary input *gate* during *cycle*."""

    def cycle_time(self, cycle: int) -> int:
        """Virtual time at which *cycle*'s stimulus (and capture) occurs."""
        return cycle * self.period


class RandomStimulus(Stimulus):
    """Random vectors with a configurable per-input toggle activity.

    Each input holds its previous value with probability ``1 -
    activity`` — realistic benches toggle a fraction of the inputs per
    cycle, which controls simulation workload. The value for ``(gate,
    cycle)`` is computed from a counter-mode RNG stream per gate, so
    lookups are random access (no sequential draw dependency).
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        num_cycles: int,
        *,
        period: int = 10,
        activity: float = 0.5,
        seed: int | None = None,
    ) -> None:
        super().__init__(circuit, num_cycles, period)
        if not 0.0 < activity <= 1.0:
            raise SimulationError("activity must be in (0, 1]")
        self.activity = activity
        self.seed = seed
        self._table: dict[int, Sequence[int]] = {}
        for pi in circuit.primary_inputs:
            rng = derive_rng(seed, "stimulus", circuit.name, pi)
            # The initial value is drawn FIRST so the stream is
            # prefix-stable: a longer run replays the shorter run's
            # vectors exactly and then continues (fault-coverage and
            # convergence studies rely on this monotonicity).
            current = FALSE if rng.random() < 0.5 else TRUE
            toggles = rng.random(num_cycles) < activity
            values = []
            for cycle in range(num_cycles):
                if toggles[cycle]:
                    current = TRUE - current
                values.append(current)
            self._table[pi] = values

    def value(self, gate: int, cycle: int) -> int:
        try:
            return self._table[gate][cycle]
        except (KeyError, IndexError):
            raise SimulationError(
                f"no stimulus for gate {gate} at cycle {cycle}"
            ) from None


class VectorStimulus(Stimulus):
    """Explicit test vectors: ``vectors[cycle][input-name] -> 0/1``.

    Inputs missing from a cycle's mapping hold their previous value
    (missing at cycle 0 defaults to 0).
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        vectors: Sequence[Mapping[str, int]],
        *,
        period: int = 10,
    ) -> None:
        super().__init__(circuit, len(vectors), period)
        self._table: dict[int, list[int]] = {}
        for pi in circuit.primary_inputs:
            name = circuit.gates[pi].name
            values: list[int] = []
            current = FALSE
            for cycle, mapping in enumerate(vectors):
                if name in mapping:
                    current = int(mapping[name])
                    if current not in (FALSE, TRUE):
                        raise SimulationError(
                            f"vector {cycle} drives {name!r} to {current}"
                        )
                values.append(current)
            self._table[pi] = values

    def value(self, gate: int, cycle: int) -> int:
        try:
            return self._table[gate][cycle]
        except (KeyError, IndexError):
            raise SimulationError(
                f"no stimulus for gate {gate} at cycle {cycle}"
            ) from None
