"""Waveform capture for selected gates."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.circuit.graph import CircuitGraph


class Trace:
    """Records ``(time, value)`` output changes for watched gates."""

    def __init__(self, circuit: CircuitGraph, watch: Iterable[int] | None = None):
        self.circuit = circuit
        #: Watched gate indices; ``None`` means watch everything.
        self.watch: set[int] | None = set(watch) if watch is not None else None
        self._changes: dict[int, list[tuple[int, int]]] = defaultdict(list)

    def record(self, time: int, gate: int, value: int) -> None:
        """Log an output change (call only for watched gates)."""
        if self.watch is None or gate in self.watch:
            self._changes[gate].append((time, value))

    def changes(self, gate: int) -> list[tuple[int, int]]:
        """All recorded ``(time, value)`` changes of *gate*."""
        return list(self._changes[gate])

    def value_at(self, gate: int, time: int, default: int | None = None) -> int:
        """Value of *gate* at *time* (last change at or before it)."""
        best = default
        for t, v in self._changes[gate]:
            if t <= time:
                best = v
            else:
                break
        if best is None:
            raise KeyError(f"gate {gate} has no recorded value at t={time}")
        return best

    def as_vcd_like(self) -> str:
        """Cheap textual dump (time-sorted change list per gate)."""
        lines = []
        for gate in sorted(self._changes):
            name = self.circuit.gates[gate].name
            changes = " ".join(f"{t}:{v}" for t, v in self._changes[gate])
            lines.append(f"{name}: {changes}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return sum(len(ch) for ch in self._changes.values())
