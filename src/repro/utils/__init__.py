"""Shared utilities: deterministic RNG plumbing and ASCII reporting."""

from repro.utils.rng import derive_rng, make_rng, spawn_seeds
from repro.utils.tables import ascii_plot, format_series, format_table

__all__ = [
    "ascii_plot",
    "derive_rng",
    "format_series",
    "format_table",
    "make_rng",
    "spawn_seeds",
]
