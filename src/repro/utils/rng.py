"""Deterministic random-number plumbing.

All stochastic choices in the library (random partitioner, initial
partition placement, greedy refinement visit order, stimulus vectors,
synthetic circuit generation) flow through :class:`numpy.random.Generator`
instances created here, so that every experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

#: Default seed used across the library when the caller does not supply one.
DEFAULT_SEED = 0x1597

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` maps to :data:`DEFAULT_SEED` (NOT entropy from the OS — the
    library must be deterministic by default). An existing generator is
    passed through unchanged so call sites can accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(seed: RngLike, *tokens: object) -> np.random.Generator:
    """Derive an independent generator from *seed* and a label path.

    Two call sites that pass different ``tokens`` obtain statistically
    independent streams even when they share the root seed; the same
    tokens always yield the same stream. This avoids the classic bug of
    sibling components consuming from (and perturbing) a shared stream.
    """
    if isinstance(seed, np.random.Generator):
        # Fold the generator into an integer root deterministically by
        # drawing once; the caller handed us ownership of the stream.
        root = int(seed.integers(0, 2**63))
    else:
        root = DEFAULT_SEED if seed is None else int(seed)
    material = [root & 0xFFFFFFFFFFFFFFFF]
    for token in tokens:
        material.append(_token_to_int(token))
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_seeds(seed: RngLike, count: int) -> list[int]:
    """Return *count* independent integer seeds derived from *seed*."""
    rng = make_rng(seed)
    return [int(x) for x in rng.integers(0, 2**62, size=count)]


def _token_to_int(token: object) -> int:
    """Map an arbitrary hashable label to a stable 64-bit integer."""
    if isinstance(token, (int, np.integer)):
        return int(token) & 0xFFFFFFFFFFFFFFFF
    data = str(token).encode("utf-8")
    # FNV-1a: stable across processes (unlike hash()), cheap, good mixing.
    acc = 0xCBF29CE484222325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class ReservoirSampler:
    """Uniform reservoir sampling over a stream of unknown length.

    Used by partitioners that must pick representatives from large
    traversal frontiers without materialising them.
    """

    def __init__(self, capacity: int, rng: RngLike = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = make_rng(rng)
        self._seen = 0
        self._items: list[object] = []

    def offer(self, item: object) -> None:
        """Consider *item* for inclusion in the reservoir."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            j = int(self._rng.integers(0, self._seen))
            if j < self.capacity:
                self._items[j] = item

    @property
    def sample(self) -> list[object]:
        """Current reservoir contents (at most ``capacity`` items)."""
        return list(self._items)

    @property
    def seen(self) -> int:
        """Number of items offered so far."""
        return self._seen
