"""ASCII rendering of tables, series and simple plots.

The benchmark harness regenerates each table/figure of the paper as text
(the environment has no display); these helpers keep the formatting in
one place so every artifact renders consistently.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table."""
    str_rows = [[_cell(value, float_fmt) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render plot data as a table: one column per x value, row per series.

    This is the textual equivalent of the paper's line/bar figures — the
    raw series the figure plots, which is what shape comparison needs.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
        rows.append([name] + [_cell(v, float_fmt) for v in values])
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Tiny ASCII line plot: one glyph per series, shared axes.

    Good enough to eyeball crossovers in a terminal; the exact values are
    always also emitted through :func:`format_series`.
    """
    if not series:
        return title or ""
    ys = [v for values in series.values() for v in values if v == v]
    if not ys:
        return title or ""
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    glyphs = "*o+x#@%&"
    legend = []
    for gi, (name, values) in enumerate(series.items()):
        glyph = glyphs[gi % len(glyphs)]
        legend.append(f"  {glyph} {name}")
        for x, y in zip(x_values, values):
            if y != y:  # NaN: missing point
                continue
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>12.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{y_min:>12.4g} +" + "-" * width)
    lines.append(" " * 14 + f"{x_min:<10.4g}{' ' * max(0, width - 20)}{x_max:>10.4g}")
    lines.extend(legend)
    return "\n".join(lines)


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:
            return "-"
        return float_fmt.format(value)
    return str(value)
