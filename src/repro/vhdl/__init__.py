"""A structural-VHDL analyzer — the SAVANT substrate, in miniature.

The paper's toolchain analyzes VHDL with ``scram`` into the AIRE
intermediate representation, generates code against the TYVIS kernel,
and partitions at runtime after elaboration. This subpackage mirrors
that flow for the structural netlist subset the study needs:

- :mod:`~repro.vhdl.lexer` / :mod:`~repro.vhdl.parser` — analyze
  entity/architecture pairs with component instantiations;
- :mod:`~repro.vhdl.ir` — an AIRE-like IIR (design file, entity,
  architecture, instantiation nodes);
- :mod:`~repro.vhdl.elaborate` — runtime elaboration of the IIR into a
  :class:`~repro.circuit.CircuitGraph` against the gate-primitive
  library;
- :mod:`~repro.vhdl.codegen` — emits an executable Python module (the
  moral equivalent of scram's C++ code generation);
- :mod:`~repro.vhdl.writer` — renders any circuit back to structural
  VHDL, closing the loop for tests and examples.
"""

from repro.vhdl.lexer import tokenize
from repro.vhdl.parser import parse_vhdl
from repro.vhdl.ir import (
    IIRArchitectureBody,
    IIRComponentInstantiation,
    IIRDesignFile,
    IIREntityDeclaration,
    IIRPortDeclaration,
    IIRSignalDeclaration,
)
from repro.vhdl.elaborate import PRIMITIVES, elaborate
from repro.vhdl.codegen import generate_python
from repro.vhdl.writer import write_vhdl

__all__ = [
    "IIRArchitectureBody",
    "IIRComponentInstantiation",
    "IIRDesignFile",
    "IIREntityDeclaration",
    "IIRPortDeclaration",
    "IIRSignalDeclaration",
    "PRIMITIVES",
    "elaborate",
    "generate_python",
    "parse_vhdl",
    "tokenize",
    "write_vhdl",
]
