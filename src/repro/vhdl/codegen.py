"""Code generation: IIR -> executable Python module source.

SAVANT's ``scram`` generates C++ against the TYVIS kernel; the moral
equivalent here is a self-contained Python module that rebuilds the
elaborated circuit (``build()``) and runs it (``simulate()``), so a
design can be "compiled" once and simulated without re-analysis.
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.vhdl.elaborate import elaborate
from repro.vhdl.ir import IIRDesignFile

_HEADER = '''"""Generated simulation model — do not edit.

Produced by repro.vhdl.codegen from entity {top!r}.
"""

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.sim import RandomStimulus, SequentialSimulator


def build() -> CircuitGraph:
    """Rebuild the elaborated circuit graph."""
    c = CircuitGraph({top!r})
'''

_FOOTER = '''    c.freeze()
    return c


def simulate(num_cycles: int = 50, seed: int = 0, **kwargs):
    """Run the generated model on random stimulus."""
    circuit = build()
    stimulus = RandomStimulus(circuit, num_cycles=num_cycles, seed=seed, **kwargs)
    return SequentialSimulator(circuit, stimulus).run()


if __name__ == "__main__":
    result = simulate()
    print(
        f"{{result.circuit_name}}: {{result.events_processed}} events, "
        f"modelled time {{result.execution_time:.2f}}s"
    )
'''


def generate_python(design: IIRDesignFile, top: str | None = None) -> str:
    """Generate Python source that rebuilds and simulates *top*."""
    circuit = elaborate(design, top)
    out = [_HEADER.format(top=circuit.name)]
    for gate in circuit.gates:
        args = f"{gate.name!r}, GateType.{gate.gate_type.name}"
        if gate.delay != 1:
            args += f", delay={gate.delay}"
        if gate.is_output:
            args += ", is_output=True"
        out.append(f"    c.add_gate({args})\n")
    for u, v in circuit.edges():
        out.append(f"    c.connect({u}, {v})\n")
    out.append(_FOOTER)
    return "".join(out)
