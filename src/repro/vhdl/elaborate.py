"""Runtime elaboration: IIR -> CircuitGraph.

Mirrors the paper's runtime-elaboration design: the netlist is
instantiated into simulation objects *after* analysis, and partitioning
then operates on the elaborated graph (Section 4).

Component instances bind to a primitive gate library by name
(``nand2``, ``xor3``, ``inv``, ``dff``, ...). Primitive ports follow
the convention inputs ``a, b, c, ...`` / output ``y`` (``d``/``q`` for
flip-flops); a component declaration, when present, is checked against
the primitive's shape.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import ElaborationError
from repro.vhdl.ir import (
    IIRArchitectureBody,
    IIRComponentInstantiation,
    IIRDesignFile,
)

_INPUT_NAMES = "abcefghjklm"  # skips d (DFF data), i (easily confused), etc.


def input_port_names(arity: int) -> list[str]:
    """Canonical input port names for an *arity*-input primitive.

    Single letters up to the alphabet budget, then ``in11, in12, ...``
    for very wide gates (dangler absorption can make gates wide).
    """
    names = list(_INPUT_NAMES[:arity])
    for i in range(len(names), arity):
        names.append(f"in{i}")
    return names


@dataclass(frozen=True)
class Primitive:
    """One library cell: gate type + input arity + port names."""

    name: str
    gate_type: GateType
    arity: int

    @property
    def input_ports(self) -> list[str]:
        if self.gate_type is GateType.DFF:
            return ["d"]
        return input_port_names(self.arity)

    @property
    def output_port(self) -> str:
        return "q" if self.gate_type is GateType.DFF else "y"


def _build_primitives() -> dict[str, Primitive]:
    prims: dict[str, Primitive] = {}
    for base, gate_type in (
        ("and", GateType.AND),
        ("nand", GateType.NAND),
        ("or", GateType.OR),
        ("nor", GateType.NOR),
        ("xor", GateType.XOR),
        ("xnor", GateType.XNOR),
    ):
        for arity in range(2, 10):
            prims[f"{base}{arity}"] = Primitive(f"{base}{arity}", gate_type, arity)
    prims["inv"] = Primitive("inv", GateType.NOT, 1)
    prims["not1"] = Primitive("not1", GateType.NOT, 1)
    prims["buf"] = Primitive("buf", GateType.BUF, 1)
    prims["buf1"] = Primitive("buf1", GateType.BUF, 1)
    prims["dff"] = Primitive("dff", GateType.DFF, 1)
    return prims


#: The primitive gate library instances bind against.
PRIMITIVES: dict[str, Primitive] = _build_primitives()

_WIDE_RE = re.compile(r"^(and|nand|or|nor|xor|xnor)(\d+)$")


def lookup_primitive(name: str) -> Primitive:
    """Resolve *name* in the library (wide gates resolved on demand)."""
    if name in PRIMITIVES:
        return PRIMITIVES[name]
    match = _WIDE_RE.match(name)
    if match:
        base, arity = match.group(1), int(match.group(2))
        if arity >= 2:
            return Primitive(name, GateType[base.upper()], arity)
    raise ElaborationError(f"unknown primitive component {name!r}")


def _resolve_port_map(
    inst: IIRComponentInstantiation,
    formals: list[str],
    env: dict[str, str],
    what: str,
) -> dict[str, str]:
    """Bind *inst*'s associations to *formals*, resolving actuals via *env*."""
    port_map: dict[str, str] = {}
    positional = 0
    for assoc in inst.associations:
        if assoc.formal is None:
            if positional >= len(formals):
                raise ElaborationError(
                    f"{inst.label}: too many positional associations"
                )
            formal = formals[positional]
            positional += 1
        else:
            formal = assoc.formal
            if formal not in formals:
                raise ElaborationError(
                    f"{inst.label}: {what} has no port {formal!r}"
                )
        if formal in port_map:
            raise ElaborationError(
                f"{inst.label}: port {formal!r} associated twice"
            )
        if assoc.actual not in env:
            raise ElaborationError(
                f"{inst.label}: unknown signal {assoc.actual!r}"
            )
        port_map[formal] = env[assoc.actual]
    missing = [f for f in formals if f not in port_map]
    if missing:
        raise ElaborationError(f"{inst.label}: unconnected ports {missing}")
    return port_map


def _flatten(
    design: IIRDesignFile,
    entity_name: str,
    prefix: str,
    bindings: dict[str, str],
    out: list[tuple[str, Primitive, dict[str, str]]],
    stack: tuple[str, ...],
) -> None:
    """Recursively expand *entity_name* into primitive instantiations.

    *bindings* maps the entity's port names to global signal names;
    internal signals get ``prefix``-qualified global names. Hierarchy is
    flattened structurally — exactly what elaboration means for a
    netlist subset.
    """
    if entity_name in stack:
        cycle = " -> ".join([*stack, entity_name])
        raise ElaborationError(f"recursive instantiation: {cycle}")
    entity = design.entities[entity_name]
    arch = design.architecture_of(entity_name)
    if arch is None:
        raise ElaborationError(f"entity {entity_name!r} has no architecture")

    env: dict[str, str] = {}
    for port in entity.ports:
        env[port.name] = bindings[port.name]
    for sig in arch.signals:
        if sig.name in env:
            raise ElaborationError(
                f"signal {sig.name!r} redeclares a port of {entity_name!r}"
            )
        env[sig.name] = f"{prefix}{sig.name}"

    declared_components = {c.name: c for c in arch.components}
    for inst in arch.instantiations:
        # A user entity shadows a same-named primitive.
        child = design.entities.get(inst.component_name)
        if child is not None:
            formals = [p.name for p in child.ports]
            port_map = _resolve_port_map(
                inst, formals, env, f"entity {child.name!r}"
            )
            _flatten(
                design,
                child.name,
                f"{prefix}{inst.label}/",
                port_map,
                out,
                (*stack, entity_name),
            )
            continue
        prim = lookup_primitive(inst.component_name)
        decl = declared_components.get(inst.component_name)
        if decl is not None:
            decl_inputs = [p.name for p in decl.ports if p.mode == "in"]
            decl_outputs = [p.name for p in decl.ports if p.mode == "out"]
            if (
                sorted(decl_inputs) != sorted(prim.input_ports)
                or decl_outputs != [prim.output_port]
            ):
                raise ElaborationError(
                    f"component {inst.component_name!r} declaration does not "
                    f"match the primitive library shape"
                )
        formals = prim.input_ports + [prim.output_port]
        port_map = _resolve_port_map(
            inst, formals, env, f"component {prim.name!r}"
        )
        out.append((f"{prefix}{inst.label}", prim, port_map))


def elaborate(
    design: IIRDesignFile,
    top: str | None = None,
    *,
    name: str | None = None,
) -> CircuitGraph:
    """Elaborate entity *top* (default: the last entity analyzed).

    Hierarchy is supported: an instantiation whose component name
    matches an analyzed entity is recursively flattened (internal
    signals become ``label/signal`` global names); anything else binds
    to the primitive gate library.
    """
    if not design.entities:
        raise ElaborationError("design file contains no entities")
    if top is None:
        top = next(reversed(design.entities))
    entity = design.entities.get(top)
    if entity is None:
        raise ElaborationError(
            f"no entity {top!r}; analyzed: {sorted(design.entities)}"
        )

    resolved: list[tuple[str, Primitive, dict[str, str]]] = []
    _flatten(
        design, top, "", {p.name: p.name for p in entity.ports}, resolved, ()
    )

    circuit = CircuitGraph(name or top)
    driver_of: dict[str, str] = {}
    for label, prim, port_map in resolved:
        out_signal = port_map[prim.output_port]
        if out_signal in driver_of:
            raise ElaborationError(
                f"signal {out_signal!r} driven by both "
                f"{driver_of[out_signal]!r} and {label!r}"
            )
        driver_of[out_signal] = label

    for port in entity.input_ports:
        if port.name in driver_of:
            raise ElaborationError(
                f"input port {port.name!r} is driven inside the architecture"
            )
        circuit.add_gate(port.name, GateType.INPUT)
    for label, prim, port_map in resolved:
        circuit.add_gate(port_map[prim.output_port], prim.gate_type)
    for label, prim, port_map in resolved:
        sink = circuit.index_of(port_map[prim.output_port])
        for formal in prim.input_ports:
            actual = port_map[formal]
            if actual not in circuit:
                raise ElaborationError(
                    f"{label}: signal {actual!r} has no driver"
                )
            circuit.connect(circuit.index_of(actual), sink)
    for port in entity.output_ports:
        if port.name not in circuit:
            raise ElaborationError(
                f"output port {port.name!r} is never driven"
            )
        circuit.mark_output(circuit.index_of(port.name))
    return circuit.freeze()
