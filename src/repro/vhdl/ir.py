"""AIRE-like intermediate representation (IIR) nodes.

Class names follow the Advanced Intermediate Representation with
Extensibility naming (reference [22] of the paper): every node is an
``IIR*`` class. Only what structural netlists need is modelled; the
dataclasses are deliberately dumb containers — semantic checks live in
the elaborator, mirroring SAVANT's split between the analyzer and the
code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IIRPortDeclaration:
    """One port of an entity or component: ``name : in std_logic``."""

    name: str
    mode: str  # "in" | "out"
    type_name: str = "std_logic"


@dataclass(frozen=True)
class IIREntityDeclaration:
    """``entity <name> is port (...); end``."""

    name: str
    ports: tuple[IIRPortDeclaration, ...]

    def port(self, name: str) -> IIRPortDeclaration | None:
        """The port called *name*, or ``None``."""
        for p in self.ports:
            if p.name == name:
                return p
        return None

    @property
    def input_ports(self) -> list[IIRPortDeclaration]:
        return [p for p in self.ports if p.mode == "in"]

    @property
    def output_ports(self) -> list[IIRPortDeclaration]:
        return [p for p in self.ports if p.mode == "out"]


@dataclass(frozen=True)
class IIRComponentDeclaration:
    """A component declared in an architecture's declarative region."""

    name: str
    ports: tuple[IIRPortDeclaration, ...]


@dataclass(frozen=True)
class IIRSignalDeclaration:
    """``signal a, b : std_logic;`` — one node per signal name."""

    name: str
    type_name: str = "std_logic"


@dataclass(frozen=True)
class IIRAssociation:
    """One element of a port map: formal (may be None if positional)."""

    formal: str | None
    actual: str


@dataclass(frozen=True)
class IIRComponentInstantiation:
    """``label : comp port map (...)``."""

    label: str
    component_name: str
    associations: tuple[IIRAssociation, ...]


@dataclass(frozen=True)
class IIRArchitectureBody:
    """``architecture <name> of <entity> is ... begin ... end``."""

    name: str
    entity_name: str
    components: tuple[IIRComponentDeclaration, ...]
    signals: tuple[IIRSignalDeclaration, ...]
    instantiations: tuple[IIRComponentInstantiation, ...]


@dataclass
class IIRDesignFile:
    """Top container: everything one analysis run produced."""

    entities: dict[str, IIREntityDeclaration] = field(default_factory=dict)
    architectures: list[IIRArchitectureBody] = field(default_factory=list)

    def architecture_of(self, entity_name: str) -> IIRArchitectureBody | None:
        """Last architecture bound to *entity_name* (VHDL default binding)."""
        found = None
        for arch in self.architectures:
            if arch.entity_name == entity_name:
                found = arch
        return found
