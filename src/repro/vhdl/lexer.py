"""Tokenizer for the structural VHDL subset.

Handles identifiers (case-insensitive, normalised to lower case),
extended identifiers (``\\Gate[3]\\``), the punctuation the netlist
grammar needs, ``--`` comments, and integer literals (for generic maps
in future extensions). Positions are tracked for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import VHDLLexError

KEYWORDS = frozenset(
    """
    architecture begin component end entity is library of port map signal
    use in out inout downto to generic others all
    """.split()
)


class TokenKind(Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    INTEGER = "INTEGER"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    ARROW = "=>"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True iff this token is the keyword *word*."""
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; always ends with an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str) -> VHDLLexError:
        return VHDLLexError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "\\":  # extended identifier
            end = source.find("\\", i + 1)
            if end == -1 or "\n" in source[i:end]:
                raise error("unterminated extended identifier")
            text = source[i : end + 1]
            tokens.append(Token(TokenKind.IDENT, text, line, col))
            col += end + 1 - i
            i = end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i].lower()
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token(TokenKind.INTEGER, source[start:i], line, col))
            col += i - start
            continue
        if source.startswith("=>", i):
            tokens.append(Token(TokenKind.ARROW, "=>", line, col))
            i += 2
            col += 2
            continue
        if ch == ":":
            tokens.append(Token(TokenKind.COLON, ":", line, col))
            i += 1
            col += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
