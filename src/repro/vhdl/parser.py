"""Recursive-descent parser for the structural VHDL subset.

Grammar (netlist subset):

.. code-block:: text

    design_file   := { library_clause | use_clause | entity | architecture }
    entity        := ENTITY ident IS [port_clause] END [ENTITY] [ident] ';'
    port_clause   := PORT '(' port_decl { ';' port_decl } ')' ';'
    port_decl     := ident {',' ident} ':' (IN|OUT|INOUT) ident
    architecture  := ARCHITECTURE ident OF ident IS {component|signal}
                     BEGIN {instantiation} END [ARCHITECTURE] [ident] ';'
    component     := COMPONENT ident [IS] [port_clause] END COMPONENT [ident] ';'
    signal        := SIGNAL ident {',' ident} ':' ident ';'
    instantiation := ident ':' ident PORT MAP '(' assoc {',' assoc} ')' ';'
    assoc         := [ident '=>'] ident

Library/use clauses are accepted and ignored (std_logic is built in).
"""

from __future__ import annotations

from repro.errors import VHDLParseError
from repro.vhdl.ir import (
    IIRArchitectureBody,
    IIRAssociation,
    IIRComponentDeclaration,
    IIRComponentInstantiation,
    IIRDesignFile,
    IIREntityDeclaration,
    IIRPortDeclaration,
    IIRSignalDeclaration,
)
from repro.vhdl.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- primitives ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> VHDLParseError:
        return VHDLParseError(
            f"{message} (found {self.current.text!r})", self.current.line
        )

    def expect(self, kind: TokenKind) -> Token:
        if self.current.kind is not kind:
            raise self.error(f"expected {kind.value}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.advance().text

    # -- grammar ---------------------------------------------------------
    def design_file(self) -> IIRDesignFile:
        design = IIRDesignFile()
        while self.current.kind is not TokenKind.EOF:
            if self.accept_keyword("library"):
                self.expect_ident()
                self.expect(TokenKind.SEMI)
            elif self.accept_keyword("use"):
                # use ieee.std_logic_1164.all;
                self.expect_ident()
                while self.current.kind is TokenKind.DOT:
                    self.advance()
                    if not (
                        self.current.kind is TokenKind.IDENT
                        or self.current.is_keyword("all")
                    ):
                        raise self.error("expected name after '.'")
                    self.advance()
                self.expect(TokenKind.SEMI)
            elif self.current.is_keyword("entity"):
                entity = self.entity()
                if entity.name in design.entities:
                    raise VHDLParseError(
                        f"entity {entity.name!r} defined twice"
                    )
                design.entities[entity.name] = entity
            elif self.current.is_keyword("architecture"):
                design.architectures.append(self.architecture())
            else:
                raise self.error("expected entity, architecture, library or use")
        for arch in design.architectures:
            if arch.entity_name not in design.entities:
                raise VHDLParseError(
                    f"architecture {arch.name!r} refers to unknown entity "
                    f"{arch.entity_name!r}"
                )
        return design

    def entity(self) -> IIREntityDeclaration:
        self.expect_keyword("entity")
        name = self.expect_ident()
        self.expect_keyword("is")
        ports: tuple[IIRPortDeclaration, ...] = ()
        if self.current.is_keyword("port"):
            ports = self.port_clause()
        self.expect_keyword("end")
        self.accept_keyword("entity")
        if self.current.kind is TokenKind.IDENT:
            closing = self.expect_ident()
            if closing != name:
                raise VHDLParseError(
                    f"entity {name!r} closed as {closing!r}"
                )
        self.expect(TokenKind.SEMI)
        return IIREntityDeclaration(name, ports)

    def port_clause(self) -> tuple[IIRPortDeclaration, ...]:
        self.expect_keyword("port")
        self.expect(TokenKind.LPAREN)
        ports: list[IIRPortDeclaration] = []
        while True:
            names = [self.expect_ident()]
            while self.current.kind is TokenKind.COMMA:
                self.advance()
                names.append(self.expect_ident())
            self.expect(TokenKind.COLON)
            mode_token = self.current
            if mode_token.is_keyword("in") or mode_token.is_keyword("out"):
                mode = self.advance().text
            elif mode_token.is_keyword("inout"):
                raise self.error("inout ports are not supported by the subset")
            else:
                mode = "in"  # VHDL default mode
            type_name = self.expect_ident()
            for port_name in names:
                ports.append(IIRPortDeclaration(port_name, mode, type_name))
            if self.current.kind is TokenKind.SEMI:
                self.advance()
                continue
            break
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.SEMI)
        return tuple(ports)

    def architecture(self) -> IIRArchitectureBody:
        self.expect_keyword("architecture")
        name = self.expect_ident()
        self.expect_keyword("of")
        entity_name = self.expect_ident()
        self.expect_keyword("is")
        components: list[IIRComponentDeclaration] = []
        signals: list[IIRSignalDeclaration] = []
        while not self.current.is_keyword("begin"):
            if self.current.is_keyword("component"):
                components.append(self.component())
            elif self.current.is_keyword("signal"):
                signals.extend(self.signal_decl())
            else:
                raise self.error("expected component, signal or begin")
        self.expect_keyword("begin")
        instantiations: list[IIRComponentInstantiation] = []
        while not self.current.is_keyword("end"):
            instantiations.append(self.instantiation())
        self.expect_keyword("end")
        self.accept_keyword("architecture")
        if self.current.kind is TokenKind.IDENT:
            self.expect_ident()
        self.expect(TokenKind.SEMI)
        return IIRArchitectureBody(
            name,
            entity_name,
            tuple(components),
            tuple(signals),
            tuple(instantiations),
        )

    def component(self) -> IIRComponentDeclaration:
        self.expect_keyword("component")
        name = self.expect_ident()
        self.accept_keyword("is")
        ports: tuple[IIRPortDeclaration, ...] = ()
        if self.current.is_keyword("port"):
            ports = self.port_clause()
        self.expect_keyword("end")
        self.expect_keyword("component")
        if self.current.kind is TokenKind.IDENT:
            self.expect_ident()
        self.expect(TokenKind.SEMI)
        return IIRComponentDeclaration(name, ports)

    def signal_decl(self) -> list[IIRSignalDeclaration]:
        self.expect_keyword("signal")
        names = [self.expect_ident()]
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            names.append(self.expect_ident())
        self.expect(TokenKind.COLON)
        type_name = self.expect_ident()
        self.expect(TokenKind.SEMI)
        return [IIRSignalDeclaration(name, type_name) for name in names]

    def instantiation(self) -> IIRComponentInstantiation:
        label = self.expect_ident()
        self.expect(TokenKind.COLON)
        component_name = self.expect_ident()
        self.expect_keyword("port")
        self.expect_keyword("map")
        self.expect(TokenKind.LPAREN)
        associations: list[IIRAssociation] = []
        positional_seen = False
        named_seen = False
        while True:
            first = self.expect_ident()
            if self.current.kind is TokenKind.ARROW:
                self.advance()
                actual = self.expect_ident()
                associations.append(IIRAssociation(first, actual))
                named_seen = True
            else:
                if named_seen:
                    raise self.error(
                        "positional association after named association"
                    )
                associations.append(IIRAssociation(None, first))
                positional_seen = True
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        del positional_seen
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.SEMI)
        return IIRComponentInstantiation(
            label, component_name, tuple(associations)
        )


def parse_vhdl(source: str) -> IIRDesignFile:
    """Analyze *source* into an :class:`IIRDesignFile`."""
    return _Parser(tokenize(source)).design_file()
