"""Render a CircuitGraph as structural VHDL.

Closes the toolchain loop: generated circuits (or parsed ``.bench``
netlists) can be emitted as VHDL, re-analyzed by the parser and
re-elaborated — the round trip is property-tested.
"""

from __future__ import annotations

from repro.circuit.gate import GateType
from repro.circuit.graph import CircuitGraph
from repro.errors import VHDLError
from repro.vhdl.elaborate import input_port_names

_PRIM_BASE = {
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
}

def _primitive_for(gate) -> tuple[str, list[str]]:
    """(component name, ordered formal ports) for *gate*."""
    gt = gate.gate_type
    if gt in _PRIM_BASE:
        arity = len(gate.fanin)
        return f"{_PRIM_BASE[gt]}{arity}", input_port_names(arity) + ["y"]
    if gt is GateType.NOT:
        return "inv", ["a", "y"]
    if gt is GateType.BUF:
        return "buf", ["a", "y"]
    if gt is GateType.DFF:
        return "dff", ["d", "q"]
    raise VHDLError(f"gate type {gt} has no VHDL primitive")


def _sanitize(name: str) -> str:
    """Make *name* a legal VHDL basic identifier (or extend it)."""
    if name and name[0].isalpha() and all(c.isalnum() or c == "_" for c in name):
        return name.lower()
    return "\\" + name + "\\"


def write_vhdl(circuit: CircuitGraph, *, architecture: str = "structural") -> str:
    """Serialise *circuit* as an entity/architecture pair."""
    if not circuit.frozen:
        raise VHDLError("freeze() the circuit before writing VHDL")
    entity = _sanitize(circuit.name)
    lines = [
        f"-- generated from circuit {circuit.name!r}",
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity} is",
    ]
    port_lines = []
    for idx in circuit.primary_inputs:
        port_lines.append(f"    {_sanitize(circuit.gates[idx].name)} : in std_logic")
    for idx in circuit.primary_outputs:
        port_lines.append(f"    {_sanitize(circuit.gates[idx].name)} : out std_logic")
    lines.append("  port (")
    lines.append(";\n".join(port_lines))
    lines.append("  );")
    lines.append(f"end entity {entity};")
    lines.append("")
    lines.append(f"architecture {architecture} of {entity} is")

    # Component declarations for every primitive used.
    used: dict[str, list[str]] = {}
    for gate in circuit.gates:
        if gate.gate_type is GateType.INPUT:
            continue
        comp, formals = _primitive_for(gate)
        used.setdefault(comp, formals)
    for comp in sorted(used):
        formals = used[comp]
        inputs = ", ".join(formals[:-1])
        lines.append(f"  component {comp} is")
        lines.append(
            f"    port ({inputs} : in std_logic; {formals[-1]} : out std_logic);"
        )
        lines.append("  end component;")

    # Internal signals: every driven signal that is not an output port.
    port_names = {
        circuit.gates[i].name
        for i in circuit.primary_inputs + circuit.primary_outputs
    }
    internal = [
        _sanitize(g.name)
        for g in circuit.gates
        if g.gate_type is not GateType.INPUT and g.name not in port_names
    ]
    for chunk_start in range(0, len(internal), 8):
        chunk = internal[chunk_start : chunk_start + 8]
        lines.append(f"  signal {', '.join(chunk)} : std_logic;")

    lines.append("begin")
    for seq, gate in enumerate(circuit.gates):
        if gate.gate_type is GateType.INPUT:
            continue
        comp, formals = _primitive_for(gate)
        actuals = [_sanitize(circuit.gates[d].name) for d in gate.fanin]
        actuals.append(_sanitize(gate.name))
        assoc = ", ".join(
            f"{formal} => {actual}" for formal, actual in zip(formals, actuals)
        )
        lines.append(f"  u{seq} : {comp} port map ({assoc});")
    lines.append(f"end architecture {architecture};")
    return "\n".join(lines) + "\n"
