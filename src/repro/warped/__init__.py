"""A Time Warp (optimistic) parallel simulation kernel — WARPED in Python.

The kernel implements classical Time Warp (Jefferson's virtual time
[10]) exactly as the paper's WARPED substrate does: each gate is a
logical process (LP) with incremental state saving; LPs are grouped
into clusters, one per node of the machine; stragglers roll the LP back
and cancel its undone sends with anti-messages (aggressive
cancellation); a periodic GVT computation fossil-collects history.

Because this repository cannot run on the paper's testbed (8 dual
Pentium II workstations on fast ethernet), the kernel executes over a
:class:`~repro.warped.machine.VirtualMachine` — a deterministic
discrete-event model of that cluster that charges per-event CPU time
and per-message network latency. All observable quantities of the
paper's evaluation (execution time, application message count,
rollback count) are produced by the same Time Warp algorithm the paper
ran; only the clock underneath is modelled. See DESIGN.md §3.
"""

from repro.warped.messages import Message
from repro.warped.network import FastEthernet, NetworkModel, UniformNetwork
from repro.warped.machine import TimeWarpCostModel, VirtualMachine
from repro.warped.stats import (
    NodeStats,
    TimeWarpResult,
    render_utilization_timeline,
)
from repro.warped.kernel import TimeWarpSimulator
from repro.warped.parallel import ProcessTimeWarpSimulator

__all__ = [
    "FastEthernet",
    "Message",
    "NetworkModel",
    "NodeStats",
    "ProcessTimeWarpSimulator",
    "TimeWarpCostModel",
    "TimeWarpResult",
    "TimeWarpSimulator",
    "UniformNetwork",
    "VirtualMachine",
    "render_utilization_timeline",
]
