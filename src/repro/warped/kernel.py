"""The Time Warp executive over the virtual cluster.

One instance simulates the parallel machine deterministically: each
node (cluster of LPs) has its own wall clock and pending-event queue;
the executive repeatedly performs whichever happens first in modelled
wall time — a network delivery or one event processed on the
least-advanced busy node. Optimism is real: a node happily processes
ahead of its peers, and remote messages landing in its past trigger
rollback with aggressive cancellation, exactly the WARPED protocol.

Cancellation is *eager at insertion*: a straggler or anti-message rolls
its LP back the moment it reaches the node, and cascades (undone sends
annihilating downstream work) are drained iteratively — chains through
deep circuits would blow the recursion limit otherwise.

Hot-path bookkeeping is incremental (PR 3): node queues cache their
head key, the global history size (and its peak, the true memory
high-water mark) is maintained per process/undo instead of summed per
GVT round, fossil collection only visits LPs that actually hold
history, and the load-balancer's activity decay is applied lazily on
read. The differential suite (``tests/test_seed_equivalence.py``) pins
all of it to the pre-optimization kernel's observable behavior.
"""

from __future__ import annotations

import gc
import heapq
import time
from bisect import insort as bisect_insort
from collections import deque
from itertools import count

from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.partition.assignment import PartitionAssignment
from repro.sim.event import CAPTURE, SIG, STIM
from repro.sim.stimulus import Stimulus
from repro.warped.gvt import GVT_END, compute_gvt
from repro.warped.lp import LogicalProcess, ProcessedRecord, gate_statics
from repro.warped.machine import VirtualMachine
from repro.warped.messages import ANTI, Message
from repro.warped.network import UniformNetwork
from repro.warped.queues import NodeQueue
from repro.warped.stats import NodeStats, TimeWarpResult
from repro.circuit.gate import FALSE


class TimeWarpSimulator:
    """Run one circuit under one partition on one virtual machine."""

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        trace_hook=None,
        tracer=None,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        #: Optional callable receiving (op, *details) tuples for every
        #: kernel action — used by protocol tests and debugging.
        self.trace_hook = trace_hook
        #: Optional :class:`repro.obs.tracer.TraceWriter` — structured
        #: rollback / GVT-round / node-summary records.  Orthogonal to
        #: ``trace_hook`` (that one sees raw kernel ops).
        self.tracer = tracer

    # ------------------------------------------------------------------
    def run(self) -> TimeWarpResult:
        """Simulate to quiescence under Time Warp; returns all counters."""
        circuit = self.circuit
        machine = self.machine
        cost = machine.cost_model
        network = machine.network
        n_nodes = machine.num_nodes

        statics = gate_statics(circuit)
        lps = [
            LogicalProcess(
                gate,
                self.assignment[gate.index],
                checkpoint_interval=machine.checkpoint_interval,
                static=statics[gate.index],
            )
            for gate in circuit.gates
        ]
        checkpointing = machine.checkpoint_interval is not None
        ckpt_interval = machine.checkpoint_interval
        queues = [NodeQueue() for _ in range(n_nodes)]
        wall = [0.0] * n_nodes
        busy = [0.0] * n_nodes
        migration_threshold = machine.migration_threshold
        migrating = migration_threshold is not None
        # Dynamic load balancing bookkeeping: work done per node since
        # the previous GVT round, and a decaying per-LP activity score
        # used to pick which LPs to move. The decay (halving after every
        # migration) is lazy: each LP folds the epochs it missed into
        # its score the next time the score is touched, so a migration
        # costs O(1) instead of O(gates).
        busy_at_last_gvt = [0.0] * n_nodes
        lp_activity = [0.0] * circuit.num_gates
        lp_activity_epoch = [0] * circuit.num_gates
        decay_epoch = 0
        busy_at_last_sample = [0.0] * n_nodes
        utilization_timeline: list[tuple[float, list[float]]] = []
        node_stats = [NodeStats(node=i) for i in range(n_nodes)]
        for lp in lps:
            node_stats[lp.node].num_lps += 1
        # Hot per-node tallies, folded into node_stats at the end.
        ns_events = [0] * n_nodes
        ns_local = [0] * n_nodes
        ns_remote = [0] * n_nodes
        # Attribution tallies (coasted replays, checkpoint snapshots,
        # migration transfer time): cheap integers/floats maintained off
        # the innermost path, turned into the per-node wall-time
        # breakdown of the node_summary trace record.
        ns_coast = [0] * n_nodes
        ns_ckpt = [0] * n_nodes
        ns_migr = [0.0] * n_nodes

        in_flight: list[tuple[float, int, Message]] = []
        # Cached arrival time of the earliest in-flight message (INF when
        # none): the scheduler compares it against the processing
        # candidate once per event, so the heap head is not re-read.
        next_arrival = float("inf")
        waiting_antis: dict[int, Message] = {}
        pending_cancels: deque[Message] = deque()
        lazy = machine.cancellation == "lazy"
        # Lazy cancellation: per-LP FIFO of undone sends awaiting their
        # re-execution verdict (reuse if re-derived identically, cancel
        # on first divergence or when virtual time passes them by).
        lazy_buffers: dict[int, deque[Message]] = {}

        # Fresh message uids, minted at C speed (one closure frame per
        # uid was measurable at ~1.4 uid mints per event).
        next_uid = count(1).__next__

        flight_seq = 0
        trace = self.trace_hook
        tracer = self.tracer
        # Committed DFF captures: (gate, cycle) -> value captured.
        # Entries are removed when their record is rolled back, so at
        # quiescence the log is exactly the committed capture history
        # (the cross-backend differential invariant).
        capture_log: dict[tuple[int, int], int] = {}
        counters = {
            "events": 0,
            "rolled_back": 0,
            "rollbacks": 0,
            "app_messages": 0,
            "anti_messages": 0,
            "local_messages": 0,
            "gvt_rounds": 0,
            "lazy_reuses": 0,
            "peak_history": 0,
            "migrations": 0,
        }
        # Incrementally-maintained total/peak of in-history records
        # (sum of len(lp.processed) over all LPs). The peak is tracked
        # on every growth step, not sampled at GVT rounds, so it is the
        # true memory high-water mark even with a sparse gvt_interval.
        history_total = 0
        peak_history = 0
        # LPs currently holding history records (the only ones a
        # fossil-collection sweep needs to visit), mapped to the virtual
        # time of their OLDEST record — the sweep's skip test reads the
        # map instead of chasing lp.processed[0].msg.time attributes.
        oldest_times: dict[int, int] = {}

        # ------------------------------------------------------------
        # cancellation machinery (iterative, see module docstring)
        # ------------------------------------------------------------
        def dispatch_anti(em: Message, node: int, depart: float) -> int:
            """Cancel emission *em*; returns 1 if a remote anti was sent."""
            if lps[em.dest].node == node:
                pending_cancels.append(em)
                sent = 0
            else:
                anti = em.make_anti()
                nonlocal flight_seq, next_arrival
                flight_seq += 1
                arr = depart + network.latency(node, lps[em.dest].node)
                heapq.heappush(in_flight, (arr, flight_seq, anti))
                if arr < next_arrival:
                    next_arrival = arr
                sent = 1
                if trace:
                    trace("anti_sent", em.uid, node, lps[em.dest].node)
            if trace:
                trace("emission_cancelled", em.uid)
            return sent

        def flush_lazy(lp: LogicalProcess, now_wall: float, *, before: int | None = None) -> None:
            """Cancel buffered sends of *lp* (all, or those with time < before).

            Called when re-execution diverges from the undone history,
            when virtual time passes a buffered send (it can no longer
            be re-derived), or at quiescence.
            """
            buffer = lazy_buffers.get(lp.gate.index)
            if not buffer:
                return
            node = lp.node
            depart = max(wall[node], now_wall)
            remote = 0
            while buffer and (before is None or buffer[0].time < before):
                remote += dispatch_anti(buffer.popleft(), node, depart)
            if remote:
                counters["anti_messages"] += remote
                node_stats[node].anti_messages_sent += remote
                wall[node] = depart + cost.send_overhead * remote
                busy[node] += cost.send_overhead * remote

        reused_uids: set[int] = set()

        def _lazy_match(lp: LogicalProcess, record, now_wall: float) -> None:
            """Prefix-match fresh emissions against the lazy buffer.

            A fresh emission identical in (time, prio, dest, value) to
            the buffer head re-derives the undone send: the ORIGINAL
            message (still live at its destination) replaces the fresh
            copy in the history record, and nothing is transmitted. The
            first divergence refutes the rest of the buffer.
            """
            buffer = lazy_buffers.get(lp.gate.index)
            if not buffer:
                return
            new_emissions = []
            diverged = False
            for em in record.emissions:
                head = buffer[0] if buffer else None
                if (
                    not diverged
                    and head is not None
                    and head.time == em.time
                    and head.prio == em.prio
                    and head.dest == em.dest
                    and head.value == em.value
                ):
                    buffer.popleft()
                    new_emissions.append(head)
                    reused_uids.add(head.uid)
                    counters["lazy_reuses"] += 1
                    if trace:
                        trace("lazy_reuse", head.uid)
                else:
                    diverged = True
                    new_emissions.append(em)
            if diverged:
                flush_lazy(lp, now_wall)
            record.emissions[:] = new_emissions

        def rollback(
            lp: LogicalProcess,
            to_key,
            now_wall: float,
            cancel_uid: int | None,
            cause_msg: Message | None = None,
        ) -> None:
            nonlocal history_total
            node = lp.node
            stats = node_stats[node]
            remote_antis = 0
            # The rollback executes on this node's CPU: it cannot start
            # before work the node already performed. Anti-messages
            # depart at or after every send already made, preserving
            # per-channel FIFO with the positives they chase.
            depart = max(wall[node], now_wall)
            coasted = 0
            if checkpointing:
                # Snapshot restore + coast-forward; the records are
                # returned oldest-first.
                records, coasted = lp.rollback_to(to_key)
                undone_records = list(reversed(records))
            else:
                undone_records = []
                while lp.last_key >= to_key:
                    undone_records.append(lp.undo_last())
            undone = len(undone_records)
            history_total -= undone
            if not lp.processed:
                oldest_times.pop(lp.gate.index, None)
            for record in undone_records:
                if record.msg.prio == CAPTURE:
                    capture_log.pop((record.msg.dest, record.msg.n), None)
                if cancel_uid is not None and record.msg.uid == cancel_uid:
                    if trace:
                        trace("annihilate_processed", record.msg.uid)
                    continue  # the annihilated positive: not re-enqueued
                queues[node].push(record.msg)
                if trace:
                    trace("reenqueue", record.msg.uid)
            if lazy:
                # Older buffered sends are stale the moment a second
                # rollback reaches further back: cancel them, then hold
                # the newly undone sends (in forward emission order) for
                # the re-execution to confirm or refute.
                flush_lazy(lp, now_wall)
                buffer = lazy_buffers.setdefault(lp.gate.index, deque())
                for record in reversed(undone_records):
                    buffer.extend(record.emissions)
            else:
                for record in undone_records:
                    for em in record.emissions:
                        remote_antis += dispatch_anti(em, node, depart)
            counters["rollbacks"] += 1
            counters["rolled_back"] += undone
            counters["anti_messages"] += remote_antis
            stats.rollbacks += 1
            stats.events_rolled_back += undone
            stats.anti_messages_sent += remote_antis
            ns_coast[node] += coasted
            if tracer is not None:
                # Enriched forensics record: the triggering message
                # (straggler positive or anti), its sender, and every
                # send this rollback undid — the links repro.obs.causality
                # chains into cascades.
                tracer.emit(
                    "rollback",
                    node=node,
                    rid=counters["rollbacks"],
                    lp=lp.gate.index,
                    depth=undone,
                    t=int(to_key[0]),
                    cause_kind="anti" if cancel_uid is not None else "straggler",
                    cause_uid=None if cause_msg is None else cause_msg.uid,
                    cause_src=None if cause_msg is None else cause_msg.src,
                    cause_node=(
                        None if cause_msg is None else lps[cause_msg.src].node
                    ),
                    cause_t=None if cause_msg is None else cause_msg.time,
                    antis=[
                        em.uid
                        for record in undone_records
                        for em in record.emissions
                    ],
                )
            work = (
                cost.rollback_event_cost * undone
                + cost.coast_event_cost * coasted
                + cost.send_overhead * remote_antis
            )
            wall[node] = max(wall[node], now_wall) + work
            busy[node] += work

        def apply_cancel(em: Message, now_wall: float) -> None:
            """Annihilate the (node-local or delivered) positive copy *em*."""
            lp = lps[em.dest]
            queue = queues[lp.node]
            if queue.contains_uid(em.uid):
                queue.annihilate(em.uid)
                if trace:
                    trace("annihilate_pending", em.uid)
            elif em.uid in lp.processed_uids:
                if trace:
                    trace("cancel_rollback", em.uid, lp.gate.index)
                rollback(lp, em.key, now_wall, cancel_uid=em.uid, cause_msg=em)
            else:
                # Positive copy not yet arrived (it can still be in
                # flight even if the LP advanced past its key — the anti
                # took a shorter wall-clock path); annihilate on arrival.
                waiting_antis[em.uid] = em
                if trace:
                    trace("stash_anti", em.uid)

        def drain_cancels(now_wall: float) -> None:
            while pending_cancels:
                apply_cancel(pending_cancels.popleft(), now_wall)

        recv_overhead = cost.recv_overhead

        # ------------------------------------------------------------
        # initial schedule (mirrors the sequential kernel exactly)
        # ------------------------------------------------------------
        stim = self.stimulus
        for ff in circuit.dffs:
            for sink in lps[ff]._sink_list:
                queues[lps[sink].node].push(
                    Message(0, SIG, ff, 0, FALSE, sink, next_uid())
                )
        for cycle in range(stim.num_cycles):
            t = stim.cycle_time(cycle)
            if cycle > 0:
                # Cycle 0 is the reset cycle (see the sequential kernel).
                for ff in circuit.dffs:
                    queues[lps[ff].node].push(
                        Message(t, CAPTURE, ff, cycle, 0, ff, next_uid())
                    )
            for pi in circuit.primary_inputs:
                queues[lps[pi].node].push(
                    Message(t, STIM, pi, cycle, stim.value(pi, cycle), pi, next_uid())
                )

        # ------------------------------------------------------------
        # main virtual-machine loop
        # ------------------------------------------------------------
        gvt_interval = machine.gvt_interval
        since_gvt = 0
        event_cost = cost.event_cost
        if checkpointing:
            # Incremental state saving is folded into event_cost; with
            # periodic snapshots the per-event share is skipped and the
            # snapshot itself is charged when taken (the cost model
            # validates state_save_cost < event_cost).
            event_cost = cost.event_cost - cost.state_save_cost
        send_overhead = cost.send_overhead
        state_save_cost = cost.state_save_cost
        # Constant-latency networks (the default) skip the per-send
        # virtual dispatch: every cross-node hop costs uniform_delay.
        uniform_delay = (
            network.delay if type(network).latency is UniformNetwork.latency
            else None
        )
        window = machine.optimism_window
        gvt_now = 0.0  # current GVT estimate (for window throttling)
        horizon = None if window is None else gvt_now + window
        events = 0
        local_messages = 0
        app_messages = 0
        max_events = self.max_events

        def fold_activity(gate_index: int) -> float:
            """Apply pending lazy decay; returns the current score."""
            behind = decay_epoch - lp_activity_epoch[gate_index]
            if behind:
                lp_activity[gate_index] *= 0.5 ** behind
                lp_activity_epoch[gate_index] = decay_epoch
            return lp_activity[gate_index]

        def run_gvt_round() -> float:
            nonlocal history_total
            round_t0 = time.perf_counter()
            counters["gvt_rounds"] += 1
            if lazy:
                # Buffered undone sends strictly below the pending/
                # in-flight floor can never be re-derived (an LP only
                # emits at or after the time of the event it processes,
                # and no unprocessed event exists below the floor): they
                # are refuted — cancel them now. Without this, a
                # buffered send below every pending event would pin GVT
                # (and a bounded-optimism window) forever.
                floor = compute_gvt(queues, (m.time for _, _, m in in_flight))
                for index, buffer in lazy_buffers.items():
                    if buffer and buffer[0].time < floor:
                        lp_ = lps[index]
                        flush_lazy(
                            lp_,
                            wall[lp_.node],
                            before=None if floor == GVT_END else int(floor),
                        )
                drain_cancels(max(wall))
            # Remaining lazily-buffered sends are pending cancellation
            # obligations: they hold GVT back just like in-flight
            # messages, or fossil collection would free the very
            # positives their antis must eventually annihilate.
            outstanding = [m.time for _, _, m in in_flight]
            if lazy:
                outstanding.extend(
                    buffer[0].time for buffer in lazy_buffers.values() if buffer
                )
            gvt = compute_gvt(queues, outstanding)
            if gvt < GVT_END:
                floor_t = int(gvt)
                for index, oldest in list(oldest_times.items()):
                    # Fast path: an LP whose oldest record is at or
                    # above the floor has nothing to free.
                    if oldest >= floor_t:
                        continue
                    lp_ = lps[index]
                    if checkpointing:
                        # Snapshot bookkeeping: delegate to the method.
                        freed = lp_.fossil_collect(floor_t)
                        history_total -= freed
                    else:
                        # Incremental mode frees a plain prefix —
                        # inlined, single pass (this sweep touches every
                        # committed record once over a run).
                        processed_ = lp_.processed
                        uids_ = lp_.processed_uids
                        keep_from = 0
                        for record_ in processed_:
                            m_ = record_.msg
                            if m_.time >= floor_t:
                                break
                            uids_.discard(m_.uid)
                            keep_from += 1
                        del processed_[:keep_from]
                        history_total -= keep_from
                        freed = keep_from
                    if tracer is not None and freed:
                        # Fossil-collected records are committed: one
                        # timeline aggregate per LP per sweep, bounded
                        # by LPs (never by events).
                        tracer.emit(
                            "commit",
                            node=lp_.node,
                            lp=index,
                            n=freed,
                            t_lo=int(oldest),
                            t_hi=floor_t,
                        )
                    if lp_.processed:
                        oldest_times[index] = lp_.processed[0].msg.time
                    else:
                        del oldest_times[index]
            for node_ in range(n_nodes):
                wall[node_] += cost.gvt_cost
                busy[node_] += cost.gvt_cost
            utilization_timeline.append(
                (
                    max(wall),
                    [busy[i] - busy_at_last_sample[i] for i in range(n_nodes)],
                )
            )
            for i in range(n_nodes):
                busy_at_last_sample[i] = busy[i]
            if migrating and gvt < GVT_END:
                migrate_load(gvt)
            if tracer is not None:
                tracer.emit(
                    "gvt_round",
                    cid=counters["gvt_rounds"],
                    gvt=float(gvt),
                    final=gvt == GVT_END,
                    latency=time.perf_counter() - round_t0,
                    trips=1,
                )
            return gvt

        def migrate_load(gvt: float) -> None:
            """Move the hottest LPs from the busiest to the idlest node.

            Runs inside a GVT round: everything below GVT is committed,
            in-flight and anti-messages resolve their target node at
            delivery time, and the moved LP's pending events follow it —
            so migration is transparent to the Time Warp protocol.
            """
            nonlocal decay_epoch
            window = [busy[i] - busy_at_last_gvt[i] for i in range(n_nodes)]
            for i in range(n_nodes):
                busy_at_last_gvt[i] = busy[i]
            hot = max(range(n_nodes), key=lambda i: (window[i], -i))
            cold = min(range(n_nodes), key=lambda i: (window[i], i))
            if hot == cold:
                return
            # Two gates, both required. The absolute floor first: when
            # the cold node sat idle (window 0) any nonzero hot window
            # would pass a pure ratio test and LPs would thrash back
            # and forth every round; a move must at least pay for its
            # own transfer cost to be worth considering. Then the
            # ratio: the imbalance must exceed the configured factor.
            if window[hot] < cost.migrate_lp_cost:
                return
            if window[hot] <= migration_threshold * window[cold]:
                return
            residents = [
                lp_.gate.index for lp_ in lps if lp_.node == hot
            ]
            if len(residents) <= 1:
                return  # never strip a node bare
            budget = max(1, round(len(residents) * machine.migration_fraction))
            budget = min(budget, len(residents) - 1)
            # Selection: shed load without shredding locality. Moving
            # the hottest LPs maximises the new cut (their traffic is
            # with their co-located neighbours); instead prefer LPs
            # loosely attached to the hot node (few same-node
            # neighbours), then higher activity so the move transfers
            # real work.
            resident_set = set(residents)

            def attachment(gate_index: int) -> int:
                gate = circuit.gates[gate_index]
                return sum(
                    1
                    for other in (*gate.fanin, *gate.fanout)
                    if other in resident_set
                )

            residents.sort(
                key=lambda g: (attachment(g), -fold_activity(g), g)
            )
            moving = residents[:budget]
            moved_set = set(moving)
            for gate_index in moving:
                lps[gate_index].node = cold
            pending_moved = 0
            for msg in queues[hot].extract_dests(moved_set):
                queues[cold].push(msg)
                pending_moved += 1
            transfer = cost.migrate_lp_cost * len(moving)
            wall[hot] += transfer
            busy[hot] += transfer
            wall[cold] = max(wall[cold], wall[hot]) + transfer
            busy[cold] += transfer
            ns_migr[hot] += transfer
            ns_migr[cold] += transfer
            counters["migrations"] += len(moving)
            node_stats[hot].num_lps -= len(moving)
            node_stats[cold].num_lps += len(moving)
            if tracer is not None:
                tracer.emit(
                    "migr",
                    node=hot,
                    src=hot,
                    dst=cold,
                    lps=len(moving),
                    pending=pending_moved,
                    gvt=float(gvt),
                )
            # Decay activity so the score tracks RECENT load; lazy —
            # every LP folds the halving in on its next touch.
            decay_epoch += 1

        INF = float("inf")
        heappush = heapq.heappush
        heappop = heapq.heappop
        insort = bisect_insort
        oldest_setdefault = oldest_times.setdefault
        msg_new = Message.__new__
        rec_new = ProcessedRecord.__new__

        # --- scheduler tournament tree --------------------------------
        # The executive repeatedly needs argmin over nodes of
        # (wall, node) restricted to nodes with an eligible pending
        # event (non-empty queue, head inside the optimism window).
        # Each loop iteration mutates exactly ONE node (the processing
        # node, or a delivery's destination — cancellation cascades stay
        # on that node by construction), so instead of rescanning all
        # nodes per event, leaves of a small tournament tree hold
        # (wall, node) — or (inf, node) when ineligible — and one leaf
        # update bubbles through log2(nodes) internal mins. Ties on
        # wall resolve to the lowest node index, exactly like the scan
        # it replaces. GVT rounds, migration and quiescence flushes
        # touch many nodes at once and trigger a full rebuild.
        tree_size = 1
        while tree_size < n_nodes:
            tree_size <<= 1
        sched_tree: list[tuple[float, int]] = [(INF, 0)] * (2 * tree_size)
        idle_leaves = [(INF, i) for i in range(tree_size)]

        def sched_rebuild() -> None:
            for i in range(tree_size):
                if i < n_nodes:
                    t = queues[i].min_time
                    if t is None or (horizon is not None and t > horizon):
                        sched_tree[tree_size + i] = idle_leaves[i]
                    else:
                        sched_tree[tree_size + i] = (wall[i], i)
                else:
                    sched_tree[tree_size + i] = idle_leaves[i]
            for k in range(tree_size - 1, 0, -1):
                a = sched_tree[k + k]
                b = sched_tree[k + k + 1]
                sched_tree[k] = a if a <= b else b

        sched_rebuild()

        # The hot loop allocates heavily (messages, records, heap
        # tuples) but never creates reference cycles: everything
        # dies by refcount. Generational GC passes triggered by that
        # churn are pure overhead, so they are suspended for the
        # duration of the run and restored on every exit path.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            # The scheduler root (earliest eligible node) is carried in
            # (proc_wall, node) across iterations: every path that
            # changes the tree rebinds it, so the loop top re-reads
            # nothing.
            proc_wall, node = sched_tree[1]
            while True:
                if next_arrival <= proc_wall:
                    # Either a message arrives before the processing
                    # candidate, or both are INF (scheduler idle AND
                    # nothing in flight). The single compare covers the
                    # old separate idle check: proc_wall == INF implies
                    # next_arrival <= proc_wall.
                    if in_flight:
                        # --- deliver, inlined ----------------------------
                        # Taking a message off the wire costs destination
                        # CPU. Only the destination node's state changes;
                        # its scheduler leaf update is folded in at the
                        # end.
                        arrival, _, msg = heappop(in_flight)
                        next_arrival = in_flight[0][0] if in_flight else INF
                        d_lp = lps[msg.dest]
                        d_node = d_lp.node
                        w = wall[d_node]
                        wall[d_node] = (w if w >= arrival else arrival) + recv_overhead
                        busy[d_node] += recv_overhead
                        if msg.sign == ANTI:
                            apply_cancel(msg, arrival)
                        elif msg.uid in waiting_antis:
                            del waiting_antis[msg.uid]
                            if trace:
                                trace("annihilate_on_arrival", msg.uid)
                        else:
                            if msg.key <= d_lp.last_key:
                                rollback(
                                    d_lp, msg.key, arrival,
                                    cancel_uid=None, cause_msg=msg,
                                )
                            # NodeQueue.push, inlined (hot: every positive
                            # arrival).
                            q = queues[d_lp.node]
                            sk = (msg.time, msg.prio, msg.src, msg.n, msg.dest, msg.uid)
                            nk = (-msg.time, -msg.prio, -msg.src, -msg.n, -msg.dest, -msg.uid)
                            insort(q._list, (nk, sk, msg))
                            q._uid_keys[msg.uid] = nk
                            mk = q.min_key
                            if mk is None or sk < mk:
                                q.min_key = sk
                                q.min_time = msg.time
                        if pending_cancels:
                            drain_cancels(arrival)
                        # sched_update(d_node), inlined; the final bubble
                        # value IS the new root.
                        t = queues[d_node].min_time
                        if t is None or (horizon is not None and t > horizon):
                            m = idle_leaves[d_node]
                        else:
                            m = (wall[d_node], d_node)
                        k = tree_size + d_node
                        sched_tree[k] = m
                        while k > 1:
                            k >>= 1
                            a = sched_tree[k + k]
                            b = sched_tree[k + k + 1]
                            m = a if a <= b else b
                            sched_tree[k] = m
                        proc_wall, node = m
                        continue
                    if any(queue.min_time is not None for queue in queues):
                        # Every pending event sits beyond the window: a
                        # fresh GVT round re-opens it (min pending time IS
                        # the new GVT).
                        since_gvt = 0
                        gvt_now = run_gvt_round()
                        if window is not None:
                            horizon = gvt_now + window
                        sched_rebuild()
                        proc_wall, node = sched_tree[1]
                        continue
                    if lazy and any(lazy_buffers.values()):
                        # Quiescence with unresolved lazy sends: those
                        # messages will never be re-derived — cancel them all
                        # and let the cleanup cascade settle.
                        for lp_ in lps:
                            flush_lazy(lp_, max(wall), before=None)
                        drain_cancels(max(wall))
                        sched_rebuild()
                        proc_wall, node = sched_tree[1]
                        continue
                    break

                proc_queue = queues[node]
                # --- NodeQueue.pop, inlined ------------------------------
                qlist = proc_queue._list
                uid_keys = proc_queue._uid_keys
                _, _, msg = qlist.pop()
                del uid_keys[msg.uid]
                if qlist:
                    head_key = qlist[-1][1]
                    proc_queue.min_key = head_key
                    proc_queue.min_time = head_key[0]
                else:
                    proc_queue.min_key = None
                    proc_queue.min_time = None
                # --- end inlined pop -------------------------------------
                dest = msg.dest
                lp = lps[dest]
                if lazy and lazy_buffers.get(dest):
                    # Buffered sends with an emission time this event can no
                    # longer produce are refuted: virtual time passed them.
                    flush_lazy(lp, wall[node], before=msg.time)
                # --- LogicalProcess.process, inlined ---------------------
                # The method remains the public API (tests, the process
                # backend) and keeps the straggler assertion; the
                # executive runs the body inline because the call
                # dominated the per-event profile, and relies on the
                # rollback-before-process contract the surrounding code
                # enforces (tests/test_seed_equivalence.py checks the
                # outcome against the reference kernel). Any change here
                # must mirror lp.py.
                values = lp._fanin_values
                old_output = lp.output_value
                old_input = None
                # The shared empty tuple stands in for "no emissions";
                # every consumer only iterates it, and the lazy-match
                # mutation path is gated on emissions being non-empty
                # (a real list).
                emissions = ()
                prio = msg.prio
                if prio == SIG or (prio == STIM and msg.src != lp.gate_index):
                    # Signal (or stimulus copy) from a driving LP.
                    slots = lp._src_slots[msg.src]
                    if type(slots) is int:
                        old_input = values[slots]
                        values[slots] = msg.value
                    else:
                        old_input = values[slots[0]]
                        value = msg.value
                        for position in slots:
                            values[position] = value
                    if lp._is_comb:
                        nv = lp._eval(values)
                        if nv != old_output:
                            lp.output_value = nv
                            n_seq = lp.emission_seq
                            lp.emission_seq = n_seq + 1
                            t_out = msg.time + lp.delay
                            gi = lp.gate_index
                            sinks = lp._sink_list
                            n_sinks = len(sinks)
                            key_out = (t_out, SIG, gi, n_seq)
                            if n_sinks == 1:
                                em = msg_new(Message)
                                em.time = t_out
                                em.prio = SIG
                                em.src = gi
                                em.n = n_seq
                                em.value = nv
                                em.dest = sinks[0]
                                em.uid = next_uid()
                                em.sign = 1
                                em.key = key_out
                                emissions = [em]
                            elif n_sinks == 2:
                                em = msg_new(Message)
                                em.time = t_out
                                em.prio = SIG
                                em.src = gi
                                em.n = n_seq
                                em.value = nv
                                em.dest = sinks[0]
                                em.uid = next_uid()
                                em.sign = 1
                                em.key = key_out
                                em2 = msg_new(Message)
                                em2.time = t_out
                                em2.prio = SIG
                                em2.src = gi
                                em2.n = n_seq
                                em2.value = nv
                                em2.dest = sinks[1]
                                em2.uid = next_uid()
                                em2.sign = 1
                                em2.key = key_out
                                emissions = [em, em2]
                            else:
                                emissions = [
                                    Message(t_out, SIG, gi, n_seq, nv, s, next_uid())
                                    for s in sinks
                                ]
                elif prio == CAPTURE:
                    data = values[0]
                    if data != old_output:
                        lp.output_value = data
                        capture_log[(dest, msg.n)] = data
                        n_seq = lp.emission_seq
                        lp.emission_seq = n_seq + 1
                        t_out = msg.time + lp.delay
                        gi = lp.gate_index
                        emissions = [
                            Message(t_out, SIG, gi, n_seq, data, s, next_uid())
                            for s in lp._sink_list
                        ]
                else:
                    # Own stimulus: apply, fan the SAME key out to the sinks.
                    value = msg.value
                    if value != old_output:
                        lp.output_value = value
                        gi = lp.gate_index
                        emissions = [
                            Message(msg.time, STIM, gi, msg.n, value, s, next_uid())
                            for s in lp._sink_list
                        ]
                record = rec_new(ProcessedRecord)
                record.msg = msg
                record.old_input = old_input
                record.old_output = old_output
                record.emissions = emissions
                lp.processed.append(record)
                lp.processed_uids.add(msg.uid)
                lp.last_key = msg.key
                # --- end inlined process ---------------------------------
                if trace:
                    trace("process", msg.uid, dest, msg.key)
                events += 1
                ns_events[node] += 1
                history_total += 1
                if history_total > peak_history:
                    peak_history = history_total
                oldest_setdefault(dest, msg.time)
                if migrating:
                    behind = decay_epoch - lp_activity_epoch[dest]
                    if behind:
                        lp_activity[dest] *= 0.5 ** behind
                        lp_activity_epoch[dest] = decay_epoch
                    lp_activity[dest] += 1.0
                wall[node] += event_cost
                busy[node] += event_cost
                if checkpointing:
                    since = lp._since_checkpoint + 1
                    if since >= ckpt_interval:
                        lp.checkpoints.append(
                            (msg.key, list(values), lp.output_value)
                        )
                        lp._since_checkpoint = 0
                        ns_ckpt[node] += 1
                        wall[node] += state_save_cost  # snapshot just taken
                        busy[node] += state_save_cost
                    else:
                        lp._since_checkpoint = since
                now = wall[node]
                if lazy and emissions and lazy_buffers.get(dest):
                    _lazy_match(lp, record, now)
                    emissions = record.emissions
                if emissions:
                    remote_sends = 0
                    for em in emissions:
                        if reused_uids and em.uid in reused_uids:
                            reused_uids.discard(em.uid)
                            continue  # live at its destination from before the rollback
                        dest_lp = lps[em.dest]
                        dest_node = dest_lp.node
                        if dest_node == node:
                            local_messages += 1
                            ns_local[node] += 1
                            # insert_positive, inlined for the same-node case
                            # (the overwhelming majority of traffic under a good
                            # partition).
                            if waiting_antis and em.uid in waiting_antis:
                                del waiting_antis[em.uid]
                                if trace:
                                    trace("annihilate_on_arrival", em.uid)
                                continue
                            if em.key <= dest_lp.last_key:
                                rollback(
                                    dest_lp, em.key, now,
                                    cancel_uid=None, cause_msg=em,
                                )
                            # NodeQueue.push, inlined (locals bound at the pop
                            # above; rollback never rebinds the queue's list).
                            sk = (em.time, em.prio, em.src, em.n, em.dest, em.uid)
                            nk = (-em.time, -em.prio, -em.src, -em.n, -em.dest, -em.uid)
                            insort(qlist, (nk, sk, em))
                            uid_keys[em.uid] = nk
                            mk = proc_queue.min_key
                            if mk is None or sk < mk:
                                proc_queue.min_key = sk
                                proc_queue.min_time = em.time
                        else:
                            flight_seq += 1
                            arr = now + (
                                uniform_delay
                                if uniform_delay is not None
                                else network.latency(node, dest_node)
                            )
                            heappush(in_flight, (arr, flight_seq, em))
                            if arr < next_arrival:
                                next_arrival = arr
                            app_messages += 1
                            ns_remote[node] += 1
                            remote_sends += 1
                    if remote_sends:
                        wall[node] += send_overhead * remote_sends
                        busy[node] += send_overhead * remote_sends
                if pending_cancels:
                    drain_cancels(wall[node])

                since_gvt += 1
                if since_gvt >= gvt_interval:
                    since_gvt = 0
                    # Runaway guard, amortised over the GVT interval: a
                    # thrashing run overshoots by at most gvt_interval
                    # events before the abort fires.
                    if events > max_events:
                        raise SimulationError(
                            f"exceeded max_events={self.max_events}; "
                            "thrashing rollbacks or workload too large"
                        )
                    gvt_now = run_gvt_round()
                    if window is not None:
                        horizon = gvt_now + window
                    sched_rebuild()
                    proc_wall, node = sched_tree[1]
                else:
                    # sched_update(node), inlined: only this node's wall /
                    # queue head changed during the iteration. The final
                    # bubble value IS the new root.
                    t = proc_queue.min_time
                    if t is None or (horizon is not None and t > horizon):
                        m = idle_leaves[node]
                    else:
                        m = (wall[node], node)
                    k = tree_size + node
                    sched_tree[k] = m
                    while k > 1:
                        k >>= 1
                        a = sched_tree[k + k]
                        b = sched_tree[k + k + 1]
                        m = a if a <= b else b
                        sched_tree[k] = m
                    proc_wall, node = m
        finally:
            if gc_was_enabled:
                gc.enable()

        if waiting_antis:
            raise SimulationError(
                f"{len(waiting_antis)} anti-messages never met their "
                "positive copies — kernel invariant broken"
            )

        counters["events"] = events
        counters["peak_history"] = peak_history
        counters["local_messages"] = local_messages
        counters["app_messages"] = app_messages
        if tracer is not None:
            # Quiescence flush: history that survived the last fossil
            # sweep is committed now. With these, the sum of commit-`n`
            # over the trace equals events_processed - rolled_back.
            for lp in lps:
                if lp.processed:
                    tracer.emit(
                        "commit",
                        node=lp.node,
                        lp=lp.gate.index,
                        n=len(lp.processed),
                        t_lo=int(lp.processed[0].msg.time),
                        t_hi=None,
                        final=True,
                    )
        for i in range(n_nodes):
            node_stats[i].events_processed = ns_events[i]
            node_stats[i].messages_sent_local = ns_local[i]
            node_stats[i].messages_sent_remote = ns_remote[i]
            node_stats[i].wall_time = wall[i]
            node_stats[i].busy_time = busy[i]
            if tracer is not None:
                # Exact decomposition of this node's busy time under the
                # modelled cost machine; recv is the residual (it equals
                # recv_overhead x deliveries by construction) and idle
                # the wall/busy gap.
                attr_compute = (
                    ns_events[i] * event_cost + ns_ckpt[i] * state_save_cost
                )
                attr_rollback = (
                    node_stats[i].events_rolled_back
                    * cost.rollback_event_cost
                    + ns_coast[i] * cost.coast_event_cost
                )
                attr_gvt = counters["gvt_rounds"] * cost.gvt_cost
                attr_send = (
                    ns_remote[i] + node_stats[i].anti_messages_sent
                ) * cost.send_overhead
                attr_recv = busy[i] - (
                    attr_compute
                    + attr_rollback
                    + attr_gvt
                    + attr_send
                    + ns_migr[i]
                )
                tracer.emit(
                    "node_summary",
                    node=i,
                    busy=busy[i],
                    wall=wall[i],
                    events=node_stats[i].events_processed,
                    rollbacks=node_stats[i].rollbacks,
                    rolled_back=node_stats[i].events_rolled_back,
                    antis=node_stats[i].anti_messages_sent,
                    sent_remote=ns_remote[i],
                    sent_local=ns_local[i],
                    gvt_rounds=counters["gvt_rounds"],
                    num_lps=node_stats[i].num_lps,
                    attr={
                        "compute": attr_compute,
                        "rollback": attr_rollback,
                        "gvt": attr_gvt,
                        "send": attr_send,
                        "recv": max(0.0, attr_recv),
                        "migration": ns_migr[i],
                        "idle": max(0.0, wall[i] - busy[i]),
                    },
                )
        return TimeWarpResult(
            circuit_name=circuit.name,
            algorithm=self.assignment.algorithm,
            num_nodes=n_nodes,
            num_cycles=stim.num_cycles,
            execution_time=max(wall),
            events_processed=events,
            events_rolled_back=counters["rolled_back"],
            rollbacks=counters["rollbacks"],
            app_messages=counters["app_messages"],
            anti_messages=counters["anti_messages"],
            local_messages=counters["local_messages"],
            gvt_rounds=counters["gvt_rounds"],
            lazy_reuses=counters["lazy_reuses"],
            peak_history=peak_history,
            migrations=counters["migrations"],
            final_values=[lp.output_value for lp in lps],
            utilization_timeline=utilization_timeline,
            node_stats=node_stats,
            committed_captures=sorted(
                (gate, cycle, value)
                for (gate, cycle), value in capture_log.items()
            ),
        )
