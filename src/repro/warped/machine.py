"""The virtual machine: N nodes, a CPU cost model, a network model.

This replaces the paper's physical testbed (see DESIGN.md §3). A *node*
models one processing element running one WARPED cluster of LPs; the
paper's x-axis "number of nodes" maps 1:1 onto this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.warped.network import FastEthernet, NetworkModel


@dataclass(frozen=True)
class TimeWarpCostModel:
    """Per-operation CPU costs of the Time Warp executive, in seconds.

    Defaults model the paper's era (300 MHz Pentium II running the
    TYVIS/WARPED C++ stack):

    - ``event_cost``: process one LP event — dequeue, incremental
      state save, one process evaluation, scheduling. An LP event is
      finer-grained than a sequential-kernel event (which evaluates
      every sink of a change in one go), hence the smaller constant.
    - ``rollback_event_cost``: undo one processed event (state
      restore + cancellation bookkeeping).
    - ``send_overhead``: CPU time to hand one remote message to the
      messaging layer (MPI send over TCP on the paper's stack).
    - ``recv_overhead``: CPU time to take one remote message off the
      wire at the destination node.
    - ``gvt_cost``: per-node CPU share of one GVT round.
    """

    event_cost: float = 180e-6
    rollback_event_cost: float = 90e-6
    #: Coast-forward replay of one event during a checkpoint-mode
    #: rollback (state rebuild only — no scheduling, no sends).
    coast_event_cost: float = 90e-6
    #: The share of ``event_cost`` attributable to incremental state
    #: saving; checkpoint mode skips it per event and pays it per
    #: snapshot instead.
    state_save_cost: float = 40e-6
    #: Transfer one LP (state + queued events) to another node during
    #: dynamic load balancing; charged to both endpoints.
    migrate_lp_cost: float = 500e-6
    send_overhead: float = 150e-6
    recv_overhead: float = 150e-6
    gvt_cost: float = 200e-6

    def __post_init__(self) -> None:
        for name in (
            "event_cost",
            "rollback_event_cost",
            "coast_event_cost",
            "state_save_cost",
            "migrate_lp_cost",
            "send_overhead",
            "recv_overhead",
            "gvt_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.event_cost <= 0:
            raise ConfigError("event_cost must be positive")
        if self.state_save_cost >= self.event_cost:
            # Checkpoint mode charges event_cost - state_save_cost per
            # event; a state-save share at or above the whole event cost
            # would make that non-positive (the kernel used to clamp it
            # silently to 1e-9, hiding the misconfiguration).
            raise ConfigError(
                f"state_save_cost ({self.state_save_cost}) must be smaller "
                f"than event_cost ({self.event_cost}); it is the share of "
                "event_cost attributable to state saving"
            )


@dataclass
class VirtualMachine:
    """Configuration of the simulated cluster."""

    num_nodes: int
    cost_model: TimeWarpCostModel = field(default_factory=TimeWarpCostModel)
    network: NetworkModel = field(default_factory=FastEthernet)
    #: Compute GVT (and fossil-collect) every this many processed events.
    gvt_interval: int = 512
    #: Cancellation policy: "aggressive" dispatches anti-messages the
    #: moment an event is rolled back (WARPED's default); "lazy" holds
    #: them back until re-execution proves the original send wrong — a
    #: re-derived identical message is reused instead of being cancelled
    #: and resent, saving anti-message traffic and secondary rollbacks
    #: when the speculation was value-correct.
    cancellation: str = "aggressive"
    #: State-saving policy: ``None`` = incremental (per-event undo
    #: records, WARPED's default for small states); an integer C =
    #: snapshot every C events with coast-forward on rollback.
    #: The process backend saves state incrementally regardless and
    #: reads C as the *virtual-time* spacing of its crash-recovery
    #: checkpoint epochs (a consistent ring-wide snapshot each time a
    #: broadcast GVT crosses a multiple of C).
    checkpoint_interval: int | None = None
    #: Dynamic load balancing: at each GVT round, if the busiest node
    #: did more than ``migration_threshold`` times the work of the
    #: idlest since the previous round, migrate the hottest LPs toward
    #: the idlest node. ``None`` disables migration (static partitions,
    #: as in the paper).
    migration_threshold: float | None = None
    #: At most this fraction of the busiest node's LPs moves per round.
    migration_fraction: float = 0.05
    #: Bounded optimism: a node only processes events with virtual time
    #: <= GVT + window. ``None`` = classic unthrottled Time Warp. The
    #: virtual machine's pre-scheduled stimulus gives every node
    #: unbounded lookahead, so an unthrottled node can race arbitrarily
    #: far ahead and thrash on deep rollbacks; a window of a few clock
    #: periods models the optimism control real kernels employ.
    optimism_window: int | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("need at least one node")
        if self.gvt_interval < 1:
            raise ConfigError("gvt_interval must be >= 1")
        if self.optimism_window is not None and self.optimism_window < 1:
            raise ConfigError("optimism_window must be >= 1 (or None)")
        if self.cancellation not in ("aggressive", "lazy"):
            raise ConfigError(
                f"cancellation must be 'aggressive' or 'lazy', "
                f"got {self.cancellation!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1 (or None)")
        if self.migration_threshold is not None and self.migration_threshold <= 1.0:
            raise ConfigError("migration_threshold must be > 1 (or None)")
        if not 0.0 < self.migration_fraction <= 1.0:
            raise ConfigError("migration_fraction must be in (0, 1]")
