"""Positive and anti-messages exchanged between LPs."""

from __future__ import annotations

from repro.sim.event import EventKey, KIND_NAMES

#: Message signs.
POSITIVE = 1
ANTI = -1


class Message:
    """One event message (or its annihilating anti-message).

    ``(time, prio, src, n)`` is the shared deterministic event key —
    identical for every copy fanned out to different destinations and
    for the anti-message that cancels a copy. ``uid`` identifies one
    physical copy for annihilation matching.
    """

    __slots__ = ("time", "prio", "src", "n", "value", "dest", "uid", "sign", "key")

    def __init__(
        self,
        time: int,
        prio: int,
        src: int,
        n: int,
        value: int,
        dest: int,
        uid: int,
        sign: int = POSITIVE,
    ) -> None:
        self.time = time
        self.prio = prio
        self.src = src
        self.n = n
        self.value = value
        self.dest = dest
        self.uid = uid
        self.sign = sign
        #: The deterministic event key, precomputed: the kernels read it
        #: several times per message (straggler checks, history keys).
        self.key: EventKey = (time, prio, src, n)

    @property
    def sort_key(self) -> tuple[int, int, int, int, int, int]:
        """Queue order: event key, then destination, then copy id."""
        return (self.time, self.prio, self.src, self.n, self.dest, self.uid)

    def make_anti(self) -> "Message":
        """The anti-message cancelling this positive copy."""
        return Message(
            self.time, self.prio, self.src, self.n,
            self.value, self.dest, self.uid, ANTI,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = KIND_NAMES.get(self.prio, str(self.prio))
        sign = "+" if self.sign == POSITIVE else "-"
        return (
            f"Msg({sign}t={self.time} {kind} src={self.src} n={self.n} "
            f"v={self.value} dest={self.dest} uid={self.uid})"
        )
