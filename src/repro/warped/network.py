"""Network latency models for the virtual cluster.

The paper's testbed interconnect was fast (100 Mb/s) ethernet; the
default model charges its characteristic small-message latency. Models
are deliberately simple — partitioning quality expresses itself through
*how many* messages cross the network, and a constant-latency FIFO
channel preserves per-channel message order, which the anti-message
machinery relies on (an anti-message is always sent after its positive
copy, hence always arrives after it).
"""

from __future__ import annotations

import abc

from repro.errors import ConfigError


class NetworkModel(abc.ABC):
    """Maps a message send to an arrival delay in (modelled) seconds."""

    @abc.abstractmethod
    def latency(self, src_node: int, dst_node: int) -> float:
        """One-way delay from *src_node* to *dst_node*."""


class UniformNetwork(NetworkModel):
    """Same constant latency between every pair of distinct nodes."""

    def __init__(self, delay: float) -> None:
        if delay <= 0:
            raise ConfigError("network delay must be positive")
        self.delay = delay

    def latency(self, src_node: int, dst_node: int) -> float:
        if src_node == dst_node:
            return 0.0
        return self.delay


class FastEthernet(UniformNetwork):
    """100 Mb/s switched ethernet with MPI-over-TCP overheads (~1999).

    Small-message one-way latency on such clusters was measured around
    100–200 µs end to end (kernel TCP stack dominating); the default
    uses 150 µs.
    """

    def __init__(self, delay: float = 150e-6) -> None:
        super().__init__(delay)
