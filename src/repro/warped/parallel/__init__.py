"""Multiprocess Time Warp backend: real OS processes, real messages.

See :mod:`repro.warped.parallel.backend` for the execution model and
:mod:`repro.warped.parallel.protocol` for the GVT token ring.
"""

from repro.warped.parallel.backend import NodeLoop, ProcessTimeWarpSimulator
from repro.warped.parallel.node import NodeEngine
from repro.warped.parallel.ring import WorkerRing
from repro.warped.parallel.protocol import GvtClerk, GvtToken
from repro.warped.parallel.transport import (
    QueueTransport,
    SendBuffer,
    ShmChannel,
    ShmTransport,
    Transport,
    TRANSPORT_NAMES,
    decode_record,
    encode_record,
    make_transport,
)

__all__ = [
    "GvtClerk",
    "GvtToken",
    "NodeEngine",
    "NodeLoop",
    "ProcessTimeWarpSimulator",
    "QueueTransport",
    "SendBuffer",
    "ShmChannel",
    "ShmTransport",
    "Transport",
    "TRANSPORT_NAMES",
    "decode_record",
    "encode_record",
    "make_transport",
]
