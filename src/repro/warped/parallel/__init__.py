"""Multiprocess Time Warp backend: real OS processes, real messages.

See :mod:`repro.warped.parallel.backend` for the execution model and
:mod:`repro.warped.parallel.protocol` for the GVT token ring.
"""

from repro.warped.parallel.backend import NodeLoop, ProcessTimeWarpSimulator
from repro.warped.parallel.node import NodeEngine
from repro.warped.parallel.protocol import GvtClerk, GvtToken

__all__ = [
    "GvtClerk",
    "GvtToken",
    "NodeEngine",
    "NodeLoop",
    "ProcessTimeWarpSimulator",
]
