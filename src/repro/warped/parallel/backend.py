"""The multiprocess Time Warp backend.

:class:`ProcessTimeWarpSimulator` mirrors the constructor and ``run()``
contract of the virtual :class:`~repro.warped.kernel.TimeWarpSimulator`
but executes the simulation on **real OS processes**: one
``multiprocessing`` worker per node, each hosting its partition's LP
cluster behind a :class:`~repro.warped.parallel.node.NodeEngine`.
Signal and anti-messages travel over per-node ``multiprocessing``
queues; GVT is computed by the colored token ring of
:mod:`repro.warped.parallel.protocol` and broadcast for fossil
collection; a GVT of ``+inf`` proves quiescence and shuts the ring
down.

Each worker runs a :class:`NodeLoop` — the event/GVT loop factored out
of the process entry point so tests can drive a full ring inside one
process with plain ``queue.Queue`` transports (the GVT regression
tests do exactly that).

Timing semantics differ from the virtual backend by design: the
virtual machine *models* a cluster's clock deterministically, while
this backend reports **measured** wall-clock per node.  Committed
simulation results (final signal values, DFF capture history) are
identical between the two — rollback makes the outcome independent of
message interleaving — and the differential test layer holds both
backends to that.

Liveness at the parent is deliberately conservative: worker death is
detected from exit codes with a drain grace period (never from
``Queue.empty()``, which is documented-unreliable and can report empty
while a finished worker's payload is still in the feeder pipe), and
shutdown drains every inbox while joining so a worker blocked flushing
a full queue at exit can always get out (see ``_shutdown``).

Fault injection for tests: ``REPRO_TW_FAULT`` is a comma-separated
list of ``node:mode[:arg]`` clauses applied inside the matching worker
— ``raise`` (throw at startup, exercising the ERROR wire path),
``exit`` (``os._exit(arg)``, silent death), ``hang`` (sleep *arg*
seconds), ``flood`` (stuff ~4k messages into node *arg*'s inbox and
exit without reporting, wedging this worker's queue feeder), and
``late-report`` (sleep *arg* seconds between finishing and reporting —
the race the grace period exists for).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback

from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError, SimulationError
from repro.obs.tracer import TraceWriter, merge_shards, shard_path
from repro.partition.assignment import PartitionAssignment
from repro.sim.stimulus import Stimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.node import NodeEngine
from repro.warped.parallel.protocol import (
    DONE,
    ERROR,
    GVT,
    MSG,
    TOKEN,
    T_INF,
    GvtClerk,
    GvtToken,
)
from repro.warped.stats import NodeStats, TimeWarpResult

#: Local events processed between inbox polls (rollback responsiveness
#: vs. polling overhead).
_BATCH = 16
#: Blocking-receive timeout when a node has nothing processable (s).
_IDLE_WAIT = 0.005
#: Minimum spacing between idle-triggered GVT computations (s).
_IDLE_GVT_SPACING = 0.001
#: How long a dead-but-unreported worker's payload may stay in flight
#: before the parent declares the node lost (Queue feeder flushes are
#: normally milliseconds; this absorbs a loaded machine).
_DEATH_GRACE = 2.0
#: Shutdown join budget on the success path (workers should exit
#: almost immediately after the GVT=+inf broadcast).
_SHUTDOWN_PATIENCE = 5.0
#: Shutdown join budget on the error path (don't make a failing run
#: wait for workers that will be terminated anyway).
_ERROR_PATIENCE = 1.0
#: Minimum spacing between live-status snapshot writes per node (s).
_STATUS_INTERVAL = 0.1


# ----------------------------------------------------------------------
# fault injection (test hook)
# ----------------------------------------------------------------------
def _worker_faults(node: int) -> list[tuple[str, str | None]]:
    """Parse ``REPRO_TW_FAULT`` clauses addressed to *node*."""
    spec = os.environ.get("REPRO_TW_FAULT", "")
    faults: list[tuple[str, str | None]] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if int(parts[0]) != node:
            continue
        faults.append((parts[1], parts[2] if len(parts) > 2 else None))
    return faults


def _apply_startup_faults(node: int, inboxes) -> bool:
    """Run *node*'s startup fault clauses; True means "do not simulate"."""
    for mode, arg in _worker_faults(node):
        if mode == "raise":
            raise RuntimeError(f"injected fault in node {node}")
        if mode == "exit":
            os._exit(int(arg or 3))
        if mode == "hang":
            time.sleep(float(arg or 3600.0))
        if mode == "flood":
            dest = int(arg or 0)
            for _ in range(4096):
                inboxes[dest].put((GVT, 0, 0.0))
            return True  # exit without reporting; the feeder must flush
    return False


# ----------------------------------------------------------------------
# the per-node loop (transport-agnostic, testable in-process)
# ----------------------------------------------------------------------
class NodeLoop:
    """One node's Time Warp event/GVT loop over abstract inboxes.

    ``inboxes`` only needs ``put``/``get``/``get_nowait``/``qsize`` —
    ``multiprocessing`` queues in production, ``queue.Queue`` (or
    anything list-like wrapped in one) in the in-process ring tests.
    Node 0 is the GVT initiator; every node applies broadcast GVT
    values, resets its ``since_gvt`` progress counter and compacts its
    :class:`~repro.warped.parallel.protocol.GvtClerk` tables on each
    application (both were initiator-only once — non-initiators leaked
    counter colors and an ever-growing ``since_gvt``).
    """

    def __init__(
        self,
        node: int,
        num_nodes: int,
        engine: NodeEngine,
        inboxes,
        *,
        gvt_interval: int = 512,
        tracer: TraceWriter | None = None,
        status_path: str | None = None,
    ) -> None:
        self.node = node
        self.num_nodes = num_nodes
        self.engine = engine
        self.inboxes = inboxes
        self.inbox = inboxes[node]
        self.gvt_interval = gvt_interval
        self.tracer = tracer
        #: Live-status base path; each GVT application refreshes this
        #: node's single-line JSON snapshot (``<base>.node<i>``, written
        #: atomically) for ``tools/tw_top.py`` to tail.
        self.status_path = status_path
        self._status_last = 0.0
        self._start = time.perf_counter()
        self.clerk = GvtClerk(node=node)
        self.gvt = 0.0
        self.done = False
        self.busy = 0.0
        #: Measured wall time inside :meth:`handle` — transport ingest
        #: plus the rollbacks remote messages trigger.  Only maintained
        #: with tracing on (the timed wrapper shadows ``handle``), so
        #: the untraced wire path stays bare.
        self.recv_busy = 0.0
        if tracer is not None:
            self._handle_inner = self.handle
            self.handle = self._timed_handle
        #: Events processed since this node last applied a GVT value.
        self.since_gvt = 0
        #: Conclusive GVT computations this node observed (initiator:
        #: concluded; others: broadcasts applied).
        self.gvt_rounds_seen = 0
        # Initiator (node 0) state.
        self.active_cid = 0        # computation in progress (0 = none)
        self.next_cid = 0
        self.gvt_computations = 0  # conclusive computations initiated
        self.last_initiate = 0.0
        self._round_started = 0.0  # wall time active_cid was initiated
        self._round_trips = 0      # ring circuits of the active computation

    # -- plumbing ------------------------------------------------------
    def flush_outbox(self) -> None:
        for dest, msg in self.engine.outbox:
            color = self.clerk.note_send(msg.time)
            self.inboxes[dest].put((MSG, color, msg))
        self.engine.outbox.clear()

    def local_min(self) -> float:
        t = self.engine.min_pending()
        return T_INF if t is None else float(t)

    # -- GVT -----------------------------------------------------------
    def apply_gvt(self, cid: int, value: float) -> None:
        """Fossil-collect at *value* and reset per-round bookkeeping."""
        self.engine.fossil_collect(value)
        # Every node resets its progress counter and compacts clerk
        # state here — on the initiator this used to live in
        # ``conclude``; non-initiators never did either (the since_gvt
        # and clerk-growth bugs this method now owns the fix for).
        self.since_gvt = 0
        self.clerk.forget_before(cid)
        self.gvt_rounds_seen += 1
        if value == T_INF:
            self.done = True
        else:
            self.gvt = value
        if self.tracer is not None:
            self.tracer.emit(
                "inbox_depth", depth=self._inbox_depth(), gvt=value, cid=cid
            )
        if self.status_path is not None:
            self.write_status()

    def _inbox_depth(self) -> int | None:
        try:
            return self.inbox.qsize()
        except (NotImplementedError, OSError):  # pragma: no cover
            return None

    def write_status(self, *, force: bool = False) -> None:
        """Atomically refresh this node's live-status snapshot file.

        Throttled to one write per ``_STATUS_INTERVAL`` (idle-triggered
        GVT rounds conclude every millisecond or so); temp-file +
        ``os.replace`` so a tailing reader never sees a partial line.
        """
        now = time.perf_counter()
        if not force and now - self._status_last < _STATUS_INTERVAL:
            return
        self._status_last = now
        counters = self.engine.counters
        snapshot = {
            "node": self.node,
            "ts": round(time.time(), 3),
            "gvt": None if self.done or self.gvt == T_INF else self.gvt,
            "done": self.done,
            "events": counters["events"],
            "rollbacks": counters["rollbacks"],
            "rolled_back": counters["rolled_back"],
            "antis": counters["anti_messages"],
            "busy": round(self.busy, 4),
            "wall": round(now - self._start, 4),
            "inbox": self._inbox_depth(),
            "num_lps": len(self.engine.lps),
        }
        path = shard_path(self.status_path, self.node)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            fh.write(json.dumps(snapshot, separators=(",", ":")) + "\n")
        os.replace(tmp, path)

    def _timed_handle(self, item) -> None:
        t0 = time.perf_counter()
        self._handle_inner(item)
        self.recv_busy += time.perf_counter() - t0

    def conclude(self, token: GvtToken) -> None:
        """Initiator: finish or extend the computation *token* closes."""
        if token.conclusive:
            value = token.gvt
            self.gvt_computations += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "gvt_round",
                    cid=token.cid,
                    gvt=value,
                    final=value == T_INF,
                    latency=time.perf_counter() - self._round_started,
                    trips=self._round_trips,
                )
            for other in range(self.num_nodes):
                if other != self.node:
                    self.inboxes[other].put((GVT, token.cid, value))
            self.active_cid = 0
            self.apply_gvt(token.cid, value)
        else:
            # Whites still in flight: circulate a fresh round of the
            # same computation.  Re-folding this node's contribution is
            # correct — each round is a fresh cut, and the clerk's
            # cumulative sent/received tables make every round's white
            # balance self-consistent (see DESIGN.md §6 for the audit).
            self._round_trips += 1
            fresh = GvtToken(cid=token.cid)
            self.clerk.fold_token(fresh, self.local_min())
            self.inboxes[(self.node + 1) % self.num_nodes].put((TOKEN, fresh))

    def maybe_initiate(self) -> None:
        """Initiator: start a GVT computation when one is due.

        Idle or window-throttled nodes need GVT to advance (or prove
        quiescence), so initiation is also idleness-triggered.
        """
        if self.node != 0 or self.active_cid:
            return
        now = time.perf_counter()
        idle = not self.engine.processable(self.gvt)
        if self.since_gvt >= self.gvt_interval or (
            idle and now - self.last_initiate >= _IDLE_GVT_SPACING
        ):
            self.next_cid += 1
            self.active_cid = self.next_cid
            self.last_initiate = now
            self._round_started = now
            self._round_trips = 1
            token = GvtToken(cid=self.active_cid)
            self.clerk.fold_token(token, self.local_min())
            if self.num_nodes == 1:
                self.conclude(token)
            else:
                self.inboxes[1].put((TOKEN, token))

    # -- wire dispatch -------------------------------------------------
    def handle(self, item) -> None:
        tag = item[0]
        if tag == MSG:
            _, color, msg = item
            self.clerk.note_receive(color)
            self.engine.handle_remote(msg)
            self.flush_outbox()  # a straggler's rollback emits anti-messages
        elif tag == TOKEN:
            token = item[1]
            if self.node == 0 and token.cid == self.active_cid:
                self.conclude(token)  # the round came home
            else:
                self.clerk.fold_token(token, self.local_min())
                self.inboxes[(self.node + 1) % self.num_nodes].put(
                    (TOKEN, token)
                )
        elif tag == GVT:
            self.apply_gvt(item[1], item[2])
        else:  # pragma: no cover - defensive
            raise SimulationError(
                f"node {self.node}: unknown wire item {item!r}"
            )

    # -- loop phases ---------------------------------------------------
    def poll(self) -> bool:
        """Drain everything the transport has delivered (nonblocking)."""
        handled = False
        while not self.done:
            try:
                item = self.inbox.get_nowait()
            except queue_mod.Empty:
                break
            self.handle(item)
            handled = True
        return handled

    def work_batch(self) -> int:
        """Optimistically process a slice of local events."""
        worked = 0
        while worked < _BATCH and self.engine.processable(self.gvt):
            t0 = time.perf_counter()
            self.engine.process_one()
            self.flush_outbox()
            self.busy += time.perf_counter() - t0
            worked += 1
            self.since_gvt += 1
        return worked

    def run(self) -> None:
        """Drive the node to quiescence (GVT == +inf)."""
        while not self.done:
            self.poll()
            if self.done:
                break
            worked = self.work_batch()
            self.maybe_initiate()
            # Nothing processable and nothing drained: wait for the wire.
            if not worked:
                try:
                    item = self.inbox.get(timeout=_IDLE_WAIT)
                except queue_mod.Empty:
                    continue
                self.handle(item)
        if self.status_path is not None:
            self.write_status(force=True)  # the final "done" snapshot


def _worker_main(
    node: int,
    num_nodes: int,
    circuit: CircuitGraph,
    assignment: list[int],
    stimulus: Stimulus,
    optimism_window: int | None,
    gvt_interval: int,
    max_events: int,
    inboxes,
    result_queue,
    trace_base: str | None,
    trace_epoch: float,
    status_base: str | None = None,
) -> None:
    """Entry point of one node process."""
    try:
        if _apply_startup_faults(node, inboxes):
            return
        _run_node(
            node, num_nodes, circuit, assignment, stimulus,
            optimism_window, gvt_interval, max_events,
            inboxes, result_queue, trace_base, trace_epoch, status_base,
        )
    except BaseException:  # noqa: BLE001 - ship the diagnosis to the parent
        result_queue.put((ERROR, node, traceback.format_exc()))


def _run_node(
    node: int,
    num_nodes: int,
    circuit: CircuitGraph,
    assignment: list[int],
    stimulus: Stimulus,
    optimism_window: int | None,
    gvt_interval: int,
    max_events: int,
    inboxes,
    result_queue,
    trace_base: str | None,
    trace_epoch: float,
    status_base: str | None = None,
) -> None:
    start = time.perf_counter()
    tracer = None
    if trace_base is not None:
        tracer = TraceWriter(
            shard_path(trace_base, node), node=node, epoch=trace_epoch
        )
    try:
        engine = NodeEngine(
            circuit, assignment, node, num_nodes, stimulus,
            optimism_window=optimism_window, max_events=max_events,
            tracer=tracer,
        )
        engine.schedule_initial()
        loop = NodeLoop(
            node, num_nodes, engine, inboxes,
            gvt_interval=gvt_interval, tracer=tracer,
            status_path=status_base,
        )
        loop.run()
        engine.check_quiescent()
        engine.flush_committed()
        wall = time.perf_counter() - start
        stats = engine.stats
        stats.wall_time = wall
        stats.busy_time = loop.busy
        if tracer is not None:
            # Measured attribution: compute is the event-processing
            # batch clock (local rollbacks included), transport the
            # timed wire handler (ingest + remote-triggered rollbacks),
            # idle the remainder.
            tracer.emit(
                "node_summary",
                busy=loop.busy,
                wall=wall,
                events=engine.counters["events"],
                rollbacks=engine.counters["rollbacks"],
                rolled_back=engine.counters["rolled_back"],
                antis=engine.counters["anti_messages"],
                sent_remote=engine.counters["app_messages"],
                sent_local=engine.counters["local_messages"],
                gvt_rounds=loop.gvt_rounds_seen,
                num_lps=len(engine.lps),
                attr={
                    "compute": loop.busy,
                    "transport": loop.recv_busy,
                    "idle": max(0.0, wall - loop.busy - loop.recv_busy),
                },
            )
    finally:
        if tracer is not None:
            tracer.close()
    for mode, arg in _worker_faults(node):
        if mode == "late-report":
            # The race the parent's grace period absorbs: a sibling can
            # report-and-exit long before this node's payload appears.
            time.sleep(float(arg or 1.5))
    result_queue.put(
        (
            DONE,
            node,
            {
                "stats": stats,
                "counters": engine.counters,
                "final_values": engine.final_values(),
                "captures": dict(engine.capture_log),
                "peak_history": engine.peak_history,
                "gvt_rounds": loop.gvt_computations,
                "pid": os.getpid(),
            },
        )
    )


def _drain_queue(q) -> int:
    """Discard whatever *q* currently holds; returns the count."""
    drained = 0
    while True:
        try:
            q.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            return drained
        drained += 1


class ProcessTimeWarpSimulator:
    """Run one circuit under one partition on real OS processes.

    Accepts the same (circuit, assignment, stimulus, machine) quadruple
    as the virtual backend.  The machine's ``num_nodes``,
    ``gvt_interval`` and ``optimism_window`` govern the run; its cost
    and network models are ignored (this backend measures real time).
    Policies the process backend does not implement (lazy cancellation,
    periodic checkpointing, LP migration) are rejected up front.

    With ``trace_path`` set, every worker streams a JSONL trace shard
    (rollbacks, GVT rounds, inbox depth, busy/idle summary) and the
    parent merges the shards into ``trace_path`` ordered by
    ``(wall time, node)`` after a successful run; shards are left in
    place on failure for post-mortem.
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        timeout: float = 120.0,
        death_grace: float = _DEATH_GRACE,
        trace_path: str | None = None,
        status_path: str | None = None,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        if machine.cancellation != "aggressive":
            raise ConfigError(
                "process backend implements aggressive cancellation only"
            )
        if machine.checkpoint_interval is not None:
            raise ConfigError(
                "process backend implements incremental state saving only"
            )
        if machine.migration_threshold is not None:
            raise ConfigError("process backend does not migrate LPs")
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace_path = trace_path
        #: Live-status base: each worker atomically refreshes
        #: ``<status_path>.node<i>`` with a one-line JSON snapshot at
        #: every GVT application (``tools/tw_top.py`` tails them).
        self.status_path = status_path
        #: OS pid of each worker after a run — evidence the simulation
        #: really executed on separate processes.
        self.worker_pids: dict[int, int] = {}
        #: Exit code of each worker after shutdown (0 = clean).
        self.worker_exitcodes: dict[int, int | None] = {}
        #: Records in the merged trace (0 when tracing is off).
        self.trace_records = 0

    # ------------------------------------------------------------------
    def _make_results_queue(self, ctx):
        """Result-queue factory (overridable in liveness tests)."""
        return ctx.Queue()

    # ------------------------------------------------------------------
    def run(self) -> TimeWarpResult:
        """Simulate to quiescence across the worker ring."""
        n = self.machine.num_nodes
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        inboxes = [ctx.Queue() for _ in range(n)]
        results = self._make_results_queue(ctx)
        trace_epoch = time.time()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    node, n, self.circuit, list(self.assignment.assignment),
                    self.stimulus, self.machine.optimism_window,
                    self.machine.gvt_interval, self.max_events,
                    inboxes, results, self.trace_path, trace_epoch,
                    self.status_path,
                ),
                daemon=True,
                name=f"timewarp-node-{node}",
            )
            for node in range(n)
        ]
        for worker in workers:
            worker.start()
        payloads: dict[int, dict] = {}
        deadline = time.monotonic() + self.timeout
        grace_until: float | None = None
        try:
            while len(payloads) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimulationError(
                        f"process backend timed out after {self.timeout:.0f}s "
                        f"({len(payloads)}/{n} nodes reported)"
                    )
                try:
                    item = results.get(timeout=min(remaining, 0.25))
                except queue_mod.Empty:
                    # Liveness check keyed on worker exit, never on
                    # Queue.empty() (documented-unreliable: a worker
                    # that reported and exited can look dead-and-silent
                    # while its payload sits in the feeder pipe).  A
                    # dead, unreported worker starts a grace window in
                    # which we keep draining; only when nothing arrives
                    # inside it is the node declared lost.
                    dead = {
                        i: w.exitcode
                        for i, w in enumerate(workers)
                        if not w.is_alive() and i not in payloads
                    }
                    if not dead:
                        grace_until = None
                        continue
                    now = time.monotonic()
                    if grace_until is None:
                        grace_until = now + self.death_grace
                        continue
                    if now < grace_until:
                        continue
                    detail = ", ".join(
                        f"node {i} (exitcode {code})"
                        for i, code in sorted(dead.items())
                    )
                    raise SimulationError(
                        "node process(es) died without reporting a "
                        f"result: {detail}"
                    ) from None
                grace_until = None
                tag = item[0]
                if tag == ERROR:
                    raise SimulationError(
                        f"node {item[1]} failed:\n{item[2]}"
                    )
                payloads[item[1]] = item[2]
        except BaseException:
            self._shutdown(workers, inboxes, results, patience=_ERROR_PATIENCE)
            raise
        self._shutdown(workers, inboxes, results, patience=_SHUTDOWN_PATIENCE)
        unclean = {
            i: code for i, code in self.worker_exitcodes.items() if code != 0
        }
        if unclean:
            detail = ", ".join(
                f"node {i} (exitcode {code})"
                for i, code in sorted(unclean.items())
            )
            raise SimulationError(
                f"worker(s) exited uncleanly after reporting: {detail}"
            )
        if self.trace_path is not None:
            self.trace_records = merge_shards(
                self.trace_path,
                [shard_path(self.trace_path, node) for node in range(n)],
            )
        return self._assemble(payloads)

    # ------------------------------------------------------------------
    def _shutdown(self, workers, inboxes, results, *, patience: float) -> None:
        """Join workers, draining queues so none can wedge at exit.

        A worker blocked flushing its queue feeder into a full pipe
        (e.g. messages addressed to a node that already died) can only
        exit once someone drains the pipe — so inboxes are drained
        *while* joining, and ``cancel_join_thread()``/``close()`` only
        run on queues that are already empty.  Workers still alive
        after *patience* seconds are terminated.
        """
        queues = (*inboxes, results)
        join_deadline = time.monotonic() + patience
        pending = [w for w in workers if w.is_alive()]
        while pending:
            for q in queues:
                _drain_queue(q)
            for w in pending:
                w.join(timeout=0.05)
            pending = [w for w in pending if w.is_alive()]
            if time.monotonic() >= join_deadline:
                break
        for w in pending:  # pragma: no cover - only hung/wedged workers
            w.terminate()
        for w in pending:  # pragma: no cover
            w.join(timeout=5.0)
        for q in queues:
            _drain_queue(q)
            q.cancel_join_thread()
            q.close()
        self.worker_exitcodes = {
            i: w.exitcode for i, w in enumerate(workers)
        }

    # ------------------------------------------------------------------
    def _assemble(self, payloads: dict[int, dict]) -> TimeWarpResult:
        n = self.machine.num_nodes
        self.worker_pids = {i: payloads[i]["pid"] for i in range(n)}
        node_stats: list[NodeStats] = [payloads[i]["stats"] for i in range(n)]
        totals = {
            key: sum(payloads[i]["counters"][key] for i in range(n))
            for key in payloads[0]["counters"]
        }
        final_values = [0] * self.circuit.num_gates
        for payload in payloads.values():
            for index, value in payload["final_values"].items():
                final_values[index] = value
        captures: dict[tuple[int, int], int] = {}
        for payload in payloads.values():
            captures.update(payload["captures"])
        return TimeWarpResult(
            circuit_name=self.circuit.name,
            algorithm=self.assignment.algorithm,
            num_nodes=n,
            num_cycles=self.stimulus.num_cycles,
            execution_time=max(s.wall_time for s in node_stats),
            events_processed=totals["events"],
            events_rolled_back=totals["rolled_back"],
            rollbacks=totals["rollbacks"],
            app_messages=totals["app_messages"],
            anti_messages=totals["anti_messages"],
            local_messages=totals["local_messages"],
            gvt_rounds=payloads[0]["gvt_rounds"],
            lazy_reuses=0,
            peak_history=sum(p["peak_history"] for p in payloads.values()),
            migrations=0,
            final_values=final_values,
            node_stats=node_stats,
            committed_captures=sorted(
                (gate, cycle, value)
                for (gate, cycle), value in captures.items()
            ),
            backend="process",
        )
