"""The multiprocess Time Warp backend.

:class:`ProcessTimeWarpSimulator` mirrors the constructor and ``run()``
contract of the virtual :class:`~repro.warped.kernel.TimeWarpSimulator`
but executes the simulation on **real OS processes**: one
``multiprocessing`` worker per node, each hosting its partition's LP
cluster behind a :class:`~repro.warped.parallel.node.NodeEngine`.
Signal and anti-messages travel over per-node ``multiprocessing``
queues; GVT is computed by the colored token ring of
:mod:`repro.warped.parallel.protocol` and broadcast for fossil
collection; a GVT of ``+inf`` proves quiescence and shuts the ring
down.

Timing semantics differ from the virtual backend by design: the
virtual machine *models* a cluster's clock deterministically, while
this backend reports **measured** wall-clock per node.  Committed
simulation results (final signal values, DFF capture history) are
identical between the two — rollback makes the outcome independent of
message interleaving — and the differential test layer holds both
backends to that.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback

from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError, SimulationError
from repro.partition.assignment import PartitionAssignment
from repro.sim.stimulus import Stimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.node import NodeEngine
from repro.warped.parallel.protocol import (
    DONE,
    ERROR,
    GVT,
    MSG,
    TOKEN,
    T_INF,
    GvtClerk,
    GvtToken,
)
from repro.warped.stats import NodeStats, TimeWarpResult

#: Local events processed between inbox polls (rollback responsiveness
#: vs. polling overhead).
_BATCH = 16
#: Blocking-receive timeout when a node has nothing processable (s).
_IDLE_WAIT = 0.005
#: Minimum spacing between idle-triggered GVT computations (s).
_IDLE_GVT_SPACING = 0.001


def _worker_main(
    node: int,
    num_nodes: int,
    circuit: CircuitGraph,
    assignment: list[int],
    stimulus: Stimulus,
    optimism_window: int | None,
    gvt_interval: int,
    max_events: int,
    inboxes,
    result_queue,
) -> None:
    """Entry point of one node process."""
    try:
        _run_node(
            node, num_nodes, circuit, assignment, stimulus,
            optimism_window, gvt_interval, max_events,
            inboxes, result_queue,
        )
    except BaseException:  # noqa: BLE001 - ship the diagnosis to the parent
        result_queue.put((ERROR, node, traceback.format_exc()))


def _run_node(
    node: int,
    num_nodes: int,
    circuit: CircuitGraph,
    assignment: list[int],
    stimulus: Stimulus,
    optimism_window: int | None,
    gvt_interval: int,
    max_events: int,
    inboxes,
    result_queue,
) -> None:
    start = time.perf_counter()
    busy = 0.0
    engine = NodeEngine(
        circuit, assignment, node, num_nodes, stimulus,
        optimism_window=optimism_window, max_events=max_events,
    )
    clerk = GvtClerk(node=node)
    engine.schedule_initial()
    inbox = inboxes[node]
    gvt = 0.0
    done = False
    # Initiator (node 0) state.
    active_cid = 0      # computation in progress (0 = none)
    next_cid = 0
    since_gvt = 0
    gvt_computations = 0
    last_initiate = 0.0

    def flush_outbox() -> None:
        for dest, msg in engine.outbox:
            color = clerk.note_send(msg.time)
            inboxes[dest].put((MSG, color, msg))
        engine.outbox.clear()

    def local_min() -> float:
        t = engine.min_pending()
        return T_INF if t is None else float(t)

    def apply_gvt(value: float) -> None:
        nonlocal gvt, done
        engine.fossil_collect(value)
        if value == T_INF:
            done = True
        else:
            gvt = value

    def conclude(token: GvtToken) -> None:
        """Initiator: finish or extend the computation *token* closes."""
        nonlocal active_cid, since_gvt, gvt_computations
        if token.conclusive:
            value = token.gvt
            gvt_computations += 1
            for other in range(num_nodes):
                if other != node:
                    inboxes[other].put((GVT, token.cid, value))
            active_cid = 0
            since_gvt = 0
            clerk.forget_before(token.cid)
            apply_gvt(value)
        else:
            fresh = GvtToken(cid=token.cid)
            clerk.fold_token(fresh, local_min())
            inboxes[(node + 1) % num_nodes].put((TOKEN, fresh))

    def handle(item) -> None:
        tag = item[0]
        if tag == MSG:
            _, color, msg = item
            clerk.note_receive(color)
            engine.handle_remote(msg)
            flush_outbox()  # a straggler's rollback emits anti-messages
        elif tag == TOKEN:
            token = item[1]
            if node == 0 and token.cid == active_cid:
                conclude(token)  # the round came home
            else:
                clerk.fold_token(token, local_min())
                inboxes[(node + 1) % num_nodes].put((TOKEN, token))
        elif tag == GVT:
            apply_gvt(item[2])
        else:  # pragma: no cover - defensive
            raise SimulationError(f"node {node}: unknown wire item {item!r}")

    while not done:
        # 1. Drain everything the transport has delivered.
        while not done:
            try:
                item = inbox.get_nowait()
            except queue_mod.Empty:
                break
            handle(item)
        if done:
            break

        # 2. Optimistically process a slice of local events.
        worked = 0
        while worked < _BATCH and engine.processable(gvt):
            t0 = time.perf_counter()
            engine.process_one()
            flush_outbox()
            busy += time.perf_counter() - t0
            worked += 1
            since_gvt += 1

        # 3. Initiator: start a GVT computation when one is due.  Idle
        # or window-throttled nodes need GVT to advance (or prove
        # quiescence), so initiation is also idleness-triggered.
        if node == 0 and not active_cid:
            now = time.perf_counter()
            idle = not engine.processable(gvt)
            if since_gvt >= gvt_interval or (
                idle and now - last_initiate >= _IDLE_GVT_SPACING
            ):
                next_cid += 1
                active_cid = next_cid
                last_initiate = now
                token = GvtToken(cid=active_cid)
                clerk.fold_token(token, local_min())
                if num_nodes == 1:
                    conclude(token)
                else:
                    inboxes[1].put((TOKEN, token))

        # 4. Nothing processable and nothing drained: wait for the wire.
        if not worked:
            try:
                item = inbox.get(timeout=_IDLE_WAIT)
            except queue_mod.Empty:
                continue
            handle(item)

    engine.check_quiescent()
    wall = time.perf_counter() - start
    stats = engine.stats
    stats.wall_time = wall
    stats.busy_time = busy
    result_queue.put(
        (
            DONE,
            node,
            {
                "stats": stats,
                "counters": engine.counters,
                "final_values": engine.final_values(),
                "captures": dict(engine.capture_log),
                "peak_history": engine.peak_history,
                "gvt_rounds": gvt_computations,
                "pid": os.getpid(),
            },
        )
    )


class ProcessTimeWarpSimulator:
    """Run one circuit under one partition on real OS processes.

    Accepts the same (circuit, assignment, stimulus, machine) quadruple
    as the virtual backend.  The machine's ``num_nodes``,
    ``gvt_interval`` and ``optimism_window`` govern the run; its cost
    and network models are ignored (this backend measures real time).
    Policies the process backend does not implement (lazy cancellation,
    periodic checkpointing, LP migration) are rejected up front.
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        timeout: float = 120.0,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        if machine.cancellation != "aggressive":
            raise ConfigError(
                "process backend implements aggressive cancellation only"
            )
        if machine.checkpoint_interval is not None:
            raise ConfigError(
                "process backend implements incremental state saving only"
            )
        if machine.migration_threshold is not None:
            raise ConfigError("process backend does not migrate LPs")
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        self.timeout = timeout
        #: OS pid of each worker after a run — evidence the simulation
        #: really executed on separate processes.
        self.worker_pids: dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self) -> TimeWarpResult:
        """Simulate to quiescence across the worker ring."""
        n = self.machine.num_nodes
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        inboxes = [ctx.Queue() for _ in range(n)]
        results = ctx.Queue()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    node, n, self.circuit, list(self.assignment.assignment),
                    self.stimulus, self.machine.optimism_window,
                    self.machine.gvt_interval, self.max_events,
                    inboxes, results,
                ),
                daemon=True,
                name=f"timewarp-node-{node}",
            )
            for node in range(n)
        ]
        for worker in workers:
            worker.start()
        payloads: dict[int, dict] = {}
        deadline = time.monotonic() + self.timeout
        try:
            while len(payloads) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimulationError(
                        f"process backend timed out after {self.timeout:.0f}s "
                        f"({len(payloads)}/{n} nodes reported)"
                    )
                try:
                    item = results.get(timeout=min(remaining, 0.5))
                except queue_mod.Empty:
                    if any(not w.is_alive() for w in workers) and results.empty():
                        raise SimulationError(
                            "a node process died without reporting"
                        ) from None
                    continue
                tag = item[0]
                if tag == ERROR:
                    raise SimulationError(
                        f"node {item[1]} failed:\n{item[2]}"
                    )
                payloads[item[1]] = item[2]
        finally:
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():  # pragma: no cover - cleanup path
                    worker.terminate()
                    worker.join(timeout=5.0)
            for q in (*inboxes, results):
                q.cancel_join_thread()
                q.close()
        return self._assemble(payloads)

    # ------------------------------------------------------------------
    def _assemble(self, payloads: dict[int, dict]) -> TimeWarpResult:
        n = self.machine.num_nodes
        self.worker_pids = {i: payloads[i]["pid"] for i in range(n)}
        node_stats: list[NodeStats] = [payloads[i]["stats"] for i in range(n)]
        totals = {
            key: sum(payloads[i]["counters"][key] for i in range(n))
            for key in payloads[0]["counters"]
        }
        final_values = [0] * self.circuit.num_gates
        for payload in payloads.values():
            for index, value in payload["final_values"].items():
                final_values[index] = value
        captures: dict[tuple[int, int], int] = {}
        for payload in payloads.values():
            captures.update(payload["captures"])
        return TimeWarpResult(
            circuit_name=self.circuit.name,
            algorithm=self.assignment.algorithm,
            num_nodes=n,
            num_cycles=self.stimulus.num_cycles,
            execution_time=max(s.wall_time for s in node_stats),
            events_processed=totals["events"],
            events_rolled_back=totals["rolled_back"],
            rollbacks=totals["rollbacks"],
            app_messages=totals["app_messages"],
            anti_messages=totals["anti_messages"],
            local_messages=totals["local_messages"],
            gvt_rounds=payloads[0]["gvt_rounds"],
            lazy_reuses=0,
            peak_history=sum(p["peak_history"] for p in payloads.values()),
            migrations=0,
            final_values=final_values,
            node_stats=node_stats,
            committed_captures=sorted(
                (gate, cycle, value)
                for (gate, cycle), value in captures.items()
            ),
            backend="process",
        )
