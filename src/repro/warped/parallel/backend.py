"""The multiprocess Time Warp backend.

:class:`ProcessTimeWarpSimulator` mirrors the constructor and ``run()``
contract of the virtual :class:`~repro.warped.kernel.TimeWarpSimulator`
but executes the simulation on **real OS processes**: one
``multiprocessing`` worker per node, each hosting its partition's LP
cluster behind a :class:`~repro.warped.parallel.node.NodeEngine`.
Signal and anti-messages travel over per-node inboxes built by a
pluggable :class:`~repro.warped.parallel.transport.Transport` —
``queue`` (one ``multiprocessing.Queue`` per node, the portable
default) or ``shm`` (shared-memory rings carrying struct-packed
fixed-width records, with per-destination send batching and
anti-message coalescing; an order of magnitude faster on
latency-bound rings).  GVT is computed by the colored token ring of
:mod:`repro.warped.parallel.protocol` and broadcast for fossil
collection; a GVT of ``+inf`` proves quiescence and shuts the ring
down.

Each worker runs a :class:`NodeLoop` — the event/GVT loop factored out
of the process entry point so tests can drive a full ring inside one
process with plain ``queue.Queue`` transports (the GVT regression
tests do exactly that).

Timing semantics differ from the virtual backend by design: the
virtual machine *models* a cluster's clock deterministically, while
this backend reports **measured** wall-clock per node.  Committed
simulation results (final signal values, DFF capture history) are
identical between the two — rollback makes the outcome independent of
message interleaving — and the differential test layer holds both
backends to that.

Liveness at the parent is deliberately conservative: worker death is
detected from exit codes with a drain grace period (never from
``Queue.empty()``, which is documented-unreliable and can report empty
while a finished worker's payload is still in the feeder pipe), and
shutdown drains every inbox while joining so a worker blocked flushing
a full queue at exit can always get out (see ``_shutdown``).

Fault tolerance: with ``machine.checkpoint_interval`` set, every node
snapshots its full state (LP histories, pending queue, GVT clerk,
channel send log) each time an applied GVT broadcast crosses a multiple
of that virtual-time interval — the N snapshots of one computation id
form a consistent epoch (:mod:`repro.warped.parallel.recovery`).  With
``max_restarts > 0`` the parent reacts to a worker death or error by
rolling the whole ring back: it shuts the attempt down, restores every
node from the last complete epoch, replays the messages that were in
flight across the cut, and resumes the GVT ring under fresh computation
ids.  After a node exhausts its restart budget the run degrades
gracefully to the virtual backend, reported via
``TimeWarpResult.degraded``.  Committed results are bit-identical to an
uninterrupted run either way — Time Warp's interleaving independence
extends to restarts because the replay protocol neither loses nor
duplicates messages.

Fault injection for tests: ``REPRO_TW_FAULT`` is a comma-separated
list of ``node:mode[:arg]`` clauses applied inside the matching worker
— ``raise`` (throw at startup, exercising the ERROR wire path),
``exit`` (``os._exit(arg)``, silent death), ``hang`` (sleep *arg*
seconds), ``flood`` (stuff ~4k messages into node *arg*'s inbox via
``put_nowait`` — dropping, never blocking, when the inbox is bounded —
and exit without reporting, wedging this worker's queue feeder),
``exit-at`` (``os._exit`` after *arg* locally processed events — the
mid-run crash the recovery tests inject), and ``late-report`` (sleep
*arg* seconds between finishing and reporting — the race the grace
period exists for).  Clauses fire on the first attempt only, so a
respawned worker runs clean; suffix the mode with ``*`` (e.g.
``1:exit-at*:200``) to re-arm it on every attempt, which is how the
restart-budget-exhaustion path is exercised.  Malformed clauses raise
:class:`~repro.errors.ConfigError` naming the offending clause.
"""

from __future__ import annotations

import glob
import json
import multiprocessing as mp
import os
import queue as queue_mod
import tempfile
import time
import traceback
import uuid
from dataclasses import dataclass

from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError, ProtocolError, SimulationError
from repro.obs.tracer import TraceWriter, merge_shards, shard_path
from repro.partition.assignment import PartitionAssignment
from repro.sim.stimulus import Stimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel import recovery as recovery_mod
from repro.warped.parallel.node import NodeEngine
from repro.warped.parallel.protocol import (
    CKPT,
    DONE,
    ERROR,
    GVT,
    MIGCMD,
    MIGRATE,
    MSG,
    RESUME,
    TOKEN,
    T_INF,
    GvtClerk,
    GvtToken,
)
from repro.warped.parallel.transport import (
    SendBuffer,
    default_transport,
    make_transport,
)
from repro.warped.stats import NodeStats, TimeWarpResult

#: Local events processed between inbox polls (rollback responsiveness
#: vs. polling overhead).
_BATCH = 16
#: Blocking-receive timeout when a node has nothing processable (s).
_IDLE_WAIT = 0.005
#: Minimum spacing between idle-triggered GVT computations (s).
_IDLE_GVT_SPACING = 0.001
#: Batched-transport variants of the two idle knobs.  The shm ring
#: delivers in tens of microseconds (no feeder-thread pipe hop), so a
#: window-throttled ring can afford idle-triggered GVT rounds spaced
#: two orders of magnitude closer — which is exactly where the queue
#: transport's s27 throughput went (97% idle between 1 ms rounds).
_BATCH_IDLE_WAIT = 0.0005
_BATCH_IDLE_GVT_SPACING = 0.00005
#: Buffered outgoing messages (across all destinations) that force a
#: wire flush between the GVT-mandated flush points.
_WIRE_BATCH = 32
#: How long a dead-but-unreported worker's payload may stay in flight
#: before the parent declares the node lost (Queue feeder flushes are
#: normally milliseconds; this absorbs a loaded machine).
_DEATH_GRACE = 2.0
#: Shutdown join budget on the success path (workers should exit
#: almost immediately after the GVT=+inf broadcast).
_SHUTDOWN_PATIENCE = 5.0
#: Shutdown join budget on the error path (don't make a failing run
#: wait for workers that will be terminated anyway).
_ERROR_PATIENCE = 1.0
#: Minimum spacing between live-status snapshot writes per node (s).
_STATUS_INTERVAL = 0.1
#: Bounded retry on transport puts: attempts and first backoff (s).
#: Exponential doubling makes the total wait ~2.5s before the sender
#: gives up and dies with a diagnosis (which the parent can then treat
#: as a restartable node failure).
_PUT_RETRIES = 10
_PUT_BACKOFF = 0.005
#: Adaptive migration fires only when the hottest node processed at
#: least this many events since its previous load fold — wall-clock
#: busy windows on a real host are noisy at startup (imports, page
#: faults), and a migration that moves no real work just thrashes LPs.
_MIN_MIGRATION_EVENTS = 32


# ----------------------------------------------------------------------
# fault injection (test hook)
# ----------------------------------------------------------------------
#: Recognised REPRO_TW_FAULT modes (an unknown mode is a ConfigError —
#: a typo must fail loudly, not silently skip the injection).
_FAULT_MODES = frozenset(
    {"raise", "exit", "hang", "flood", "exit-at", "late-report"}
)


def _worker_faults(
    node: int, attempt: int = 0, spec: str | None = None
) -> list[tuple[str, str | None]]:
    """Parse fault clauses addressed to *node* from *spec*.

    Each clause is ``node:mode[:arg]``; a ``*`` suffix on the mode
    re-arms the fault on every restart attempt (by default a clause
    fires only on attempt 0, so a respawned worker runs clean).
    Malformed clauses — no mode, a non-integer node, an unknown mode —
    raise :class:`ConfigError` naming the clause.

    *spec* ``None`` falls back to ``REPRO_TW_FAULT`` — a convenience
    for the parent process and direct tests only.  Workers never read
    the environment: the resolved spec travels inside the
    :class:`JobSpec` the parent ships them, so two simulators running
    concurrently in one parent (a job server) cannot cross-contaminate
    through ambient process state.
    """
    if spec is None:
        spec = os.environ.get("REPRO_TW_FAULT", "")
    faults: list[tuple[str, str | None]] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2 or not parts[1]:
            raise ConfigError(
                f"REPRO_TW_FAULT clause {clause!r} has no mode "
                "(expected node:mode[:arg])"
            )
        try:
            target = int(parts[0])
        except ValueError:
            raise ConfigError(
                f"REPRO_TW_FAULT clause {clause!r} has a non-integer "
                "node (expected node:mode[:arg])"
            ) from None
        mode = parts[1]
        persistent = mode.endswith("*")
        if persistent:
            mode = mode[:-1]
        if mode not in _FAULT_MODES:
            raise ConfigError(
                f"REPRO_TW_FAULT clause {clause!r} has unknown mode "
                f"{mode!r} (one of {sorted(_FAULT_MODES)})"
            )
        if target != node:
            continue
        if attempt > 0 and not persistent:
            continue  # faults are one-shot unless re-armed with '*'
        faults.append((mode, parts[2] if len(parts) > 2 else None))
    return faults


def _apply_startup_faults(
    node: int, inboxes, attempt: int = 0, spec: str = ""
) -> bool:
    """Run *node*'s startup fault clauses; True means "do not simulate"."""
    for mode, arg in _worker_faults(node, attempt, spec):
        if mode == "raise":
            raise RuntimeError(f"injected fault in node {node}")
        if mode == "exit":
            os._exit(int(arg or 3))
        if mode == "hang":
            time.sleep(float(arg or 3600.0))
        if mode == "flood":
            dest = int(arg or 0)
            dropped = 0
            for _ in range(4096):
                try:
                    # Never block: a bounded inbox nobody drains would
                    # otherwise deadlock the injector against its own
                    # flood.  Dropping is fine — the point is wedging
                    # the feeder with a full pipe, which the successful
                    # puts already achieve.
                    inboxes[dest].put_nowait((GVT, 0, 0.0))
                except queue_mod.Full:
                    dropped += 1
            if dropped:  # pragma: no cover - depends on inbox bound
                print(
                    f"flood injector: dropped {dropped} messages against "
                    f"a full inbox {dest}",
                    flush=True,
                )
            return True  # exit without reporting; the feeder must flush
    return False


def _put_wire(q, item) -> None:
    """Put *item* with bounded retry and exponential backoff.

    Unbounded queues (the default) never raise ``Full``, so this is a
    single ``put_nowait`` on the hot path.  Against a bounded transport
    the sender backs off exponentially and, if the queue stays full past
    the retry budget (a dead or wedged peer), raises instead of blocking
    forever — turning a silent distributed deadlock into a diagnosable,
    restartable node failure.
    """
    delay = _PUT_BACKOFF
    for remaining in range(_PUT_RETRIES, 0, -1):
        try:
            q.put_nowait(item)
            return
        except queue_mod.Full:
            if remaining == 1:
                raise SimulationError(
                    f"transport put failed {_PUT_RETRIES} times against a "
                    "full queue — receiver dead or wedged"
                ) from None
            time.sleep(delay)
            delay *= 2


def _put_wire_batch(chan, items: list) -> None:
    """Batched :func:`_put_wire`: one lock acquisition per flush.

    Channels without ``put_batch`` (plain queues) degrade to per-item
    puts.  Partial writes against a bounded ring make progress across
    retries — only a channel accepting *nothing* for the whole budget
    (dead or wedged receiver) raises, with the same diagnosis and the
    same restartable-failure semantics as the single-item path.
    """
    put_batch = getattr(chan, "put_batch", None)
    if put_batch is None:
        for item in items:
            _put_wire(chan, item)
        return
    delay = _PUT_BACKOFF
    stalls = 0
    while items:
        try:
            sent = put_batch(items)
        except queue_mod.Full:  # lock timeout: peer died holding it
            sent = 0
        if sent:
            items = items[sent:]
            # Progress resets the stall budget: only a channel accepting
            # nothing at all for the whole budget is dead.
            stalls = 0
            delay = _PUT_BACKOFF
            continue
        stalls += 1
        if stalls >= _PUT_RETRIES:
            raise SimulationError(
                f"transport put failed {_PUT_RETRIES} times against a "
                "full queue — receiver dead or wedged"
            )
        time.sleep(delay)
        delay *= 2


# ----------------------------------------------------------------------
# the per-job spawn spec
# ----------------------------------------------------------------------
@dataclass
class JobSpec:
    """Everything one node needs to execute one simulation job.

    The parent materializes every knob — including the fault-injection
    spec and the live-status run id — *before* spawning or dispatching,
    so workers never consult ambient process environment.  That is what
    lets two jobs run concurrently inside one parent (a job server)
    without cross-contaminating: each ring's workers see exactly the
    spec their job shipped, nothing shared.

    The same spec drives both execution styles: the classic cold path
    (``ProcessTimeWarpSimulator`` forks a fresh ring per run) and the
    warm path (:class:`~repro.warped.parallel.ring.WorkerRing` keeps
    the ring alive and ships a new ``JobSpec`` per job over the
    workers' job queues).
    """

    circuit: CircuitGraph
    assignment: list[int]
    stimulus: Stimulus
    optimism_window: int | None
    gvt_interval: int
    max_events: int
    trace_base: str | None = None
    trace_epoch: float = 0.0
    status_base: str | None = None
    #: Run id stamped into every live-status snapshot so a dashboard
    #: reading a reused ``--live-status`` base can tell this run's
    #: snapshots from a previous (possibly wider) run's leftovers.
    run_id: str = ""
    #: Resolved fault-injection clauses ("" = none).  Parsed from
    #: ``REPRO_TW_FAULT`` once, in the parent, at simulator
    #: construction — never re-read inside a worker.
    fault_spec: str = ""
    migration_threshold: float | None = None
    migration_fraction: float = 0.05


# ----------------------------------------------------------------------
# the per-node loop (transport-agnostic, testable in-process)
# ----------------------------------------------------------------------
class NodeLoop:
    """One node's Time Warp event/GVT loop over abstract inboxes.

    ``inboxes`` only needs ``put``/``get``/``get_nowait``/``qsize`` —
    ``multiprocessing`` queues in production, ``queue.Queue`` (or
    anything list-like wrapped in one) in the in-process ring tests.
    Node 0 is the GVT initiator; every node applies broadcast GVT
    values, resets its ``since_gvt`` progress counter and compacts its
    :class:`~repro.warped.parallel.protocol.GvtClerk` tables on each
    application (both were initiator-only once — non-initiators leaked
    counter colors and an ever-growing ``since_gvt``).
    """

    def __init__(
        self,
        node: int,
        num_nodes: int,
        engine: NodeEngine,
        inboxes,
        *,
        gvt_interval: int = 512,
        tracer: TraceWriter | None = None,
        status_path: str | None = None,
        run_id: str = "",
        ckpt_interval: int | None = None,
        ckpt_dir: str | None = None,
        attempt: int = 0,
        control=None,
        migration_threshold: float | None = None,
        migration_fraction: float = 0.05,
    ) -> None:
        self.node = node
        self.num_nodes = num_nodes
        self.engine = engine
        self.inboxes = inboxes
        self.inbox = inboxes[node]
        self.gvt_interval = gvt_interval
        self.tracer = tracer
        #: Batched wire mode, advertised by the channel itself (the shm
        #: ring sets ``batched = True``; queues and the in-process ring
        #: tests' plain ``queue.Queue`` transports don't and keep the
        #: original eager per-message path).  Outgoing messages park in
        #: ``sendbuf`` — annihilating (positive, anti) pairs in place —
        #: and hit the wire in per-destination batches at
        #: :meth:`flush_wire`, which is where GVT colors and recovery
        #: sequence numbers are assigned.
        self.batched = bool(getattr(self.inbox, "batched", False))
        self.sendbuf = SendBuffer() if self.batched else None
        #: Idle knobs, transport-dependent: a ring that delivers in
        #: microseconds affords much tighter idle-GVT pacing.
        self.idle_wait = _BATCH_IDLE_WAIT if self.batched else _IDLE_WAIT
        self.idle_gvt_spacing = (
            _BATCH_IDLE_GVT_SPACING if self.batched else _IDLE_GVT_SPACING
        )
        #: Crash-recovery checkpointing: with an interval set, a state
        #: snapshot goes to ``ckpt_dir`` each time an applied GVT value
        #: crosses a multiple of the interval (virtual time units).
        #: All the per-message bookkeeping below is gated on this flag
        #: so the recovery-off wire path stays exactly as lean as before.
        self.ckpt_interval = ckpt_interval
        self.ckpt_dir = ckpt_dir
        self.recovery = ckpt_interval is not None and ckpt_dir is not None
        self.attempt = attempt
        #: Parent-facing queue for CKPT notifications (None in tests).
        self.control = control
        #: Per-destination channel sequence of the last sent message.
        self.send_seq: dict[int, int] = {}
        #: Per-source channel sequence of the last received message.
        self.recv_seq: dict[int, int] = {}
        #: Append-ordered log of remote sends per destination:
        #: ``(chan_seq, color, msg)``.  Pruned at every GVT application
        #: (entries below the GVT can never need replay).
        self.send_log: dict[int, list[tuple[int, int, object]]] = {}
        #: Highest multiple of ``ckpt_interval`` already snapshotted.
        self.ckpt_mark = 0
        #: Checkpoints written / replayed messages ingested (visible to
        #: tests and the worker summary).
        self.ckpts_written = 0
        self.replays_seen = 0
        #: Injected-fault hook: ``os._exit`` once this many events have
        #: been processed locally (None = disarmed).
        self.exit_at: int | None = None
        #: Live-status base path; each GVT application refreshes this
        #: node's single-line JSON snapshot (``<base>.node<i>``, written
        #: atomically) for ``tools/tw_top.py`` to tail.
        self.status_path = status_path
        #: Stamped into every snapshot so readers can discard stale
        #: ``<base>.node<i>`` files left behind by an earlier (wider)
        #: run that reused the same base path.
        self.run_id = run_id
        self._status_last = 0.0
        self._start = time.perf_counter()
        #: Adaptive LP migration (None disables).  Every token fold
        #: also folds this node's busy window since its last applied
        #: GVT into the token; when a round concludes, node 0 reads the
        #: hottest and coldest node off the token and — if the imbalance
        #: clears the threshold — orders the hot node to shed LPs via
        #: MIGCMD/MIGRATE (see DESIGN.md §6).
        self.migration_threshold = migration_threshold
        self.migration_fraction = migration_fraction
        self.migrating = migration_threshold is not None
        #: Busy clock / event count at the last applied GVT broadcast —
        #: the baseline of the busy window the load fold reports.
        self._busy_at_gvt = 0.0
        self._events_at_gvt = 0
        #: Computation id of the newest applied GVT broadcast.  An
        #: LP-carrying MIGRATE for epoch C adopts only once the GVT
        #: broadcast of C has been applied here — so the epoch-C
        #: checkpoint this node writes inside that application is
        #: always *pre*-adoption, matching the sender's pre-extraction
        #: epoch-C snapshot (the consistency recovery needs).
        self._last_applied_cid = 0
        self._pending_adoptions: list[tuple] = []
        self.clerk = GvtClerk(node=node)
        self.gvt = 0.0
        self.done = False
        self.busy = 0.0
        #: Measured wall time inside :meth:`handle` — transport ingest
        #: plus the rollbacks remote messages trigger.  Only maintained
        #: with tracing on (the timed wrapper shadows ``handle``), so
        #: the untraced wire path stays bare.
        self.recv_busy = 0.0
        if tracer is not None:
            self._handle_inner = self.handle
            self.handle = self._timed_handle
        #: Events processed since this node last applied a GVT value.
        self.since_gvt = 0
        #: Conclusive GVT computations this node observed (initiator:
        #: concluded; others: broadcasts applied).
        self.gvt_rounds_seen = 0
        # Initiator (node 0) state.
        self.active_cid = 0        # computation in progress (0 = none)
        self.next_cid = 0
        self.gvt_computations = 0  # conclusive computations initiated
        self.last_initiate = 0.0
        self._round_started = 0.0  # wall time active_cid was initiated
        self._round_trips = 0      # ring circuits of the active computation

    # -- plumbing ------------------------------------------------------
    def flush_outbox(self) -> None:
        if self.batched:
            # Park in the send buffer (coalescing anti-messages against
            # still-buffered positives); the wire flush happens at the
            # GVT-mandated flush points or when the buffer fills.
            buffer = self.sendbuf
            for dest, msg in self.engine.outbox:
                buffer.add(dest, msg)
            self.engine.outbox.clear()
            if len(buffer) >= _WIRE_BATCH:
                self.flush_wire()
            return
        if self.recovery:
            # Recovery wire format: each MSG carries (src, chan_seq) and
            # is logged so a restart can replay exactly the in-flight
            # tail of this channel.  The log lives *inside* this node's
            # checkpoints — a crash can never lose it.
            for dest, msg in self.engine.outbox:
                color = self.clerk.note_send(msg.time)
                seq = self.send_seq.get(dest, 0) + 1
                self.send_seq[dest] = seq
                self.send_log.setdefault(dest, []).append((seq, color, msg))
                _put_wire(self.inboxes[dest], (MSG, color, msg, self.node, seq))
            self.engine.outbox.clear()
            return
        for dest, msg in self.engine.outbox:
            color = self.clerk.note_send(msg.time)
            _put_wire(self.inboxes[dest], (MSG, color, msg))
        self.engine.outbox.clear()

    def flush_wire(self) -> None:
        """Ship every buffered message (batched transports only).

        GVT colors and recovery sequence numbers are assigned *here*,
        at wire time — never at buffer time — so a message the clerk
        has counted as sent is always really on the wire.  Calling this
        before every token fold, GVT application, and idle block keeps
        the invariant the Mattern proof (and checkpoint consistency)
        needs: whenever this node contributes to a GVT cut or snapshots
        its state, its send buffer is empty.
        """
        if not self.batched or not len(self.sendbuf):
            return
        for dest, messages in self.sendbuf.drain():
            if self.recovery:
                seq = self.send_seq.get(dest, 0)
                log = self.send_log.setdefault(dest, [])
                items = []
                for msg in messages:
                    color = self.clerk.note_send(msg.time)
                    seq += 1
                    log.append((seq, color, msg))
                    items.append((MSG, color, msg, self.node, seq))
                self.send_seq[dest] = seq
            else:
                items = [
                    (MSG, self.clerk.note_send(msg.time), msg)
                    for msg in messages
                ]
            _put_wire_batch(self.inboxes[dest], items)

    def local_min(self) -> float:
        t = self.engine.min_pending()
        return T_INF if t is None else float(t)

    def fold_token(self, token: GvtToken) -> None:
        """Fold this node's GVT contribution — and, with migration on,
        its busy window since the last applied broadcast — into *token*."""
        self.clerk.fold_token(token, self.local_min())
        if self.migrating:
            token.fold_load(
                self.node,
                int((self.busy - self._busy_at_gvt) * 1e6),
                self.engine.counters["events"] - self._events_at_gvt,
            )

    # -- GVT -----------------------------------------------------------
    def apply_gvt(self, cid: int, value: float) -> None:
        """Fossil-collect at *value* and reset per-round bookkeeping."""
        self.engine.fossil_collect(value)
        # Every node resets its progress counter and compacts clerk
        # state here — on the initiator this used to live in
        # ``conclude``; non-initiators never did either (the since_gvt
        # and clerk-growth bugs this method now owns the fix for).
        self.since_gvt = 0
        self.clerk.forget_before(cid)
        self.gvt_rounds_seen += 1
        self._last_applied_cid = max(self._last_applied_cid, cid)
        if self.migrating:
            self._busy_at_gvt = self.busy
            self._events_at_gvt = self.engine.counters["events"]
        if value == T_INF:
            self.done = True
        else:
            self.gvt = value
        if self.recovery:
            # A conclusive GVT of v proves no in-flight or future
            # message carries time < v (the fossil-collection
            # invariant), so logged sends below v can never fall in a
            # replay window — prune them here to keep the log bounded.
            for dest, entries in self.send_log.items():
                self.send_log[dest] = [
                    e for e in entries if e[2].time >= value
                ]
            if value != T_INF:
                crossed = int(value // self.ckpt_interval)
                if crossed > self.ckpt_mark:
                    self.ckpt_mark = crossed
                    self.write_checkpoint(cid, value)
        if self.tracer is not None:
            self.tracer.emit(
                "inbox_depth", depth=self._inbox_depth(), gvt=value, cid=cid
            )
        if self.status_path is not None:
            self.write_status()
        if self._pending_adoptions:
            # Deferred LP adoptions whose epoch barrier this broadcast
            # just cleared: adopt strictly *after* the epoch-``cid``
            # checkpoint above, so that snapshot stays pre-adoption
            # (mirroring the shedder's pre-extraction snapshot).
            ready = [i for i in self._pending_adoptions if i[3] <= cid]
            if ready:
                self._pending_adoptions = [
                    i for i in self._pending_adoptions if i[3] > cid
                ]
                for item in ready:
                    self._adopt(item)

    # -- crash-recovery checkpointing ----------------------------------
    def write_checkpoint(self, cid: int, gvt: float) -> None:
        """Snapshot this node's full state as its file of epoch *cid*.

        Every node applies the identical GVT broadcast sequence, so this
        fires at the same cid ring-wide and the N files form a
        consistent epoch.  The loop-level dict captures everything the
        engine snapshot does not: GVT/clerk state, channel cursors and
        the send log (in-flight replay), and the initiator counters.
        """
        t0 = time.perf_counter()
        payload = {
            "node": self.node,
            "cid": cid,
            "gvt": gvt,
            "engine": self.engine.snapshot_state(),
            "loop": self.snapshot_loop(),
        }
        path = recovery_mod.ckpt_path(self.ckpt_dir, self.node, cid)
        nbytes = recovery_mod.write_checkpoint(path, payload)
        self.ckpts_written += 1
        secs = time.perf_counter() - t0
        if self.tracer is not None:
            self.tracer.emit(
                "ckpt", cid=cid, gvt=gvt, bytes=nbytes, secs=round(secs, 6)
            )
        if self.control is not None:
            self.control.put((CKPT, self.node, cid, gvt))

    def snapshot_loop(self) -> dict:
        """The ``loop`` dict of :meth:`write_checkpoint` (test hook)."""
        return {
            "gvt": self.gvt,
            "since_gvt": self.since_gvt,
            "gvt_rounds_seen": self.gvt_rounds_seen,
            "busy": self.busy,
            "recv_busy": self.recv_busy,
            "next_cid": self.next_cid,
            "gvt_computations": self.gvt_computations,
            "clerk": self.clerk,
            "send_seq": self.send_seq,
            "recv_seq": self.recv_seq,
            "send_log": self.send_log,
            "ckpt_mark": self.ckpt_mark,
        }

    def restore_loop(self, snap: dict, *, cid_base: int) -> None:
        """Adopt a snapshotted loop state on a respawned node.

        ``cid_base`` rebases the initiator's computation-id counter
        above every color any restored clerk knows (stale colors would
        poison the fresh ring's white accounting).  ``active_cid`` needs
        no restoring: the initiator concludes a computation *before*
        applying its GVT, so a checkpoint can never capture one open.
        """
        self.gvt = snap["gvt"]
        self.since_gvt = snap["since_gvt"]
        self.gvt_rounds_seen = snap["gvt_rounds_seen"]
        self.busy = snap["busy"]
        self.recv_busy = snap["recv_busy"]
        self.gvt_computations = snap["gvt_computations"]
        self.clerk = snap["clerk"]
        self.send_seq = snap["send_seq"]
        self.recv_seq = snap["recv_seq"]
        self.send_log = snap["send_log"]
        self.ckpt_mark = snap["ckpt_mark"]
        self.next_cid = max(snap["next_cid"], cid_base)

    def _inbox_depth(self) -> int | None:
        try:
            return self.inbox.qsize()
        except (NotImplementedError, OSError):  # pragma: no cover
            return None

    def write_status(self, *, force: bool = False) -> None:
        """Atomically refresh this node's live-status snapshot file.

        Throttled to one write per ``_STATUS_INTERVAL`` (idle-triggered
        GVT rounds conclude every millisecond or so); temp-file +
        ``os.replace`` so a tailing reader never sees a partial line.
        """
        now = time.perf_counter()
        if not force and now - self._status_last < _STATUS_INTERVAL:
            return
        self._status_last = now
        counters = self.engine.counters
        snapshot = {
            "node": self.node,
            "run": self.run_id,
            "ts": round(time.time(), 3),
            "gvt": None if self.done or self.gvt == T_INF else self.gvt,
            "done": self.done,
            "events": counters["events"],
            "rollbacks": counters["rollbacks"],
            "rolled_back": counters["rolled_back"],
            "antis": counters["anti_messages"],
            "busy": round(self.busy, 4),
            "wall": round(now - self._start, 4),
            "inbox": self._inbox_depth(),
            "num_lps": len(self.engine.lps),
        }
        path = shard_path(self.status_path, self.node)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            fh.write(json.dumps(snapshot, separators=(",", ":")) + "\n")
        os.replace(tmp, path)

    def _timed_handle(self, item) -> None:
        t0 = time.perf_counter()
        self._handle_inner(item)
        self.recv_busy += time.perf_counter() - t0

    def conclude(self, token: GvtToken) -> None:
        """Initiator: finish or extend the computation *token* closes."""
        if token.conclusive:
            value = token.gvt
            self.gvt_computations += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "gvt_round",
                    cid=token.cid,
                    gvt=value,
                    final=value == T_INF,
                    latency=time.perf_counter() - self._round_started,
                    trips=self._round_trips,
                )
            decision = self._migration_decision(token, value)
            for other in range(self.num_nodes):
                if other != self.node:
                    _put_wire(self.inboxes[other], (GVT, token.cid, value))
            if decision is not None:
                hot, cold = decision
                if hot != self.node:
                    # Same channel as the GVT broadcast the hot node
                    # just got, so FIFO delivery guarantees it applies
                    # the GVT (and writes the epoch checkpoint) before
                    # it extracts and ships a single LP.
                    _put_wire(self.inboxes[hot], (MIGCMD, token.cid, value, cold))
            self.active_cid = 0
            self.apply_gvt(token.cid, value)
            if decision is not None and decision[0] == self.node:
                self.do_migrate(token.cid, value, decision[1])
        else:
            # Whites still in flight: circulate a fresh round of the
            # same computation.  Re-folding this node's contribution is
            # correct — each round is a fresh cut, and the clerk's
            # cumulative sent/received tables make every round's white
            # balance self-consistent (see DESIGN.md §6 for the audit).
            self._round_trips += 1
            fresh = GvtToken(cid=token.cid)
            self.fold_token(fresh)
            _put_wire(
                self.inboxes[(self.node + 1) % self.num_nodes], (TOKEN, fresh)
            )

    # -- adaptive LP migration -----------------------------------------
    def _migration_decision(self, token: GvtToken, value: float) -> tuple[int, int] | None:
        """Read the (hot, cold) pair off a conclusive token, or None.

        Only the initiator calls this, right before broadcasting the
        GVT.  With recovery on, migration epochs coincide with
        checkpoint epochs (the GVT value must cross a checkpoint mark),
        so every migration is bracketed by pre-migration snapshots on
        both sides and a restore can never resurrect an LP twice.
        """
        if not self.migrating or not token.conclusive or value == T_INF:
            return None
        if self.recovery and int(value // self.ckpt_interval) <= self.ckpt_mark:
            return None
        hot, cold = token.busy_max_node, token.busy_min_node
        if hot < 0 or cold < 0 or hot == cold:
            return None
        if token.ev_max < _MIN_MIGRATION_EVENTS:
            return None  # too little signal to call anyone "hot"
        if token.busy_max <= self.migration_threshold * max(token.busy_min, 0):
            return None
        return hot, cold

    def do_migrate(self, cid: int, value: float, dest: int) -> None:
        """Hot node: extract loosely-attached LPs and ship them to *dest*.

        Runs strictly after this node applied the GVT broadcast of
        *cid* (wrote its pre-migration checkpoint).  The MIGRATE blob
        is clerk-colored like an application message, so no GVT round
        — and hence no checkpoint epoch — can conclude while it is in
        flight; it is *not* sequence-logged, because a restore to epoch
        ``cid`` lands pre-migration on both ends and simply re-decides.
        """
        if self.batched:
            self.flush_wire()
        payload = self.engine.extract_migrants(dest, self.migration_fraction, cid)
        if payload is None:
            return
        color = self.clerk.note_send(int(value))
        _put_wire(self.inboxes[dest], (MIGRATE, color, self.node, cid, payload))
        if self.tracer is not None:
            self.tracer.emit(
                "migr",
                src=self.node,
                dst=dest,
                lps=len(payload["gates"]),
                pending=len(payload["queue"]),
                gvt=float(value),
            )

    def _adopt(self, item) -> None:
        """Adopt a MIGRATE blob and announce the new ownership ring-wide."""
        _, color, src, cid, payload = item
        self.clerk.note_receive(color)
        gates = self.engine.adopt_migrants(payload, src, cid)
        announcement = {"gates": gates, "owner": self.node}
        for other in range(self.num_nodes):
            if other == self.node or other == src:
                continue
            ann_color = self.clerk.note_send(int(self.gvt))
            _put_wire(
                self.inboxes[other],
                (MIGRATE, ann_color, self.node, cid, announcement),
            )

    def maybe_initiate(self) -> None:
        """Initiator: start a GVT computation when one is due.

        Idle or window-throttled nodes need GVT to advance (or prove
        quiescence), so initiation is also idleness-triggered.
        """
        if self.node != 0 or self.active_cid:
            return
        now = time.perf_counter()
        idle = not self.engine.processable(self.gvt)
        if self.since_gvt >= self.gvt_interval or (
            idle and now - self.last_initiate >= self.idle_gvt_spacing
        ):
            if self.batched:
                self.flush_wire()  # fold with an empty send buffer
            self.next_cid += 1
            self.active_cid = self.next_cid
            self.last_initiate = now
            self._round_started = now
            self._round_trips = 1
            token = GvtToken(cid=self.active_cid)
            self.fold_token(token)
            if self.num_nodes == 1:
                self.conclude(token)
            else:
                _put_wire(self.inboxes[1], (TOKEN, token))

    # -- wire dispatch -------------------------------------------------
    def handle(self, item) -> None:
        tag = item[0]
        if tag == MSG:
            # Recovery-on MSGs trail (src, chan_seq); dispatch on length
            # so the recovery-off tuple stays the 3 elements it was.
            if len(item) == 5:
                _, color, msg, src, seq = item
                # Monotonic cursor: a parent-injected replay can land
                # *after* the restored sender's first fresh message, so
                # a plain assignment could regress the cursor and a
                # later restart would replay a received message twice.
                if seq > self.recv_seq.get(src, 0):
                    self.recv_seq[src] = seq
            else:
                _, color, msg = item
            self.clerk.note_receive(color)
            self.engine.handle_remote(msg)
            self.flush_outbox()  # a straggler's rollback emits anti-messages
        elif tag == TOKEN:
            if self.batched:
                # Empty the send buffer before folding (or concluding)
                # so every message the fold's white balance counts is
                # really in flight — the invariant the GVT proof needs.
                self.flush_wire()
            token = item[1]
            if self.node == 0 and token.cid == self.active_cid:
                self.conclude(token)  # the round came home
            else:
                self.fold_token(token)
                _put_wire(
                    self.inboxes[(self.node + 1) % self.num_nodes],
                    (TOKEN, token),
                )
        elif tag == GVT:
            if self.batched:
                # A checkpoint written inside apply_gvt must capture an
                # empty send buffer (buffered messages are neither
                # logged nor clerk-counted yet).
                self.flush_wire()
            self.apply_gvt(item[1], item[2])
        elif tag == MIGCMD:
            # Initiator's verdict: this node ran hottest over the epoch
            # just concluded — shed LPs to the coldest.  FIFO with the
            # GVT broadcast on the same channel, so the epoch
            # checkpoint is already written by the time this arrives.
            _, cid, value, dest = item
            self.do_migrate(cid, value, dest)
        elif tag == MIGRATE:
            payload = item[4]
            if "lps" not in payload:
                # Ownership announcement: apply immediately.  The map
                # may briefly run ahead of a peer's, but forwarding
                # makes stale routing harmless, and the blob's white
                # imbalance stalls every GVT round until it lands.
                self.clerk.note_receive(item[1])
                self.engine.apply_ownership(
                    payload["gates"], payload["owner"], item[3]
                )
            elif item[3] <= self._last_applied_cid:
                self._adopt(item)
            else:
                # The LP blob outran the GVT broadcast of its epoch
                # (cross-channel, so no FIFO guarantee): park it until
                # apply_gvt writes the pre-adoption checkpoint.
                self._pending_adoptions.append(item)
        elif tag == RESUME:
            # Parent-replayed in-flight message of the restored epoch:
            # identical to receiving the original MSG, including the
            # clerk accounting its color deserves.
            _, src, seq, color, msg = item
            if seq > self.recv_seq.get(src, 0):
                self.recv_seq[src] = seq
            self.replays_seen += 1
            self.clerk.note_receive(color)
            self.engine.handle_remote(msg)
            self.flush_outbox()
        else:  # pragma: no cover - defensive
            raise SimulationError(
                f"node {self.node}: unknown wire item {item!r}"
            )

    # -- loop phases ---------------------------------------------------
    def poll(self) -> bool:
        """Drain everything the transport has delivered (nonblocking)."""
        handled = False
        while not self.done:
            try:
                item = self.inbox.get_nowait()
            except queue_mod.Empty:
                break
            self.handle(item)
            handled = True
        return handled

    def work_batch(self) -> int:
        """Optimistically process a slice of local events."""
        worked = 0
        while worked < _BATCH and self.engine.processable(self.gvt):
            t0 = time.perf_counter()
            self.engine.process_one()
            self.flush_outbox()
            self.busy += time.perf_counter() - t0
            worked += 1
            self.since_gvt += 1
            if (
                self.exit_at is not None
                and self.engine.counters["events"] >= self.exit_at
            ):
                # Injected mid-run crash (exit-at fault): die exactly
                # like a segfaulted worker would — no report, no flush.
                os._exit(13)
        return worked

    def run(self) -> None:
        """Drive the node to quiescence (GVT == +inf)."""
        while not self.done:
            self.poll()
            if self.done:
                break
            worked = self.work_batch()
            self.maybe_initiate()
            # Nothing processable and nothing drained: wait for the wire.
            if not worked:
                if self.batched:
                    # Never block on buffered sends — the peers need
                    # them to make the progress this node is awaiting.
                    self.flush_wire()
                try:
                    item = self.inbox.get(timeout=self.idle_wait)
                except queue_mod.Empty:
                    continue
                self.handle(item)
        if self.status_path is not None:
            self.write_status(force=True)  # the final "done" snapshot


def _worker_main(
    node: int,
    num_nodes: int,
    spec: JobSpec,
    inboxes,
    result_queue,
    recovery: dict | None = None,
) -> None:
    """Entry point of one node process (cold path: one job, then exit).

    *spec* carries the complete job — circuit, partition, stimulus,
    machine knobs, trace/status bases, the resolved fault spec — so
    the worker touches no ambient environment.  *recovery* (set iff
    checkpointing is on) carries ``attempt``, ``interval``, ``dir``,
    and — on a restart — this node's restore ``payload`` plus the
    ring-wide ``cid_base``.
    """
    attempt = recovery["attempt"] if recovery else 0
    try:
        if _apply_startup_faults(node, inboxes, attempt, spec.fault_spec):
            return
        _run_node(node, num_nodes, spec, inboxes, result_queue, recovery)
    except BaseException:  # noqa: BLE001 - ship the diagnosis to the parent
        result_queue.put((ERROR, node, traceback.format_exc()))
        return
    # Clean completion: the DONE payload is already flushed into the
    # control pipe (SimpleQueue writes synchronously) and the parent
    # joins us inside the measured run — so skip the interpreter
    # teardown of a fork-copied heap and exit immediately.  Queue
    # feeders are flushed first: the concluder's GVT=+inf broadcast may
    # still sit in a feeder thread, and _exit would silently drop it.
    for q in inboxes:
        try:
            q.close()
            join = getattr(q, "join_thread", None)
            if join is not None:
                join()
        except (OSError, ValueError):  # pragma: no cover - raced close
            pass
    os._exit(0)


def _run_node(
    node: int,
    num_nodes: int,
    spec: JobSpec,
    inboxes,
    result_queue,
    recovery: dict | None = None,
) -> None:
    """Execute one job on this node: build the engine, run to
    quiescence, report the DONE payload.  Shared verbatim between the
    cold path (:func:`_worker_main`) and the warm-ring path
    (:mod:`repro.warped.parallel.ring`), so the two are the same
    simulation with different process lifecycles.
    """
    start = time.perf_counter()
    attempt = recovery["attempt"] if recovery else 0
    tracer = None
    if spec.trace_base is not None:
        tracer = TraceWriter(
            shard_path(spec.trace_base, node, attempt),
            node=node, epoch=spec.trace_epoch, attempt=attempt,
        )
    try:
        engine = NodeEngine(
            spec.circuit, spec.assignment, node, num_nodes, spec.stimulus,
            optimism_window=spec.optimism_window, max_events=spec.max_events,
            tracer=tracer,
            migration_enabled=spec.migration_threshold is not None,
        )
        loop = NodeLoop(
            node, num_nodes, engine, inboxes,
            gvt_interval=spec.gvt_interval, tracer=tracer,
            status_path=spec.status_base,
            run_id=spec.run_id,
            ckpt_interval=recovery["interval"] if recovery else None,
            ckpt_dir=recovery["dir"] if recovery else None,
            attempt=attempt,
            control=result_queue if recovery else None,
            migration_threshold=spec.migration_threshold,
            migration_fraction=spec.migration_fraction,
        )
        for mode, arg in _worker_faults(node, attempt, spec.fault_spec):
            if mode == "exit-at":
                loop.exit_at = int(arg or 500)
        if recovery and recovery.get("payload") is not None:
            # Restart: adopt the restore epoch instead of the initial
            # schedule (schedule_initial would double-inject stimulus
            # the restored queues already carry).
            payload = recovery["payload"]
            engine.restore_state(payload["engine"])
            loop.restore_loop(payload["loop"], cid_base=recovery["cid_base"])
            # Re-publish the restore epoch under this attempt: the
            # state just restored IS that epoch, so the write is an
            # idempotent overwrite of the same cid — and it puts a
            # ckpt record (and its restore cost) in this attempt's own
            # trace shard, which the newest-attempt-only shard merge
            # would otherwise lose whenever no new checkpoint interval
            # is crossed between the restore point and quiescence.
            loop.write_checkpoint(payload["cid"], payload["gvt"])
        else:
            engine.schedule_initial()
            if loop.recovery:
                # Epoch 0: a complete restore point exists before any
                # event is processed, so a crash at *any* moment —
                # including before the first GVT-crossing checkpoint —
                # leaves something to restart from.
                loop.write_checkpoint(0, 0.0)
        loop.run()
        engine.check_quiescent()
        engine.flush_committed()
        wall = time.perf_counter() - start
        stats = engine.stats
        stats.wall_time = wall
        stats.busy_time = loop.busy
        if tracer is not None:
            # Measured attribution: compute is the event-processing
            # batch clock (local rollbacks included), transport the
            # timed wire handler (ingest + remote-triggered rollbacks),
            # idle the remainder.
            tracer.emit(
                "node_summary",
                busy=loop.busy,
                wall=wall,
                events=engine.counters["events"],
                rollbacks=engine.counters["rollbacks"],
                rolled_back=engine.counters["rolled_back"],
                antis=engine.counters["anti_messages"],
                sent_remote=engine.counters["app_messages"],
                sent_local=engine.counters["local_messages"],
                gvt_rounds=loop.gvt_rounds_seen,
                num_lps=len(engine.lps),
                attr={
                    "compute": loop.busy,
                    "transport": loop.recv_busy,
                    "idle": max(0.0, wall - loop.busy - loop.recv_busy),
                },
            )
    finally:
        if tracer is not None:
            tracer.close()
    for mode, arg in _worker_faults(node, attempt, spec.fault_spec):
        if mode == "late-report":
            # The race the parent's grace period absorbs: a sibling can
            # report-and-exit long before this node's payload appears.
            time.sleep(float(arg or 1.5))
    result_queue.put(
        (
            DONE,
            node,
            {
                "stats": stats,
                "counters": engine.counters,
                "final_values": engine.final_values(),
                "captures": dict(engine.capture_log),
                "peak_history": engine.peak_history,
                "gvt_rounds": loop.gvt_computations,
                "pid": os.getpid(),
                "ckpts": loop.ckpts_written,
                "replays": loop.replays_seen,
            },
        )
    )


def clear_status_files(base: str) -> int:
    """Delete every ``<base>.node*`` snapshot file; returns the count.

    Run start calls this so a run reusing a ``--live-status`` base
    never inherits a previous run's per-node files (a 4-node run after
    an 8-node run used to leave nodes 4-7 haunting the dashboard).
    """
    removed = 0
    for path in glob.glob(f"{base}.node*"):
        try:
            os.remove(path)
            removed += 1
        except OSError:  # pragma: no cover - raced unlink
            pass
    return removed


class _AttemptFailure(Exception):
    """Internal: one ring attempt lost node(s) but the run may restart.

    ``reason`` is the exact message the error would have carried before
    recovery existed, so a recovery-off run re-raises it verbatim.
    """

    def __init__(self, failed: set[int], reason: str) -> None:
        super().__init__(reason)
        self.failed = failed
        self.reason = reason


class _ControlQueue:
    """Feeder-less control channel (DONE/ERROR/CKPT) over ``SimpleQueue``.

    ``mp.Queue`` starts a feeder thread in each process on its first
    ``put``; for the control channel that thread's startup cost lands
    inside the measured run, right at the worker's final report.
    ``SimpleQueue`` writes the pickle straight into the pipe — no
    thread — and this wrapper adds the small Queue surface the parent
    collection loop and the shutdown drains rely on.
    """

    def __init__(self, ctx) -> None:
        self._q = ctx.SimpleQueue()

    def put(self, item) -> None:
        self._q.put(item)

    def get(self, timeout: float | None = None):
        if timeout is not None and not self._q._reader.poll(timeout):
            raise queue_mod.Empty
        return self._q.get()

    def get_nowait(self):
        return self.get(timeout=0)

    def cancel_join_thread(self) -> None:
        """No feeder thread to cancel — present for Queue compatibility."""

    def close(self) -> None:
        self._q.close()


def _drain_queue(q) -> int:
    """Discard whatever *q* currently holds; returns the count."""
    drained = 0
    while True:
        try:
            q.get_nowait()
        except (queue_mod.Empty, OSError, ValueError, ProtocolError):
            # ProtocolError: a just-terminated worker can in principle
            # leave a torn record at the shm ring frontier; shutdown
            # drains must never die over garbage they are discarding.
            return drained
        drained += 1


class ProcessTimeWarpSimulator:
    """Run one circuit under one partition on real OS processes.

    Accepts the same (circuit, assignment, stimulus, machine) quadruple
    as the virtual backend.  The machine's ``num_nodes``,
    ``gvt_interval``, ``optimism_window``, ``checkpoint_interval`` and
    ``migration_threshold``/``migration_fraction`` govern the run; its
    cost and network models are ignored (this backend measures real
    time).  Policies the process backend does not implement (lazy
    cancellation) are rejected up front;
    ``checkpoint_interval`` selects periodic consistent checkpointing,
    which here drives crash-recovery epochs rather than rollback state
    saving (the process backend always saves LP state incrementally).

    With checkpointing on and ``max_restarts > 0``, a worker death or
    error rolls the whole ring back to the last complete checkpoint
    epoch and resumes (see the module docstring); once any single node
    exhausts the restart budget the run degrades to the virtual backend
    and the result carries ``degraded=True``.

    With ``trace_path`` set, every worker streams a JSONL trace shard
    (rollbacks, GVT rounds, inbox depth, busy/idle summary) and the
    parent merges the shards into ``trace_path`` ordered by
    ``(wall time, node)`` after a successful run; shards are left in
    place on failure for post-mortem.  Restart attempts write separate
    shards (``.r<k>`` suffix) and the merge keeps each node's newest
    attempt only.
    """

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        timeout: float = 120.0,
        death_grace: float = _DEATH_GRACE,
        trace_path: str | None = None,
        status_path: str | None = None,
        max_restarts: int = 0,
        checkpoint_dir: str | None = None,
        inbox_maxsize: int | None = None,
        transport: str | None = None,
        fault_spec: str | None = None,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        if machine.cancellation != "aggressive":
            raise ConfigError(
                "process backend implements aggressive cancellation only"
            )
        if max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if max_restarts > 0 and machine.checkpoint_interval is None:
            raise ConfigError(
                "max_restarts needs machine.checkpoint_interval: restarts "
                "resume from periodic checkpoint epochs"
            )
        if machine.checkpoint_interval is not None and (
            machine.checkpoint_interval <= 0
        ):
            raise ConfigError("checkpoint_interval must be positive")
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        self.timeout = timeout
        self.death_grace = death_grace
        self.trace_path = trace_path
        #: Live-status base: each worker atomically refreshes
        #: ``<status_path>.node<i>`` with a one-line JSON snapshot at
        #: every GVT application (``tools/tw_top.py`` tails them).
        self.status_path = status_path
        #: Restart budget **per node** (0 = fail-stop, the default) and
        #: where epoch files live (None = a TemporaryDirectory for the
        #: run; set it to keep epochs for post-mortem).
        self.max_restarts = max_restarts
        self.checkpoint_dir = checkpoint_dir
        #: Bound on each node's inbox (None = unbounded).  Senders use
        #: bounded-retry ``put_nowait`` with exponential backoff, so a
        #: full inbox degrades into a diagnosable node failure instead
        #: of a silent distributed deadlock.  (The shm transport's rings
        #: are always bounded; None selects their default capacity.)
        self.inbox_maxsize = inbox_maxsize
        #: Wire transport name ("queue" or "shm"); None resolves the
        #: ``REPRO_TW_TRANSPORT`` environment default so CI can sweep
        #: the whole process-backend matrix across transports.
        self.transport = (
            transport if transport is not None else default_transport()
        )
        #: Fault-injection clauses, resolved from ``REPRO_TW_FAULT``
        #: exactly once, **here in the parent** (None = read env; pass
        #: ``""`` to force no faults regardless of environment).  The
        #: resolved string travels to workers inside their
        #: :class:`JobSpec` — workers never read ambient env, so two
        #: simulators in one parent cannot cross-contaminate.  Malformed
        #: specs fail loudly now, not inside a worker.
        self.fault_spec = (
            fault_spec
            if fault_spec is not None
            else os.environ.get("REPRO_TW_FAULT", "")
        )
        _worker_faults(-1, 0, self.fault_spec)  # eager validation
        #: Run id stamped into live-status snapshots (distinguishes
        #: this run's ``<base>.node<i>`` files from a previous run's
        #: leftovers on the same base).
        self.run_id = uuid.uuid4().hex[:12]
        #: The transport instance owns every channel any attempt of
        #: this run creates; its (idempotent) ``cleanup`` runs on all
        #: exit paths so no shm segment can outlive the simulator.
        self._transport = make_transport(self.transport)
        #: OS pid of each worker after a run — evidence the simulation
        #: really executed on separate processes.
        self.worker_pids: dict[int, int] = {}
        #: Exit code of each worker after shutdown (0 = clean).
        self.worker_exitcodes: dict[int, int | None] = {}
        #: Records in the merged trace (0 when tracing is off).
        self.trace_records = 0
        #: Ring restarts performed, and one dict per restart (failed
        #: nodes, restore epoch, replay count, downtime) — also merged
        #: into the trace as parent ``restart`` records.
        self.restarts = 0
        self.restart_log: list[dict] = []

    # ------------------------------------------------------------------
    def _make_results_queue(self, ctx):
        """Result-queue factory (overridable in liveness tests)."""
        return _ControlQueue(ctx)

    # ------------------------------------------------------------------
    def run(self) -> TimeWarpResult:
        """Simulate to quiescence across the worker ring.

        With checkpointing on and a restart budget, worker failures
        roll the ring back to the last complete epoch and resume; once
        any single node exhausts its budget the run degrades to the
        virtual backend (``result.degraded``).  The wall-clock timeout
        spans the whole run, restarts included.
        """
        n = self.machine.num_nodes
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        if self.status_path is not None:
            # A narrower run reusing the base after a wider one would
            # otherwise leave the wide run's high-numbered .node<i>
            # files for dashboards to glob forever.
            clear_status_files(self.status_path)
        recovery_on = self.machine.checkpoint_interval is not None
        trace_epoch = time.time()
        deadline = time.monotonic() + self.timeout
        self.restarts = 0
        self.restart_log = []
        restarts_by_node: dict[int, int] = {}
        ckpt_tmp = None
        ckpt_dir = None
        if recovery_on:
            if self.checkpoint_dir is None:
                ckpt_tmp = tempfile.TemporaryDirectory(prefix="tw-ckpt-")
                ckpt_dir = ckpt_tmp.name
            else:
                ckpt_dir = self.checkpoint_dir
                os.makedirs(ckpt_dir, exist_ok=True)
        attempt = 0
        resume: dict | None = None
        try:
            while True:
                try:
                    payloads = self._run_attempt(
                        ctx, n, attempt, trace_epoch, deadline, ckpt_dir,
                        resume,
                    )
                    break
                except _AttemptFailure as failure:
                    if not recovery_on or self.max_restarts == 0:
                        # Fail-stop (the pre-recovery contract): same
                        # error, same message.
                        raise SimulationError(failure.reason) from None
                    if any(
                        restarts_by_node.get(i, 0) >= self.max_restarts
                        for i in failure.failed
                    ):
                        return self._degrade(failure)
                    down_t0 = time.monotonic()
                    resume = self._prepare_resume(ckpt_dir, n)
                    if resume is None:
                        # No complete epoch on disk — a node died before
                        # writing even its epoch-0 file (startup fault).
                        # Nothing of value is lost: restart the whole
                        # run from scratch, wiping leftovers so a
                        # partial old-lineage epoch can never pair with
                        # the fresh lineage's files.
                        recovery_mod.drop_epochs_after(ckpt_dir, -1)
                    for i in failure.failed:
                        restarts_by_node[i] = restarts_by_node.get(i, 0) + 1
                    attempt += 1
                    self.restarts += 1
                    self.restart_log.append(
                        {
                            "ts": round(time.time() - trace_epoch, 6),
                            "node": -1,
                            "seq": self.restarts - 1,
                            "kind": "restart",
                            "failed": sorted(failure.failed),
                            "to_attempt": attempt,
                            "epoch": resume["cid"] if resume else None,
                            "gvt": resume["gvt"] if resume else None,
                            "replayed": resume["replayed"] if resume else 0,
                            "downtime": round(
                                time.monotonic() - down_t0, 6
                            ),
                        }
                    )
        finally:
            # Belt-and-braces: _run_attempt already cleans up per
            # attempt, but this is the backstop that guarantees no shm
            # segment survives *any* exit — KeyboardInterrupt included.
            self._transport.cleanup()
            if ckpt_tmp is not None:
                ckpt_tmp.cleanup()
        if self.trace_path is not None:
            self.trace_records = merge_shards(
                self.trace_path,
                [
                    shard_path(self.trace_path, node, k)
                    for node in range(n)
                    for k in range(attempt + 1)
                ],
                extra=self.restart_log or None,
            )
        return self._assemble(payloads)

    # ------------------------------------------------------------------
    def _run_attempt(
        self,
        ctx,
        n: int,
        attempt: int,
        trace_epoch: float,
        deadline: float,
        ckpt_dir: str | None,
        resume: dict | None,
    ) -> dict[int, dict]:
        """One ring attempt: spawn, (re)play, collect; returns payloads.

        Raises :class:`_AttemptFailure` on a restartable node failure
        (death without a report, an ERROR report) and
        :class:`SimulationError` on a terminal one (timeout, unclean
        exit after reporting).
        """
        inboxes = self._transport.make_inboxes(ctx, n, self.inbox_maxsize)
        # Parent-facing control traffic (DONE/ERROR/CKPT payloads) stays
        # on a pickle-based pipe under every transport: it carries
        # arbitrary payloads, not fixed-width records.
        results = self._make_results_queue(ctx)
        spec = JobSpec(
            circuit=self.circuit,
            assignment=list(self.assignment.assignment),
            stimulus=self.stimulus,
            optimism_window=self.machine.optimism_window,
            gvt_interval=self.machine.gvt_interval,
            max_events=self.max_events,
            trace_base=self.trace_path,
            trace_epoch=trace_epoch,
            status_base=self.status_path,
            run_id=self.run_id,
            fault_spec=self.fault_spec,
            migration_threshold=self.machine.migration_threshold,
            migration_fraction=self.machine.migration_fraction,
        )
        workers = []
        for node in range(n):
            recovery = None
            if ckpt_dir is not None:
                recovery = {
                    "attempt": attempt,
                    "interval": self.machine.checkpoint_interval,
                    "dir": ckpt_dir,
                    "payload": resume["payloads"][node] if resume else None,
                    "cid_base": resume["cid_base"] if resume else 0,
                }
            workers.append(
                ctx.Process(
                    target=_worker_main,
                    args=(node, n, spec, inboxes, results, recovery),
                    daemon=True,
                    name=f"timewarp-node-{node}",
                )
            )
        for worker in workers:
            worker.start()
        if resume is not None:
            # In-flight replay, injected after the workers start so a
            # bounded inbox can drain while it fills.  No GVT round can
            # conclude before every replayed message lands (the restored
            # clerks count them as sent-not-received whites), so no
            # checkpoint can cut this window in half.
            for dest, items in resume["replays"].items():
                for item in items:
                    _put_wire(inboxes[dest], item)
        payloads: dict[int, dict] = {}
        epoch_nodes: dict[int, set[int]] = {}
        grace_until: float | None = None
        try:
            while len(payloads) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimulationError(
                        f"process backend timed out after {self.timeout:.0f}s "
                        f"({len(payloads)}/{n} nodes reported)"
                    )
                try:
                    item = results.get(timeout=min(remaining, 0.25))
                except queue_mod.Empty:
                    # Liveness check keyed on worker exit, never on
                    # Queue.empty() (documented-unreliable: a worker
                    # that reported and exited can look dead-and-silent
                    # while its payload sits in the feeder pipe).  A
                    # dead, unreported worker starts a grace window in
                    # which we keep draining; only when nothing arrives
                    # inside it is the node declared lost.
                    dead = {
                        i: w.exitcode
                        for i, w in enumerate(workers)
                        if not w.is_alive() and i not in payloads
                    }
                    if not dead:
                        grace_until = None
                        continue
                    now = time.monotonic()
                    if grace_until is None:
                        grace_until = now + self.death_grace
                        continue
                    if now < grace_until:
                        continue
                    detail = ", ".join(
                        f"node {i} (exitcode {code})"
                        for i, code in sorted(dead.items())
                    )
                    raise _AttemptFailure(
                        set(dead),
                        "node process(es) died without reporting a "
                        f"result: {detail}",
                    ) from None
                grace_until = None
                tag = item[0]
                if tag == ERROR:
                    raise _AttemptFailure(
                        {item[1]}, f"node {item[1]} failed:\n{item[2]}"
                    )
                if tag == CKPT:
                    # Epoch bookkeeping: once every node has written its
                    # file for a cid, that epoch is the freshest restart
                    # point and everything older is garbage.
                    _, ck_node, cid, _gvt = item
                    nodes_seen = epoch_nodes.setdefault(cid, set())
                    nodes_seen.add(ck_node)
                    if len(nodes_seen) == n:
                        recovery_mod.drop_epochs_before(ckpt_dir, cid)
                        for old in [c for c in epoch_nodes if c < cid]:
                            del epoch_nodes[old]
                    continue
                payloads[item[1]] = item[2]
        except BaseException:
            self._shutdown(workers, inboxes, results, patience=_ERROR_PATIENCE)
            # Unlink this attempt's segments now — a restart builds
            # fresh channels, and a many-restart run must not pile dead
            # rings up in /dev/shm until the end.
            self._transport.cleanup()
            raise
        self._shutdown(workers, inboxes, results, patience=_SHUTDOWN_PATIENCE)
        self._transport.cleanup()
        unclean = {
            i: code for i, code in self.worker_exitcodes.items() if code != 0
        }
        if unclean:
            detail = ", ".join(
                f"node {i} (exitcode {code})"
                for i, code in sorted(unclean.items())
            )
            raise SimulationError(
                f"worker(s) exited uncleanly after reporting: {detail}"
            )
        return payloads

    # ------------------------------------------------------------------
    def _prepare_resume(self, ckpt_dir: str, n: int) -> dict | None:
        """Load the restart point: newest complete epoch + its replays.

        Epochs newer than the restart point are deleted first — they
        belong to the crashed lineage, the resumed ring will rewrite
        them, and an epoch mixing files from two lineages would pair
        incompatible message-uid streams.
        """
        found = recovery_mod.latest_complete_epoch(ckpt_dir, n)
        if found is None:  # pragma: no cover - epoch 0 always written
            return None
        cid, payloads = found
        recovery_mod.drop_epochs_after(ckpt_dir, cid)
        replays = recovery_mod.compute_replays(payloads)
        return {
            "cid": cid,
            "gvt": payloads[0]["gvt"],
            "payloads": payloads,
            "replays": replays,
            "cid_base": recovery_mod.resume_cid_base(payloads),
            "replayed": sum(len(items) for items in replays.values()),
        }

    # ------------------------------------------------------------------
    def _degrade(self, failure: _AttemptFailure) -> TimeWarpResult:
        """Finish on the virtual backend — the restart budget is spent.

        The virtual kernel recomputes the same committed results from
        scratch (rollback makes them interleaving-independent, so they
        match what the ring would have produced); slower and
        single-process, but the simulation completes instead of dying.
        """
        from repro.warped.kernel import TimeWarpSimulator

        result = TimeWarpSimulator(
            self.circuit, self.assignment, self.stimulus, self.machine,
            max_events=self.max_events,
        ).run()
        result.degraded = True
        result.restarts = self.restarts
        return result

    # ------------------------------------------------------------------
    def _shutdown(self, workers, inboxes, results, *, patience: float) -> None:
        """Join workers, draining queues so none can wedge at exit.

        A worker blocked flushing its queue feeder into a full pipe
        (e.g. messages addressed to a node that already died) can only
        exit once someone drains the pipe — so inboxes are drained
        *while* joining, and ``cancel_join_thread()``/``close()`` only
        run on queues that are already empty.  Workers still alive
        after *patience* seconds are terminated.
        """
        queues = (*inboxes, results)
        join_deadline = time.monotonic() + patience
        pending = [w for w in workers if w.is_alive()]
        while pending:
            for q in queues:
                _drain_queue(q)
            for w in pending:
                w.join(timeout=0.05)
            pending = [w for w in pending if w.is_alive()]
            if time.monotonic() >= join_deadline:
                break
        for w in pending:  # pragma: no cover - only hung/wedged workers
            w.terminate()
        for w in pending:  # pragma: no cover
            w.join(timeout=5.0)
        for q in queues:
            _drain_queue(q)
            q.cancel_join_thread()
            q.close()
        self.worker_exitcodes = {
            i: w.exitcode for i, w in enumerate(workers)
        }

    # ------------------------------------------------------------------
    def _assemble(self, payloads: dict[int, dict]) -> TimeWarpResult:
        n = self.machine.num_nodes
        self.worker_pids = {i: payloads[i]["pid"] for i in range(n)}
        return assemble_result(
            self.circuit,
            self.assignment.algorithm,
            self.stimulus.num_cycles,
            payloads,
            transport=self.transport,
            restarts=self.restarts,
        )


def assemble_result(
    circuit: CircuitGraph,
    algorithm: str,
    num_cycles: int,
    payloads: dict[int, dict],
    *,
    transport: str,
    restarts: int = 0,
) -> TimeWarpResult:
    """Merge per-node DONE payloads into one :class:`TimeWarpResult`.

    Shared by the cold driver above and the warm
    :class:`~repro.warped.parallel.ring.WorkerRing` so both execution
    styles report byte-identical result structures.
    """
    n = len(payloads)
    node_stats: list[NodeStats] = [payloads[i]["stats"] for i in range(n)]
    totals = {
        key: sum(payloads[i]["counters"][key] for i in range(n))
        for key in payloads[0]["counters"]
    }
    final_values = [0] * circuit.num_gates
    for payload in payloads.values():
        for index, value in payload["final_values"].items():
            final_values[index] = value
    captures: dict[tuple[int, int], int] = {}
    for payload in payloads.values():
        captures.update(payload["captures"])
    return TimeWarpResult(
        circuit_name=circuit.name,
        algorithm=algorithm,
        num_nodes=n,
        num_cycles=num_cycles,
        execution_time=max(s.wall_time for s in node_stats),
        events_processed=totals["events"],
        events_rolled_back=totals["rolled_back"],
        rollbacks=totals["rollbacks"],
        app_messages=totals["app_messages"],
        anti_messages=totals["anti_messages"],
        local_messages=totals["local_messages"],
        gvt_rounds=payloads[0]["gvt_rounds"],
        lazy_reuses=0,
        peak_history=sum(p["peak_history"] for p in payloads.values()),
        migrations=totals["migrations_out"],
        final_values=final_values,
        node_stats=node_stats,
        committed_captures=sorted(
            (gate, cycle, value)
            for (gate, cycle), value in captures.items()
        ),
        backend="process",
        transport=transport,
        restarts=restarts,
    )
