"""The Time Warp engine one worker process runs over its LP cluster.

This is the single-node core of the protocol the virtual kernel
(:mod:`repro.warped.kernel`) executes for the whole machine: the same
:class:`~repro.warped.lp.LogicalProcess` state saving, the same
:class:`~repro.warped.queues.NodeQueue`, the same eager rollback with
iterative cancellation cascades.  What differs is the boundary — remote
sends leave through an outbox the hosting worker loop flushes onto real
``multiprocessing`` queues, and stragglers/anti-messages arrive whenever
the transport delivers them, not on a modelled clock.

The engine is transport-agnostic on purpose: unit tests drive two
engines in one process by shuttling their outboxes by hand, and the
worker loop in :mod:`repro.warped.parallel.backend` drives it across
real OS processes.  Results are interleaving-independent either way —
that is Time Warp's correctness argument, and what the differential
suite checks.
"""

from __future__ import annotations

from collections import deque

from repro.circuit.gate import FALSE
from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.sim.event import CAPTURE, SIG, STIM
from repro.sim.stimulus import Stimulus
from repro.warped.lp import LogicalProcess
from repro.warped.messages import ANTI, Message
from repro.warped.queues import NodeQueue
from repro.warped.stats import NodeStats


class NodeEngine:
    """Optimistic executive for the LPs of one node."""

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: list[int],
        node: int,
        num_nodes: int,
        stimulus: Stimulus,
        *,
        optimism_window: int | None = None,
        max_events: int = 50_000_000,
        tracer=None,
        migration_enabled: bool = False,
    ) -> None:
        self.circuit = circuit
        self.assignment = assignment
        self.node = node
        self.num_nodes = num_nodes
        self.stimulus = stimulus
        self.window = optimism_window
        self.max_events = max_events
        #: Optional :class:`repro.obs.tracer.TraceWriter` — rollback
        #: records go out here (None keeps the hot path bare).
        self.tracer = tracer
        #: LPs hosted here, keyed by gate index.
        self.lps: dict[int, LogicalProcess] = {
            gate.index: LogicalProcess(gate, node)
            for gate in circuit.gates
            if assignment[gate.index] == node
        }
        self.queue = NodeQueue()
        self.stats = NodeStats(node=node, num_lps=len(self.lps))
        #: Remote messages produced since the last drain: (dest_node,
        #: Message) in emission order.  The worker loop owns the wire.
        self.outbox: list[tuple[int, Message]] = []
        #: Anti-messages that beat their positive copy to this node.
        self._waiting_antis: dict[int, Message] = {}
        self._pending_cancels: deque[Message] = deque()
        #: Committed DFF captures: (gate, cycle) -> captured value.
        #: Entries for rolled-back captures are removed on undo, so at
        #: quiescence the log holds exactly the committed capture
        #: history — the quantity the differential suite compares.
        self.capture_log: dict[tuple[int, int], int] = {}
        #: Largest local history (sum of LP record counts) seen at any
        #: fossil-collection point.
        self.peak_history = 0
        self.counters = {
            "events": 0,
            "rolled_back": 0,
            "rollbacks": 0,
            "app_messages": 0,
            "anti_messages": 0,
            "local_messages": 0,
            "migrations_out": 0,
            "migrations_in": 0,
            "forwarded": 0,
        }
        # Globally unique uids without coordination: stride by node.
        self._uid_next = node + 1
        #: With adaptive migration on, a message for a gate this node
        #: does not own is *forwarded* to the gate's current owner
        #: instead of being a protocol violation (the sender may hold a
        #: stale ownership map for one epoch).
        self.migration_enabled = migration_enabled
        #: Epoch (computation id) of the newest ownership update
        #: applied per gate — a stale announcement never overwrites a
        #: newer one, whatever order the wire delivers them in.
        self._owner_version: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _next_uid(self) -> int:
        uid = self._uid_next
        self._uid_next += self.num_nodes
        return uid

    def owner(self, gate_index: int) -> int:
        return self.assignment[gate_index]

    # ------------------------------------------------------------------
    def schedule_initial(self) -> None:
        """Self-schedule every initial message destined to a local LP.

        Mirrors the virtual kernel's initial schedule (DFF power-up
        resets, per-cycle captures, primary-input stimulus).  Each node
        creates only the copies *addressed to it*, so startup needs no
        cross-process traffic at all — the stimulus object is a pure
        function of its seed, replicated into every worker.
        """
        circuit = self.circuit
        stim = self.stimulus
        local = self.lps
        for ff in circuit.dffs:
            for sink in dict.fromkeys(circuit.gates[ff].fanout):
                if sink in local:
                    self.queue.push(
                        Message(0, SIG, ff, 0, FALSE, sink, self._next_uid())
                    )
        for cycle in range(stim.num_cycles):
            t = stim.cycle_time(cycle)
            if cycle > 0:
                for ff in circuit.dffs:
                    if ff in local:
                        self.queue.push(
                            Message(t, CAPTURE, ff, cycle, 0, ff, self._next_uid())
                        )
            for pi in circuit.primary_inputs:
                if pi in local:
                    self.queue.push(
                        Message(
                            t, STIM, pi, cycle, stim.value(pi, cycle),
                            pi, self._next_uid(),
                        )
                    )

    # ------------------------------------------------------------------
    # rollback / cancellation (aggressive, incremental state saving)
    # ------------------------------------------------------------------
    def _dispatch_anti(self, em: Message) -> None:
        """Cancel emission *em* wherever its positive copy went."""
        if self.owner(em.dest) == self.node:
            self._pending_cancels.append(em)
        else:
            self.outbox.append((self.owner(em.dest), em.make_anti()))
            self.counters["anti_messages"] += 1
            self.stats.anti_messages_sent += 1

    def _rollback(
        self,
        lp: LogicalProcess,
        to_key,
        cancel_uid: int | None,
        cause_msg: Message | None = None,
    ) -> None:
        undone = 0
        antis = [] if self.tracer is not None else None
        while lp.last_key >= to_key:
            record = lp.undo_last()
            undone += 1
            msg = record.msg
            if msg.prio == CAPTURE:
                self.capture_log.pop((msg.dest, msg.n), None)
            if cancel_uid is not None and msg.uid == cancel_uid:
                pass  # the annihilated positive: not re-enqueued
            else:
                self.queue.push(msg)
            for em in record.emissions:
                self._dispatch_anti(em)
            if antis is not None:
                antis.extend(em.uid for em in record.emissions)
        self.counters["rollbacks"] += 1
        self.counters["rolled_back"] += undone
        self.stats.rollbacks += 1
        self.stats.events_rolled_back += undone
        if self.tracer is not None:
            # Enriched forensics record: the triggering message and the
            # uids of every undone send — the links repro.obs.causality
            # chains into rollback cascades.
            self.tracer.emit(
                "rollback",
                rid=self.counters["rollbacks"],
                lp=lp.gate.index,
                depth=undone,
                t=int(to_key[0]),
                cause_kind="anti" if cancel_uid is not None else "straggler",
                cause_uid=None if cause_msg is None else cause_msg.uid,
                cause_src=None if cause_msg is None else cause_msg.src,
                cause_node=(
                    None if cause_msg is None else self.owner(cause_msg.src)
                ),
                cause_t=None if cause_msg is None else cause_msg.time,
                antis=antis,
            )

    def _apply_cancel(self, em: Message) -> None:
        lp = self.lps[em.dest]
        if self.queue.contains_uid(em.uid):
            self.queue.annihilate(em.uid)
        elif em.uid in lp.processed_uids:
            self._rollback(lp, em.key, cancel_uid=em.uid, cause_msg=em)
        else:
            self._waiting_antis[em.uid] = em

    def _drain_cancels(self) -> None:
        while self._pending_cancels:
            self._apply_cancel(self._pending_cancels.popleft())

    def _insert_positive(self, msg: Message) -> None:
        if msg.uid in self._waiting_antis:
            del self._waiting_antis[msg.uid]
            return
        lp = self.lps[msg.dest]
        if msg.key <= lp.last_key:
            self._rollback(lp, msg.key, cancel_uid=None, cause_msg=msg)
        self.queue.push(msg)

    # ------------------------------------------------------------------
    # the worker loop's surface
    # ------------------------------------------------------------------
    def handle_remote(self, msg: Message) -> None:
        """Ingest one message delivered by the transport.

        A message for a gate this node does not own is a protocol
        violation under static partitioning; with migration enabled it
        is a legal stale-map delivery (the sender had not yet seen the
        gate's newest ownership announcement) and is forwarded to the
        current owner.  The forwarding chain follows the finite
        migration history of the gate, so it terminates at whichever
        node hosts the LP now.
        """
        if self.owner(msg.dest) != self.node:
            if not self.migration_enabled:
                raise SimulationError(
                    f"node {self.node} received message for gate {msg.dest} "
                    f"owned by node {self.owner(msg.dest)}"
                )
            self.outbox.append((self.owner(msg.dest), msg))
            self.counters["forwarded"] += 1
            return
        if msg.sign == ANTI:
            self._apply_cancel(msg)
        else:
            self._insert_positive(msg)
        self._drain_cancels()

    def min_pending(self) -> int | None:
        """Virtual time of the earliest pending event (None = idle)."""
        return self.queue.min_time

    def processable(self, gvt: float) -> bool:
        """True iff the next pending event is inside the optimism window."""
        t = self.queue.min_time
        if t is None:
            return False
        return self.window is None or t <= gvt + self.window

    def process_one(self) -> int:
        """Process the earliest pending event; returns remote sends made.

        New remote messages land in :attr:`outbox`; the caller flushes
        them to the wire (stamping GVT colors on the way out).
        """
        msg = self.queue.pop()
        lp = self.lps[msg.dest]
        record = lp.process(msg, self._next_uid)
        self.counters["events"] += 1
        self.stats.events_processed += 1
        if self.counters["events"] > self.max_events:
            raise SimulationError(
                f"node {self.node} exceeded max_events={self.max_events}; "
                "thrashing rollbacks or workload too large"
            )
        if msg.prio == CAPTURE and record.old_output != lp.output_value:
            self.capture_log[(msg.dest, msg.n)] = lp.output_value
        remote = 0
        for em in record.emissions:
            dest_node = self.owner(em.dest)
            if dest_node == self.node:
                self.counters["local_messages"] += 1
                self.stats.messages_sent_local += 1
                self._insert_positive(em)
            else:
                self.outbox.append((dest_node, em))
                self.counters["app_messages"] += 1
                self.stats.messages_sent_remote += 1
                remote += 1
        self._drain_cancels()
        return remote

    def fossil_collect(self, gvt: float) -> None:
        """Free history below *gvt* (records the high-water mark first).

        Freed records are committed: with tracing on, each sweep emits
        one ``commit`` timeline record per LP it freed work from.
        """
        history = sum(len(lp.processed) for lp in self.lps.values())
        if history > self.peak_history:
            self.peak_history = history
        if gvt != float("inf"):
            floor_t = int(gvt)
            tracer = self.tracer
            for index, lp in self.lps.items():
                oldest = lp.processed[0].msg.time if lp.processed else None
                freed = lp.fossil_collect(floor_t)
                if tracer is not None and freed:
                    tracer.emit(
                        "commit",
                        lp=index,
                        n=freed,
                        t_lo=int(oldest),
                        t_hi=floor_t,
                    )

    def flush_committed(self) -> None:
        """Emit the quiescence ``commit`` flush: all surviving history.

        Called once GVT reached +inf — everything still held is
        committed.  With these records the trace's commit-``n`` total
        equals ``events - rolled_back`` exactly.
        """
        if self.tracer is None:
            return
        for index, lp in self.lps.items():
            if lp.processed:
                self.tracer.emit(
                    "commit",
                    lp=index,
                    n=len(lp.processed),
                    t_lo=int(lp.processed[0].msg.time),
                    t_hi=None,
                    final=True,
                )

    # ------------------------------------------------------------------
    # adaptive migration (see repro.warped.parallel.backend)
    # ------------------------------------------------------------------
    def select_migrants(self, fraction: float) -> list[int]:
        """Pick which resident gates to shed, hottest-node side.

        Same policy as the virtual kernel's ``migrate_load``: prefer
        LPs *loosely attached* to this node (few co-located fanin or
        fanout neighbours — moving them grows the cut least), then
        higher recent activity (uncommitted history size — so the move
        transfers real work), bounded by *fraction* of the residents
        and never stripping the node bare.
        """
        residents = sorted(self.lps)
        if len(residents) <= 1:
            return []
        budget = max(1, round(len(residents) * fraction))
        budget = min(budget, len(residents) - 1)
        resident_set = set(residents)
        gates = self.circuit.gates

        def attachment(gate_index: int) -> int:
            gate = gates[gate_index]
            return sum(
                1
                for other in (*gate.fanin, *gate.fanout)
                if other in resident_set
            )

        residents.sort(
            key=lambda g: (attachment(g), -len(self.lps[g].processed), g)
        )
        return residents[:budget]

    def extract_migrants(self, dest_node: int, fraction: float, version: int):
        """Strip the selected LPs out of this engine for *dest_node*.

        Returns the MIGRATE payload dict (``None`` when nothing should
        move): per-LP state exactly as :meth:`snapshot_state` packs it,
        the LPs' pending events, any anti-messages still waiting for
        their positive copies, and their capture-log entries.  This
        engine's ownership map is updated in the same step, so any
        event the remaining LPs emit toward a moved gate is routed (or
        forwarded) to *dest_node* from here on.
        """
        moving = self.select_migrants(fraction)
        if not moving:
            return None
        moved_set = set(moving)
        states = {}
        for index in moving:
            lp = self.lps.pop(index)
            states[index] = (
                list(lp._fanin_values),
                lp.output_value,
                lp.last_key,
                lp.processed,
                lp.emission_seq,
            )
        pending = self.queue.extract_dests(moved_set)
        antis = {
            uid: msg
            for uid, msg in self._waiting_antis.items()
            if msg.dest in moved_set
        }
        for uid in antis:
            del self._waiting_antis[uid]
        captures = {
            key: value
            for key, value in self.capture_log.items()
            if key[0] in moved_set
        }
        for key in captures:
            del self.capture_log[key]
        self.apply_ownership(moving, dest_node, version)
        self.counters["migrations_out"] += len(moving)
        self.stats.num_lps = len(self.lps)
        return {
            "gates": moving,
            "lps": states,
            "queue": pending,
            "waiting_antis": antis,
            "capture_log": captures,
        }

    def adopt_migrants(self, payload: dict, src: int, version: int) -> list[int]:
        """Install migrated LPs shipped by *src*; returns their gates."""
        gates = payload["gates"]
        for index, state in payload["lps"].items():
            fanin, out, last_key, processed, eseq = state
            lp = LogicalProcess(self.circuit.gates[index], self.node)
            lp._fanin_values = fanin
            lp.output_value = out
            lp.last_key = last_key
            lp.processed = processed
            lp.processed_uids = {record.msg.uid for record in processed}
            lp.emission_seq = eseq
            self.lps[index] = lp
        for msg in payload["queue"]:
            self.queue.push(msg)
        self._waiting_antis.update(payload["waiting_antis"])
        self.capture_log.update(payload["capture_log"])
        self.apply_ownership(gates, self.node, version)
        self.counters["migrations_in"] += len(gates)
        self.stats.num_lps = len(self.lps)
        return gates

    def apply_ownership(self, gates, owner: int, version: int) -> None:
        """Apply an ownership announcement, ignoring stale versions."""
        versions = self._owner_version
        for gate_index in gates:
            if version >= versions.get(gate_index, -1):
                self.assignment[gate_index] = owner
                versions[gate_index] = version

    # ------------------------------------------------------------------
    # checkpoint/restart (see repro.warped.parallel.recovery)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Everything a restarted worker needs to resume this engine.

        The returned dict references live structures; the caller must
        serialize it synchronously (the checkpoint writer pickles it in
        the same call, before the event loop runs again).
        """
        return {
            "lps": {
                index: (
                    list(lp._fanin_values),
                    lp.output_value,
                    lp.last_key,
                    lp.processed,
                    lp.emission_seq,
                )
                for index, lp in self.lps.items()
            },
            "queue": [entry[2] for entry in self.queue._list],
            "waiting_antis": self._waiting_antis,
            "capture_log": self.capture_log,
            "counters": self.counters,
            "stats": self.stats,
            "peak_history": self.peak_history,
            "uid_next": self._uid_next,
            # Migration moves LPs between nodes at epoch boundaries, so
            # residency is run-time state: the ownership map and its
            # per-gate versions are part of every snapshot, and restore
            # rebuilds the LP set from the snapshot rather than from
            # the static partition.
            "assignment": list(self.assignment),
            "owner_version": dict(self._owner_version),
        }

    def restore_state(self, snap: dict) -> None:
        """Rebuild this (freshly constructed) engine from a snapshot.

        The caller must NOT have run :meth:`schedule_initial` — the
        snapshot's pending queue already holds whatever of the initial
        schedule was still unprocessed at the epoch.
        """
        self.assignment[:] = snap["assignment"]
        self._owner_version = dict(snap["owner_version"])
        # Residency at the epoch may differ from the static partition
        # this engine was constructed with (LPs migrate): the LP set is
        # whatever the snapshot holds.
        self.lps = {
            index: LogicalProcess(self.circuit.gates[index], self.node)
            for index in snap["lps"]
        }
        for index, (fanin, out, last_key, processed, eseq) in snap["lps"].items():
            lp = self.lps[index]
            lp._fanin_values = fanin
            lp.output_value = out
            lp.last_key = last_key
            lp.processed = processed
            lp.processed_uids = {record.msg.uid for record in processed}
            lp.emission_seq = eseq
        for msg in snap["queue"]:
            self.queue.push(msg)
        self._waiting_antis = snap["waiting_antis"]
        self.capture_log = snap["capture_log"]
        self.counters = snap["counters"]
        self.stats = snap["stats"]
        self.peak_history = snap["peak_history"]
        self._uid_next = snap["uid_next"]

    # ------------------------------------------------------------------
    def check_quiescent(self) -> None:
        """Invariant checks once GVT reached +inf."""
        if self._waiting_antis:
            raise SimulationError(
                f"node {self.node}: {len(self._waiting_antis)} anti-messages "
                "never met their positive copies — kernel invariant broken"
            )
        if self.queue:
            raise SimulationError(
                f"node {self.node}: {len(self.queue)} events still pending "
                "after quiescence GVT — protocol invariant broken"
            )

    def final_values(self) -> dict[int, int]:
        """Quiescent output value of every local LP."""
        return {index: lp.output_value for index, lp in self.lps.items()}
