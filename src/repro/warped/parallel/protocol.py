"""Wire protocol of the multiprocess backend.

Everything that crosses a process boundary is a plain tuple whose first
element is one of the ``MSG``/``TOKEN``/``GVT``/``DONE``/``ERROR`` tags
below — cheap to pickle, trivial to dispatch on.

GVT is computed with a Mattern-style colored token circulating the node
ring (node 0 initiates, node ``i`` forwards to ``(i+1) % n``).  Instead
of two colors we use monotonically increasing *computation ids*: every
application message carries the id of the newest GVT computation its
sender has joined.  For computation ``C``:

- messages colored ``< C`` are *white*: the token accumulates
  ``sent - received`` over them, and a round is only conclusive when
  that count is zero (every white message has landed, so its timestamp
  is visible in some node's pending minimum);
- messages colored ``== C`` are *red*: they may still be in flight
  unaccounted, so each node tracks the minimum timestamp it ever sent
  with that color and the token folds it into ``m_send``.

When a round returns to the initiator with ``count == 0``,
``min(m_clock, m_send)`` is a valid GVT lower bound; otherwise the
initiator circulates another round of the same computation.  A GVT of
``+inf`` proves global quiescence (no pending events anywhere, nothing
in flight) and doubles as the shutdown signal.

Crash recovery rides on the same broadcast: when checkpointing is on,
every node snapshots its state upon *applying* a GVT value that crosses
the configured virtual-time interval, so the N per-node snapshots of one
computation id form a consistent epoch (see
:mod:`repro.warped.parallel.recovery`).  ``CKPT`` notifies the parent of
each written snapshot; ``RESUME`` is how the parent re-injects in-flight
messages when it restarts the ring from an epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Wire tags (first element of every inter-process tuple).
MSG = "msg"        # ("msg", color, Message[, src, chan_seq])  node -> node
TOKEN = "token"    # ("token", GvtToken)               node -> next node
GVT = "gvt"        # ("gvt", cid, value)               node 0 -> everyone
DONE = "done"      # ("done", node, payload)           node -> parent
ERROR = "error"    # ("error", node, traceback_str)    node -> parent
#: Recovery tags.  With checkpointing enabled every ``MSG`` grows a
#: ``(src, chan_seq)`` tail: the sender's node id and a per-(src, dest)
#: channel sequence number, which is what lets a restart replay exactly
#: the messages that were in flight across the restore cut.
CKPT = "ckpt"      # ("ckpt", node, cid, gvt)          node -> parent
RESUME = "resume"  # ("resume", src, chan_seq, color, Message)  parent -> node
#: Adaptive-migration tags.  The token's load fold tells node 0 which
#: node ran hottest/coldest over the concluded round; node 0 orders the
#: hot node to shed LPs (``MIGCMD``, sent on the same FIFO channel as
#: the GVT broadcast so the hot node applies the GVT first), and the
#: hot node ships them in one ``MIGRATE`` blob.  A ``MIGRATE`` with
#: ``payload=None`` is an ownership announcement: the adopting node
#: broadcasts the new (gates, owner, version) triple to every other
#: node after it has adopted, so any node that learns the new owner
#: learns it only once the owner can accept forwarded traffic.
MIGCMD = "migcmd"    # ("migcmd", cid, gvt, dest)        node 0 -> hot node
MIGRATE = "migrate"  # ("migrate", color, src, cid, payload)  node -> node

#: Virtual-time infinity (quiescence) on the wire.
T_INF = float("inf")


@dataclass
class GvtToken:
    """One circulating GVT token (one round of one computation).

    Besides the Mattern accumulators the token carries a *load fold*:
    a running argmax/argmin over each visited node's busy window (CPU
    time spent processing events since the node's previous fold, in
    integer microseconds so the fold packs into the shm transport's
    fixed-width i64 slots) plus the event count of the argmax node.
    When the round concludes, node 0 reads the hottest and coldest
    node straight off the token — the migration decision needs no
    extra collection round.
    """

    cid: int              # computation id, strictly increasing
    m_clock: float = T_INF  # min pending virtual time seen this round
    m_send: float = T_INF   # min timestamp sent with color == cid
    count: int = 0          # white (color < cid) sent - received
    # -- load fold (µs busy windows; node -1 = nothing folded yet) ----
    busy_max: int = -1
    busy_max_node: int = -1
    ev_max: int = 0         # events in the argmax node's window
    busy_min: int = -1
    busy_min_node: int = -1

    def fold(self, local_min: float, red_min: float, white_balance: int) -> None:
        """Accumulate one node's contribution into the token."""
        if local_min < self.m_clock:
            self.m_clock = local_min
        if red_min < self.m_send:
            self.m_send = red_min
        self.count += white_balance

    def fold_load(self, node: int, busy_us: int, events: int) -> None:
        """Fold one node's busy window into the hot/cold running fold.

        Ties break toward the lower node id on both sides, matching
        the virtual kernel's ``(window, -i)`` hot and ``(window, i)``
        cold keys.
        """
        if busy_us > self.busy_max or (
            busy_us == self.busy_max and node < self.busy_max_node
        ):
            self.busy_max = busy_us
            self.busy_max_node = node
            self.ev_max = events
        if (
            self.busy_min_node < 0
            or busy_us < self.busy_min
            or (busy_us == self.busy_min and node < self.busy_min_node)
        ):
            self.busy_min = busy_us
            self.busy_min_node = node

    @property
    def conclusive(self) -> bool:
        """True once every white message is accounted for."""
        return self.count == 0

    @property
    def gvt(self) -> float:
        """The GVT bound this (conclusive) round establishes."""
        return min(self.m_clock, self.m_send)


@dataclass
class GvtClerk:
    """Per-node bookkeeping for the colored-token GVT protocol.

    The clerk never touches a queue: the hosting node loop reports sends
    and receives as they happen and hands over tokens with its current
    pending minimum.
    """

    node: int
    #: Newest computation id this node has joined ("turned red" for).
    cur_cid: int = 0
    #: Cumulative application messages sent/received, keyed by color.
    sent: dict[int, int] = field(default_factory=dict)
    received: dict[int, int] = field(default_factory=dict)
    #: Min timestamp ever sent with a given color.
    send_min: dict[int, float] = field(default_factory=dict)

    # -- the node loop calls these on every application message --------
    def note_send(self, timestamp: int) -> int:
        """Record an outgoing message; returns the color to stamp on it."""
        color = self.cur_cid
        self.sent[color] = self.sent.get(color, 0) + 1
        if timestamp < self.send_min.get(color, T_INF):
            self.send_min[color] = timestamp
        return color

    def note_receive(self, color: int) -> None:
        """Record an incoming message stamped with *color*."""
        self.received[color] = self.received.get(color, 0) + 1

    # -- token handling ------------------------------------------------
    def white_balance(self, cid: int) -> int:
        """``sent - received`` over every color strictly below *cid*."""
        return sum(
            n for color, n in self.sent.items() if color < cid
        ) - sum(n for color, n in self.received.items() if color < cid)

    def fold_token(self, token: GvtToken, local_min: float) -> None:
        """Join *token*'s computation and add this node's contribution."""
        if token.cid > self.cur_cid:
            self.cur_cid = token.cid  # turn red for this computation
        token.fold(
            local_min,
            self.send_min.get(token.cid, T_INF),
            self.white_balance(token.cid),
        )

    def forget_before(self, cid: int) -> None:
        """Drop counters no future computation can consult.

        Colors below ``cid - 1`` are settled once computation ``cid``
        completes (their white balances summed to zero); folding them
        into a single floor color keeps the dicts O(1) over a long run.
        """
        floor = cid - 1
        for table in (self.sent, self.received):
            old = sum(n for color, n in table.items() if color < floor)
            for color in [c for c in table if c < floor]:
                del table[color]
            if old:
                table[floor] = table.get(floor, 0) + old
        for color in [c for c in self.send_min if c < floor]:
            del self.send_min[color]
