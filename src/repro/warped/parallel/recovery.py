"""Consistent checkpoint epochs and restart replay for the process backend.

The recovery protocol is coordinated checkpointing keyed on the GVT
broadcast.  Every node applies the identical sequence of ``(cid, value)``
GVT broadcasts (the initiator applies each locally when it concludes the
computation, everyone else on receipt over a FIFO channel), so "snapshot
when the applied value crosses a multiple of the configured virtual-time
interval" fires at the *same computation id* on every node without any
extra coordination traffic.  The N per-node snapshot files written for
one cid form an **epoch**; an epoch is usable for restart once all N
files exist and load.

What a snapshot must capture beyond the engine state is the channel
bookkeeping that makes the epoch *consistent*: messages sent before the
sender's snapshot but not yet received at the receiver's snapshot are in
flight across the cut and exist nowhere in the restored ring.  Each node
therefore stamps every remote application message with a per-(src, dest)
channel sequence number, logs its own sends, and snapshots both the log
and the per-source receive cursors.  At restart the parent replays, for
each ordered pair ``(a, b)``, exactly the log entries of ``a`` whose
sequence number exceeds ``b``'s snapshotted receive cursor — no message
is lost, none is duplicated, and Time Warp's interleaving independence
does the rest (the committed results of the resumed run are bit-identical
to an uninterrupted one).

The send log stays bounded without acknowledgement traffic: a conclusive
GVT value ``v`` proves no in-flight or future message can carry a
virtual time below ``v`` (the same invariant fossil collection relies
on), so entries with ``msg.time < v`` can never fall inside a future
epoch's replay window and are pruned at every GVT application.

Restarting *only* the dead node would be unsound: message uids are
minted in processing order, which is interleaving-dependent, so a
restored node re-executing its post-snapshot work emits logically
identical messages under fresh uids — survivors that already processed
the originals would double-process them and the uid-matched annihilation
protocol would break.  The parent therefore rolls the whole ring back to
the last complete epoch (Time Warp's dual of coordinated checkpointing);
the crash of one node costs the cluster the work since that epoch and
nothing else.

Runtime LP migration composes with this by construction rather than by
extra machinery.  Snapshots capture each engine's *current* gate
residency (the ``assignment`` map and its ``owner_version``), so a
restored epoch restores whatever ownership the migrations before it had
established.  Migration decisions are only taken at checkpoint-epoch
boundaries when recovery is on, and an LP-carrying ``MIGRATE`` record is
adopted only after its epoch's GVT (and therefore its snapshot) has been
applied — an epoch can never cut a migration in half.  ``MIGRATE`` and
``MIGCMD`` records are deliberately *not* send-log-replayed: a lost
command merely skips one rebalance round, and a lost LP transfer is
impossible because the white-message balance keeps any epoch from
concluding while one is in flight.
"""

from __future__ import annotations

import os
import pickle
import re

from repro.warped.parallel.protocol import RESUME

#: Checkpoint file format version (bump on layout changes).
CKPT_VERSION = 1

_CKPT_RE = re.compile(r"ck\.node(\d+)\.cid(\d+)$")


def ckpt_path(directory: str, node: int, cid: int) -> str:
    """The snapshot file of *node* for epoch *cid*."""
    return os.path.join(directory, f"ck.node{node}.cid{cid}")


def write_checkpoint(path: str, payload: dict) -> int:
    """Atomically persist one node's epoch snapshot; returns bytes written.

    Serialized immediately (the payload references live engine state) and
    published with ``os.replace`` so a crash mid-write can never leave a
    half-epoch file that :func:`latest_complete_epoch` would trust.
    """
    data = pickle.dumps(
        {"version": CKPT_VERSION, **payload}, protocol=pickle.HIGHEST_PROTOCOL
    )
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    return len(data)


def load_checkpoint(path: str) -> dict:
    """Load and validate one snapshot file."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if payload.get("version") != CKPT_VERSION:
        raise ValueError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"expected {CKPT_VERSION}"
        )
    return payload


def scan_epochs(directory: str) -> dict[int, dict[int, str]]:
    """All snapshot files present, as ``{cid: {node: path}}``."""
    epochs: dict[int, dict[int, str]] = {}
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return epochs
    for name in names:
        match = _CKPT_RE.match(name)
        if match:
            node, cid = int(match.group(1)), int(match.group(2))
            epochs.setdefault(cid, {})[node] = os.path.join(directory, name)
    return epochs


def latest_complete_epoch(
    directory: str, num_nodes: int
) -> tuple[int, dict[int, dict]] | None:
    """Newest epoch with all *num_nodes* snapshots loadable, or ``None``.

    Returns ``(cid, {node: payload})``.  Epochs that are present but
    fail to load (a worker terminated mid-``os.replace`` window cannot
    cause this, but a corrupted disk can) are skipped, not fatal — an
    older complete epoch is still a valid restart point.
    """
    epochs = scan_epochs(directory)
    for cid in sorted(epochs, reverse=True):
        files = epochs[cid]
        if len(files) != num_nodes:
            continue
        try:
            payloads = {node: load_checkpoint(path) for node, path in files.items()}
        except (OSError, ValueError, pickle.UnpicklingError):
            continue
        if all(payloads[node]["cid"] == cid for node in range(num_nodes)):
            return cid, payloads
    return None


def drop_epochs_after(directory: str, cid: int) -> int:
    """Delete snapshot files of epochs newer than *cid*; returns count.

    Called before a restart: epochs written after the restart point by
    the crashed lineage are stale (the resumed ring will re-execute and
    overwrite them), and a *partially* rewritten newer epoch must never
    mix files from two lineages — their uid streams differ.
    """
    dropped = 0
    for epoch_cid, files in scan_epochs(directory).items():
        if epoch_cid > cid:
            for path in files.values():
                try:
                    os.remove(path)
                    dropped += 1
                except FileNotFoundError:  # pragma: no cover - racing cleanup
                    pass
    return dropped


def drop_epochs_before(directory: str, cid: int) -> int:
    """Delete snapshot files of epochs older than *cid*; returns count."""
    dropped = 0
    for epoch_cid, files in scan_epochs(directory).items():
        if epoch_cid < cid:
            for path in files.values():
                try:
                    os.remove(path)
                    dropped += 1
                except FileNotFoundError:  # pragma: no cover - racing cleanup
                    pass
    return dropped


def compute_replays(
    payloads: dict[int, dict]
) -> dict[int, list[tuple]]:
    """The in-flight messages of an epoch, as ``{dest: [RESUME items]}``.

    For each channel ``a -> b``: the entries of ``a``'s snapshotted send
    log with sequence number beyond ``b``'s snapshotted receive cursor
    are exactly the messages sent before the cut but not received at it.
    Per-channel order is preserved (logs are append-ordered), which keeps
    the restored channels FIFO.
    """
    replays: dict[int, list[tuple]] = {}
    for src, payload in payloads.items():
        send_log: dict[int, list] = payload["loop"]["send_log"]
        for dest, entries in send_log.items():
            floor = payloads[dest]["loop"]["recv_seq"].get(src, 0)
            for seq, color, msg in entries:
                if seq > floor:
                    replays.setdefault(dest, []).append(
                        (RESUME, src, seq, color, msg)
                    )
    return replays


def resume_cid_base(payloads: dict[int, dict]) -> int:
    """First computation id safely above every color the epoch knows.

    The resumed initiator must never reuse a computation id that any
    restored clerk has already turned red for — stale colors would
    poison the white/red accounting of the fresh ring.
    """
    highest = 0
    for payload in payloads.values():
        loop = payload["loop"]
        highest = max(highest, loop["clerk"].cur_cid, loop["next_cid"])
    return highest + 1
