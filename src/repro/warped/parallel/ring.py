"""Warm, reusable Time Warp worker rings.

:class:`WorkerRing` is the warm-start counterpart of
:class:`~repro.warped.parallel.backend.ProcessTimeWarpSimulator`: it
spawns its N node processes **once** and then executes any number of
jobs on them, shipping a fresh
:class:`~repro.warped.parallel.backend.JobSpec` to every worker per
job over per-node job queues.  Each job builds a fresh
:class:`~repro.warped.parallel.node.NodeEngine` and
:class:`~repro.warped.parallel.backend.NodeLoop` inside the existing
process (engine state fully reset between jobs) and runs the exact
per-job body the cold path runs (:func:`backend._run_node`), over the
same transport channels — re-armed by draining any remnants before the
new engine schedules its first event.  Committed results are therefore
bit-identical between a cold run and a warm run of the same job, and
the differential test layer holds them to that.

What a warm ring buys: process spawn, interpreter fork, transport
construction and teardown all happen once instead of per run — the
amortization a job server needs when most traffic is small repeat
configurations (``repro.serve`` keeps a pool of these under its
result cache).

Deliberate scope limits (the cold driver remains the tool for these):

- **No crash recovery.**  A worker death or error poisons the whole
  ring — peers may be mid-GVT-round with in-flight messages — so the
  ring marks itself dead and refuses further jobs; the caller spawns a
  fresh ring (or falls back to the cold driver for checkpointed runs).
- **Aggressive cancellation only**, like the cold path.
- **One job at a time per ring.**  Concurrency comes from pooling
  rings, not from multiplexing one.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import stat
import time
import traceback

from repro.circuit.graph import CircuitGraph
from repro.errors import ConfigError, SimulationError
from repro.obs.tracer import merge_shards, shard_path
from repro.partition.assignment import PartitionAssignment
from repro.sim.stimulus import Stimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.backend import (
    DONE,
    ERROR,
    JobSpec,
    _ControlQueue,
    _drain_queue,
    _run_node,
    assemble_result,
    clear_status_files,
)
from repro.warped.parallel.transport import default_transport, make_transport
from repro.warped.stats import TimeWarpResult

#: Sentinel telling a ring worker to exit its job loop.
_STOP = None
#: Join budget when closing a healthy ring.
_CLOSE_PATIENCE = 5.0
#: How long a worker waits at the arming barrier for its peers.  A
#: peer can be late only if it is wedged or dead, and the parent's
#: collection loop notices a death within a fraction of a second and
#: terminates the ring — so this is a backstop, not a tuning knob.
_ARM_PATIENCE = 60.0


def _close_inherited_sockets() -> None:
    """Close every socket fd this forked worker inherited.

    Ring workers are forked from whatever process owns the pool — in
    ``repro.serve`` that is a live HTTP server, so the fork snapshots
    the listening socket and any open client connections.  A worker
    never needs a socket (its plumbing is pipes and shared memory),
    but its inherited copies keep those connections half-open: the
    server can close its end and the client still sees no FIN while a
    long-lived pooled worker holds the fd.  Closing them at birth
    restores normal connection teardown.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - non-Linux
        return
    for fd in fds:
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:  # pragma: no cover - raced or invalid fd
            continue


def _ring_worker_main(
    node: int, num_nodes: int, inboxes, job_queue, barrier, results
) -> None:
    """Persistent worker: execute job specs until the STOP sentinel.

    Every iteration re-arms this node's transport channel (draining
    remnants a poisoned previous job might have left) and then runs
    the shared per-job body.  Any failure reports ERROR and ends the
    worker — ring integrity is unknown after a mid-job error, so the
    whole ring dies with it.

    The arming *barrier* between drain and run is load-bearing: job
    specs arrive over per-node queues, so one node can receive the job
    and start simulating while a peer is still blocked waiting for its
    own copy.  The early starter's first remote messages would land in
    the late peer's inbox only to be thrown away by that peer's arming
    drain — messages the sender's GVT clerk counts as sent, so no GVT
    round could ever balance and the job would livelock.  (The shm
    transport hit this reliably; queue-transport latency merely hid
    it.)  No node may send until every node has drained and armed.
    """
    _close_inherited_sockets()
    try:
        while True:
            item = job_queue.get()
            if item is _STOP:
                break
            seq, spec = item
            # Re-arm the transport: a healthy previous job quiesced with
            # empty channels (GVT == +inf proves it), but drain anyway
            # so one poisoned job can never leak messages into the next.
            _drain_queue(inboxes[node])
            barrier.wait(timeout=_ARM_PATIENCE)
            _run_node(node, num_nodes, spec, inboxes, results)
    except BaseException:  # noqa: BLE001 - ship the diagnosis, then die
        results.put((ERROR, node, traceback.format_exc()))
        return
    # Clean shutdown mirrors the cold worker: flush queue feeders (a
    # peer may still need our last broadcast), then skip interpreter
    # teardown of the fork-copied heap.
    for q in inboxes:
        try:
            q.close()
            join = getattr(q, "join_thread", None)
            if join is not None:
                join()
        except (OSError, ValueError):  # pragma: no cover - raced close
            pass
    os._exit(0)


class WorkerRing:
    """N warm node processes executing one simulation job at a time.

    Spawn once with :meth:`start`, then call :meth:`run_job` any number
    of times; :meth:`close` shuts the ring down.  Also usable as a
    context manager.  ``jobs_run`` counts completed jobs; ``alive``
    turns False the moment a job poisons the ring (after which
    :meth:`run_job` raises and the ring only accepts :meth:`close`).
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        transport: str | None = None,
        inbox_maxsize: int | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.transport = (
            transport if transport is not None else default_transport()
        )
        self.inbox_maxsize = inbox_maxsize
        self._transport = make_transport(self.transport)
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._inboxes = None
        self._job_queues: list = []
        self._results: _ControlQueue | None = None
        self._workers: list = []
        self._job_seq = 0
        self.jobs_run = 0
        self._started = False
        self._dead = False
        #: OS pid of each worker (evidence of real process execution,
        #: and of reuse: stable across jobs).
        self.worker_pids: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the ring is started, healthy, and not closed."""
        return (
            self._started
            and not self._dead
            and all(w.is_alive() for w in self._workers)
        )

    # ------------------------------------------------------------------
    def start(self) -> "WorkerRing":
        """Spawn the worker processes (idempotent)."""
        if self._started:
            return self
        n = self.num_nodes
        self._inboxes = self._transport.make_inboxes(
            self._ctx, n, self.inbox_maxsize
        )
        self._job_queues = [self._ctx.SimpleQueue() for _ in range(n)]
        self._barrier = self._ctx.Barrier(n)
        self._results = _ControlQueue(self._ctx)
        self._workers = [
            self._ctx.Process(
                target=_ring_worker_main,
                args=(
                    node, n, self._inboxes,
                    self._job_queues[node], self._barrier, self._results,
                ),
                daemon=True,
                name=f"timewarp-ring-{node}",
            )
            for node in range(n)
        ]
        for worker in self._workers:
            worker.start()
        self.worker_pids = {i: w.pid for i, w in enumerate(self._workers)}
        self._started = True
        return self

    def __enter__(self) -> "WorkerRing":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run_job(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        timeout: float = 120.0,
        trace_path: str | None = None,
        status_path: str | None = None,
        run_id: str = "",
    ) -> TimeWarpResult:
        """Execute one job on the warm ring; returns its result.

        Accepts the cold driver's (circuit, assignment, stimulus,
        machine) quadruple with the same validation.  On any worker
        error, death, or timeout the ring is poisoned: remaining
        workers are terminated and :class:`SimulationError` carries the
        diagnosis — the caller replaces the ring, it does not retry on
        it.
        """
        if not self._started:
            self.start()
        if self._dead:
            raise SimulationError("worker ring is dead (a prior job failed)")
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        if machine.num_nodes != self.num_nodes:
            raise SimulationError(
                f"machine has {machine.num_nodes} nodes but this ring "
                f"has {self.num_nodes}"
            )
        if machine.cancellation != "aggressive":
            raise ConfigError(
                "worker rings implement aggressive cancellation only"
            )
        if machine.checkpoint_interval is not None:
            raise ConfigError(
                "warm worker rings do not checkpoint; use "
                "ProcessTimeWarpSimulator for crash-recovery runs"
            )
        if status_path is not None:
            clear_status_files(status_path)
        self._job_seq += 1
        spec = JobSpec(
            circuit=circuit,
            assignment=list(assignment.assignment),
            stimulus=stimulus,
            optimism_window=machine.optimism_window,
            gvt_interval=machine.gvt_interval,
            max_events=max_events,
            trace_base=trace_path,
            trace_epoch=time.time(),
            status_base=status_path,
            run_id=run_id,
            fault_spec="",  # faults are a cold-path test hook
            migration_threshold=machine.migration_threshold,
            migration_fraction=machine.migration_fraction,
        )
        for q in self._job_queues:
            q.put((self._job_seq, spec))
        payloads = self._collect(timeout)
        self.jobs_run += 1
        if trace_path is not None:
            merge_shards(
                trace_path,
                [shard_path(trace_path, node) for node in range(self.num_nodes)],
            )
        return assemble_result(
            circuit,
            assignment.algorithm,
            stimulus.num_cycles,
            payloads,
            transport=self.transport,
        )

    # ------------------------------------------------------------------
    def _collect(self, timeout: float) -> dict[int, dict]:
        """Gather one DONE payload per node, or poison the ring."""
        n = self.num_nodes
        deadline = time.monotonic() + timeout
        payloads: dict[int, dict] = {}
        try:
            while len(payloads) < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimulationError(
                        f"warm ring timed out after {timeout:.0f}s "
                        f"({len(payloads)}/{n} nodes reported)"
                    )
                try:
                    item = self._results.get(timeout=min(remaining, 0.25))
                except queue_mod.Empty:
                    dead = {
                        i: w.exitcode
                        for i, w in enumerate(self._workers)
                        if not w.is_alive()
                    }
                    if dead:
                        detail = ", ".join(
                            f"node {i} (exitcode {code})"
                            for i, code in sorted(dead.items())
                        )
                        raise SimulationError(
                            f"ring worker(s) died mid-job: {detail}"
                        ) from None
                    continue
                tag = item[0]
                if tag == ERROR:
                    raise SimulationError(
                        f"node {item[1]} failed:\n{item[2]}"
                    )
                if tag == DONE:
                    payloads[item[1]] = item[2]
                # Anything else (stray CKPT etc.) cannot occur: warm
                # rings never enable recovery.
        except BaseException:
            self._poison()
            raise
        return payloads

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Forcibly tear the ring down (idempotent).

        The cancellation path for a job already executing on this ring:
        there is no safe way to stop mid-GVT workers and keep the ring,
        so cancellation costs the whole ring.  The in-flight
        :meth:`run_job` (on whichever thread is blocked in it) observes
        worker death and raises :class:`SimulationError`.
        """
        if self._started and not self._dead:
            self._poison()

    def _poison(self) -> None:
        """Mark the ring unusable and tear its processes down."""
        self._dead = True
        for w in self._workers:
            if w.is_alive():
                w.terminate()
        for w in self._workers:
            w.join(timeout=5.0)
        self._release_channels()

    def _release_channels(self) -> None:
        for q in (*(self._inboxes or ()), self._results):
            if q is None:
                continue
            try:
                _drain_queue(q)
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._transport.cleanup()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the ring down (idempotent)."""
        if not self._started:
            return
        if not self._dead:
            for q in self._job_queues:
                try:
                    q.put(_STOP)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            join_deadline = time.monotonic() + _CLOSE_PATIENCE
            pending = [w for w in self._workers if w.is_alive()]
            while pending and time.monotonic() < join_deadline:
                for q in (*self._inboxes, self._results):
                    _drain_queue(q)
                for w in pending:
                    w.join(timeout=0.05)
                pending = [w for w in pending if w.is_alive()]
            for w in pending:  # pragma: no cover - wedged worker
                w.terminate()
                w.join(timeout=5.0)
            self._release_channels()
            self._dead = True
