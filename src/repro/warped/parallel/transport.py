"""Pluggable wire transports for the multiprocess Time Warp backend.

The :class:`~repro.warped.parallel.backend.NodeLoop` has been
transport-agnostic since PR 2 — it only ever calls ``put_nowait`` /
``get`` / ``get_nowait`` / ``qsize`` on its inboxes.  This module makes
the substrate an explicit, selectable :class:`Transport`:

- ``queue`` — the original per-node ``multiprocessing.Queue`` inboxes.
  Correct and portable, but every message costs a pickle round-trip plus
  a feeder-thread hop through an OS pipe (~0.5–1 ms of latency per
  wakeup), which is what capped the process backend at a few thousand
  events/sec (BENCH_1.json, ROADMAP top item).

- ``shm`` — one ``multiprocessing.shared_memory`` ring buffer per node,
  carrying **struct-packed fixed-width records** (no pickling) of every
  wire tag in :mod:`repro.warped.parallel.protocol`.  Producers batch
  under a per-ring lock; the single consumer (the owning node) is
  lock-free; blocked readers poll with ``sched_yield`` so a delivery
  costs tens of microseconds instead of a pipe wakeup.

Ring layout (one segment per node, created by the parent)::

    offset 0   u64  write cursor   (monotonic record count, producer-owned)
    offset 8   u64  read cursor    (monotonic record count, consumer-owned)
    offset 16  u64  capacity       (records; for attach-time validation)
    offset 24  u64  reserved
    offset 32  capacity x RECORD_SIZE record slots (cursor % capacity)

Cursors are monotonic, so ``write - read`` is the queue depth and
``capacity - (write - read)`` the free space; both cursors live in their
own 8-byte slots and are only ever stored by their owning side (the
producer lock serialises writers against each other, never against the
reader).  A producer copies its record bytes first and publishes the new
write cursor last, so the consumer can never observe a slot before its
bytes are complete; the checksum-retry in ``get_nowait`` additionally
absorbs any store-reordering window on weakly ordered hardware.

Every record is :data:`RECORD_SIZE` bytes::

    <BB2xI  u8 tag, u8 flags, 2 pad, u32 crc
    10q     ten int64 fields   (meaning depends on the tag)
    2d      two float64 fields (GVT values, token minima)

The crc is CRC-32 over the record with its own crc field zeroed, so
*any* error burst up to 32 bits — in particular any single corrupt
byte, including inside the crc itself — is detected and surfaced as a
:class:`~repro.errors.ProtocolError` — never a bare ``struct.error`` or
a silently wrong ``Message``.

Batching and anti-message coalescing live in :class:`SendBuffer`: the
node loop parks outgoing messages per destination and flushes them as
one locked batch.  A (positive, anti) pair that meets *inside* the
buffer annihilates before reaching the wire at all — sound because the
pair was not yet GVT-colored or sequence-stamped (both happen at flush
time), so the wire looks exactly as if the receiver had annihilated the
pair in its input queue, an interleaving Time Warp already tolerates.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import select
import struct
import time
import uuid
import zlib
from multiprocessing import shared_memory

from repro.errors import ConfigError, ProtocolError
from repro.warped.messages import ANTI, POSITIVE, Message
from repro.warped.parallel.protocol import (
    CKPT,
    GVT,
    MIGCMD,
    MIGRATE,
    MSG,
    RESUME,
    TOKEN,
    GvtToken,
)

# ----------------------------------------------------------------------
# fixed-width record codec
# ----------------------------------------------------------------------
_RECORD = struct.Struct("<BB2xI10q2d")
#: Bytes per wire record (104: 8 header + 10 int64 + 2 float64).
RECORD_SIZE = _RECORD.size
#: CRC field location in the header (u32 at bytes 4-8).
_CRC = struct.Struct("<I")
_CRC_OFF = 4
_CRC_ZERO = b"\x00\x00\x00\x00"

#: Tag byte of each wire tuple kind.
_TAG_MSG = 1
_TAG_TOKEN = 2
_TAG_GVT = 3
_TAG_CKPT = 4
_TAG_RESUME = 5
_TAG_MIGCMD = 6
_TAG_MIGR = 7

#: Payload bytes per MIGRATE chunk record: the 10 i64 slots minus the
#: six header ints (color, src, cid, chunk index, chunk count, chunk
#: length) leave four slots of 8 bytes each.
_MIG_HDR_INTS = 6
_MIG_CHUNK_BYTES = (10 - _MIG_HDR_INTS) * 8

#: Record flag bits.
_F_ANTI = 0x01    # the carried Message is an anti-message
_F_SEQ = 0x02     # the MSG carries its recovery (src, chan_seq) tail

_CURSOR = struct.Struct("<Q")
_HEADER_SIZE = 32
_WRITE_OFF = 0
_READ_OFF = 8
_CAP_OFF = 16

#: Internal tag of a decoded MIGRATE chunk record (never leaves the
#: channel: ``get_nowait`` reassembles chunk runs into full tuples).
_MIGCHUNK = "_migchunk"


def _pack(tag: int, flags: int, ints, f0: float = 0.0, f1: float = 0.0) -> bytes:
    fields = list(ints) + [0] * (10 - len(ints))
    try:
        raw = bytearray(_RECORD.pack(tag, flags, 0, *fields, f0, f1))
    except struct.error as exc:
        raise ProtocolError(
            f"wire field out of range for a fixed-width record: {exc}"
        ) from None
    # CRC-32 over the record with its own crc field zeroed (exactly how
    # _pack just produced it).  A full-width CRC detects every error
    # burst of up to 32 bits — in particular any single corrupt byte,
    # header, payload, or the crc itself — and zlib computes it at C
    # speed, which matters on the per-record hot path.
    _CRC.pack_into(raw, _CRC_OFF, zlib.crc32(raw))
    return bytes(raw)


def encode_record(item: tuple) -> bytes:
    """Pack one wire tuple into its :data:`RECORD_SIZE`-byte record."""
    tag = item[0]
    if tag == MSG:
        if len(item) == 5:
            _, color, msg, src, seq = item
            flags = _F_SEQ
        else:
            _, color, msg = item
            src = seq = 0
            flags = 0
        if msg.sign == ANTI:
            flags |= _F_ANTI
        return _pack(
            _TAG_MSG, flags,
            (color, msg.time, msg.prio, msg.src, msg.n,
             msg.value, msg.dest, msg.uid, src, seq),
        )
    if tag == TOKEN:
        token = item[1]
        return _pack(
            _TAG_TOKEN, 0,
            (token.cid, token.count, token.busy_max, token.busy_max_node,
             token.ev_max, token.busy_min, token.busy_min_node),
            token.m_clock, token.m_send,
        )
    if tag == GVT:
        return _pack(_TAG_GVT, 0, (item[1],), float(item[2]))
    if tag == MIGCMD:
        _, cid, gvt, dest = item
        return _pack(_TAG_MIGCMD, 0, (cid, dest), float(gvt))
    if tag == CKPT:
        _, node, cid, gvt = item
        return _pack(_TAG_CKPT, 0, (node, cid), float(gvt))
    if tag == RESUME:
        _, src, seq, color, msg = item
        flags = _F_SEQ | (_F_ANTI if msg.sign == ANTI else 0)
        return _pack(
            _TAG_RESUME, flags,
            (color, msg.time, msg.prio, msg.src, msg.n,
             msg.value, msg.dest, msg.uid, src, seq),
        )
    raise ProtocolError(f"cannot encode wire item with tag {tag!r}")


def encode_migrate(item: tuple) -> list[bytes]:
    """Pack one ``MIGRATE`` tuple into its chunked record sequence.

    The payload (LP states + pending events, or ``None`` for an
    ownership announcement) has no fixed width, so it is pickled and
    split across :data:`_MIG_CHUNK_BYTES`-byte chunks, each a normal
    CRC-guarded record.  The chunks must land contiguously in a ring —
    :meth:`ShmChannel.put_nowait` writes them all-or-nothing — and the
    consumer reassembles them in :meth:`ShmChannel.get_nowait`.
    """
    _, color, src, cid, payload = item
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    nchunks = max(1, (len(blob) + _MIG_CHUNK_BYTES - 1) // _MIG_CHUNK_BYTES)
    records = []
    for idx in range(nchunks):
        chunk = blob[idx * _MIG_CHUNK_BYTES:(idx + 1) * _MIG_CHUNK_BYTES]
        ints = [color, src, cid, idx, nchunks, len(chunk)]
        for off in range(0, _MIG_CHUNK_BYTES, 8):
            ints.append(
                int.from_bytes(
                    chunk[off:off + 8].ljust(8, b"\x00"),
                    "little", signed=True,
                )
            )
        records.append(_pack(_TAG_MIGR, 0, ints))
    return records


def _decode_migrate_chunk(ints) -> tuple:
    """One MIGRATE chunk record -> (color, src, cid, idx, nchunks, bytes)."""
    color, src, cid, idx, nchunks, length = ints[:_MIG_HDR_INTS]
    if not 0 <= length <= _MIG_CHUNK_BYTES:
        raise ProtocolError(f"migrate chunk length {length} out of range")
    data = b"".join(
        value.to_bytes(8, "little", signed=True)
        for value in ints[_MIG_HDR_INTS:]
    )[:length]
    return color, src, cid, idx, nchunks, data


def decode_record(data: bytes) -> tuple:
    """Unpack one record; the exact tuple :func:`encode_record` packed.

    Raises :class:`ProtocolError` on a truncated buffer, a checksum
    mismatch, or an unknown tag byte.
    """
    if len(data) != RECORD_SIZE:
        raise ProtocolError(
            f"truncated wire record: {len(data)} bytes, "
            f"expected {RECORD_SIZE}"
        )
    want = _CRC.unpack_from(data, _CRC_OFF)[0]
    have = zlib.crc32(
        data[_CRC_OFF + 4:],
        zlib.crc32(_CRC_ZERO, zlib.crc32(data[:_CRC_OFF])),
    )
    if have != want:
        raise ProtocolError(
            f"corrupt wire record: checksum {have:#010x} != {want:#010x}"
        )
    tag = data[0]
    flags = data[1]
    fields = _RECORD.unpack(data)
    ints = fields[3:13]
    f0, f1 = fields[13], fields[14]
    if tag == _TAG_MSG or tag == _TAG_RESUME:
        msg = Message(
            ints[1], ints[2], ints[3], ints[4], ints[5], ints[6], ints[7],
            ANTI if flags & _F_ANTI else POSITIVE,
        )
        if tag == _TAG_RESUME:
            return (RESUME, ints[8], ints[9], ints[0], msg)
        if flags & _F_SEQ:
            return (MSG, ints[0], msg, ints[8], ints[9])
        return (MSG, ints[0], msg)
    if tag == _TAG_TOKEN:
        return (
            TOKEN,
            GvtToken(
                cid=ints[0], m_clock=f0, m_send=f1, count=ints[1],
                busy_max=ints[2], busy_max_node=ints[3], ev_max=ints[4],
                busy_min=ints[5], busy_min_node=ints[6],
            ),
        )
    if tag == _TAG_GVT:
        return (GVT, ints[0], f0)
    if tag == _TAG_CKPT:
        return (CKPT, ints[0], ints[1], f0)
    if tag == _TAG_MIGCMD:
        return (MIGCMD, ints[0], f0, ints[1])
    if tag == _TAG_MIGR:
        # One chunk of a MIGRATE blob; the channel consumer reassembles
        # the contiguous chunk run into the full tuple.
        return (_MIGCHUNK, *_decode_migrate_chunk(ints))
    raise ProtocolError(f"unknown wire record tag {tag}")


# ----------------------------------------------------------------------
# the shared-memory ring channel
# ----------------------------------------------------------------------
#: Default ring capacity in records when the simulator sets no inbox
#: bound (432 KiB per node; deep enough that only a flood fills it).
DEFAULT_CAPACITY = 4096
#: Blocking receives spin-yield this briefly before parking on the
#: doorbell pipe.  The spin catches back-to-back traffic for free; it
#: is kept short because a long yield-spin on a saturated host inflates
#: the spinner's scheduler debt and the *next* wakeup pays it in
#: milliseconds of latency (the tail that sank the first prototype).
_SPIN_YIELDS = 24
#: Retry pacing for full-ring producer backoff and decode retries.
_POLL_SLEEP = 0.0002
#: Upper bound on one doorbell park.  The doorbell protocol has no lost
#: wakeups (see :meth:`ShmChannel.get`), so this is pure defence: a bug
#: degrades to 20 Hz polling instead of a deadlock.
_DOORBELL_CAP = 0.05
#: Producer-lock acquisition bound.  A peer that died *holding* the
#: lock would otherwise block every sender forever; timing out turns
#: that into a Full → bounded-retry → diagnosable node failure.
_LOCK_TIMEOUT = 2.0
#: Checksum-retry budget in ``get_nowait`` (absorbs the store-ordering
#: window between a producer's slot write and cursor publish).
_DECODE_RETRIES = 8

_sched_yield = getattr(os, "sched_yield", None)


class ShmChannel:
    """One node's inbox: a fixed-width MPSC ring in shared memory.

    Many producers (serialised by *lock*), exactly one consumer (the
    owning node).  Implements the same ``put_nowait`` / ``get`` /
    ``get_nowait`` / ``qsize`` surface as ``multiprocessing.Queue`` —
    raising the stdlib ``queue.Full`` / ``queue.Empty`` — plus
    ``put_batch`` for one-lock batched sends.  ``batched = True``
    advertises to the node loop that sends should be buffered and
    flushed in batches.

    Blocking receives park on a pipe *doorbell*: a producer that finds
    the ring empty writes one byte after publishing, so a waiting
    consumer sleeps in ``select`` (cheap, promptly woken by the kernel)
    instead of burning its scheduler budget yield-spinning — on a
    saturated host a long spin makes the *next* wakeup pay multi-ms of
    accumulated scheduling debt.

    The channel pickles by (name, capacity, lock, duped doorbell fds):
    a spawned worker re-attaches the segment lazily on first use; a
    forked worker inherits the mapping and fds directly.  Only the
    creating parent ever calls ``unlink``.
    """

    batched = True

    def __init__(self, name: str, capacity: int, lock, *, create: bool = False):
        self.name = name
        self.capacity = capacity
        self._lock = lock
        self._shm = None
        self._buf = None
        self._closed = False
        self._unlinked = False
        self._rfd, self._wfd = os.pipe()
        os.set_blocking(self._rfd, False)
        os.set_blocking(self._wfd, False)
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True,
                size=_HEADER_SIZE + capacity * RECORD_SIZE,
            )
            self._buf = self._shm.buf
            _CURSOR.pack_into(self._buf, _CAP_OFF, capacity)

    # -- pickling (spawn) / inheritance (fork) -------------------------
    def __getstate__(self) -> dict:
        # DupFd ships the doorbell fds the same way mp.Queue ships its
        # pipe: duplicated into the receiving process by the reduction
        # machinery (spawn) or the resource sharer (explicit pickling).
        from multiprocessing import reduction

        return {
            "name": self.name,
            "capacity": self.capacity,
            "lock": self._lock,
            "rfd": reduction.DupFd(self._rfd),
            "wfd": reduction.DupFd(self._wfd),
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.capacity = state["capacity"]
        self._lock = state["lock"]
        self._shm = None
        self._buf = None
        self._closed = False
        self._unlinked = False
        self._rfd = state["rfd"].detach()
        self._wfd = state["wfd"].detach()

    def _ensure(self):
        buf = self._buf
        if buf is None:
            if self._closed:
                raise OSError(f"shm channel {self.name} is closed")
            # NB: attaching re-registers the name with the resource
            # tracker, but the tracker process is shared across the
            # whole multiprocessing tree and keeps a *set* of names —
            # the re-registration is an idempotent no-op, and the one
            # unregister the creator's unlink() sends balances it.
            self._shm = shared_memory.SharedMemory(name=self.name)
            buf = self._buf = self._shm.buf
            if _CURSOR.unpack_from(buf, _CAP_OFF)[0] != self.capacity:
                raise ProtocolError(
                    f"shm channel {self.name}: capacity mismatch on attach"
                )
        return buf

    # -- producer side -------------------------------------------------
    def _write(self, records: list[bytes]) -> int:
        """Append up to ``len(records)`` under the lock; returns count."""
        buf = self._ensure()
        if not self._lock.acquire(timeout=_LOCK_TIMEOUT):
            raise queue_mod.Full
        try:
            write = _CURSOR.unpack_from(buf, _WRITE_OFF)[0]
            read = _CURSOR.unpack_from(buf, _READ_OFF)[0]
            was_empty = write <= read
            space = self.capacity - (write - read)
            count = min(space, len(records))
            for record in records[:count]:
                slot = _HEADER_SIZE + (write % self.capacity) * RECORD_SIZE
                buf[slot:slot + RECORD_SIZE] = record
                write += 1
            if count:
                # Publish after the slot bytes: the consumer reads the
                # cursor first, so it can never see a half-copied slot.
                _CURSOR.pack_into(buf, _WRITE_OFF, write)
                if was_empty and self._wfd is not None:
                    # Ring went empty -> nonempty: ring the doorbell so
                    # a consumer parked in select() wakes immediately.
                    # Nonblocking: a full pipe already holds plenty of
                    # unconsumed wake signals.
                    try:
                        os.write(self._wfd, b"\x01")
                    except OSError:
                        pass
            return count
        finally:
            self._lock.release()

    def _write_group(self, records: list[bytes]) -> bool:
        """Append *records* contiguously, all-or-nothing.

        Used for chunked MIGRATE blobs: the consumer reassembles a
        chunk run by reading consecutive slots, so a partial write
        (another producer's records splitting the run) would corrupt
        the blob.  Returns False when the ring lacks the space.
        """
        if len(records) > self.capacity:
            raise ProtocolError(
                f"migrate blob needs {len(records)} records but the ring "
                f"holds only {self.capacity}; raise the inbox capacity"
            )
        buf = self._ensure()
        if not self._lock.acquire(timeout=_LOCK_TIMEOUT):
            raise queue_mod.Full
        try:
            write = _CURSOR.unpack_from(buf, _WRITE_OFF)[0]
            read = _CURSOR.unpack_from(buf, _READ_OFF)[0]
            was_empty = write <= read
            if self.capacity - (write - read) < len(records):
                return False
            for record in records:
                slot = _HEADER_SIZE + (write % self.capacity) * RECORD_SIZE
                buf[slot:slot + RECORD_SIZE] = record
                write += 1
            _CURSOR.pack_into(buf, _WRITE_OFF, write)
            if was_empty and self._wfd is not None:
                try:
                    os.write(self._wfd, b"\x01")
                except OSError:
                    pass
            return True
        finally:
            self._lock.release()

    def put_nowait(self, item: tuple) -> None:
        if item[0] == MIGRATE:
            if not self._write_group(encode_migrate(item)):
                raise queue_mod.Full
            return
        if self._write([encode_record(item)]) == 0:
            raise queue_mod.Full

    def put(self, item: tuple, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                self.put_nowait(item)
                return
            except queue_mod.Full:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                time.sleep(_POLL_SLEEP)

    def put_batch(self, items: list[tuple]) -> int:
        """Write as many of *items* as fit, in order, under one lock
        acquisition; returns how many were written.

        MIGRATE tuples are rejected: their chunk runs need the
        all-or-nothing path (``put_nowait``), not partial progress.
        """
        if not items:
            return 0
        if any(item[0] == MIGRATE for item in items):
            raise ProtocolError(
                "MIGRATE must be sent via put_nowait (all-or-nothing), "
                "not batched"
            )
        return self._write([encode_record(item) for item in items])

    # -- consumer side (single reader, lock-free) ----------------------
    def _read_slot(self, buf, read: int) -> tuple:
        slot = _HEADER_SIZE + (read % self.capacity) * RECORD_SIZE
        data = bytes(buf[slot:slot + RECORD_SIZE])
        try:
            return decode_record(data)
        except ProtocolError:
            return self._decode_retry(buf, slot)

    def get_nowait(self) -> tuple:
        buf = self._ensure()
        read = _CURSOR.unpack_from(buf, _READ_OFF)[0]
        if _CURSOR.unpack_from(buf, _WRITE_OFF)[0] <= read:
            raise queue_mod.Empty
        item = self._read_slot(buf, read)
        if item[0] == _MIGCHUNK:
            # A MIGRATE blob: the producer wrote its chunk run
            # all-or-nothing and published the cursor after the last
            # chunk, so once chunk 0 is visible every sibling is too,
            # contiguously.  Reassemble the run into one tuple.
            _, color, src, cid, idx, nchunks, data = item
            if idx != 0:
                raise ProtocolError(
                    f"migrate chunk run starts at index {idx}, expected 0"
                )
            parts = [data]
            for offset in range(1, nchunks):
                chunk = self._read_slot(buf, read + offset)
                if (
                    chunk[0] != _MIGCHUNK
                    or chunk[1:4] != (color, src, cid)
                    or chunk[4] != offset
                    or chunk[5] != nchunks
                ):
                    raise ProtocolError(
                        "migrate chunk run interrupted: record "
                        f"{offset}/{nchunks} is {chunk[0]!r}"
                    )
                parts.append(chunk[6])
            _CURSOR.pack_into(buf, _READ_OFF, read + nchunks)
            payload = pickle.loads(b"".join(parts))
            return (MIGRATE, color, src, cid, payload)
        _CURSOR.pack_into(buf, _READ_OFF, read + 1)
        return item

    def _decode_retry(self, buf, slot: int) -> tuple:
        # A failed checksum right at the cursor frontier is (on weakly
        # ordered hardware) most likely the producer's slot bytes still
        # in flight; re-read briefly before declaring corruption.
        for _ in range(_DECODE_RETRIES):
            time.sleep(_POLL_SLEEP)
            try:
                return decode_record(bytes(buf[slot:slot + RECORD_SIZE]))
            except ProtocolError:
                continue
        return decode_record(bytes(buf[slot:slot + RECORD_SIZE]))

    def get(self, timeout: float | None = None) -> tuple:
        """Blocking receive: spin-yield briefly, then park on the
        doorbell pipe.

        The spin phase catches back-to-back traffic without a syscall;
        the select() phase sleeps with zero CPU until a producer rings
        the doorbell.  Lost-wakeup safety: the consumer drains pending
        doorbell bytes *before* re-checking the ring and only then
        blocks, while a producer rings *after* publishing its cursor —
        so any publish that races the final check leaves either a
        visible record or a readable byte.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(_SPIN_YIELDS):
            try:
                return self.get_nowait()
            except queue_mod.Empty:
                if _sched_yield is not None:
                    _sched_yield()
        rfd = self._rfd
        while True:
            if rfd is not None:
                try:
                    os.read(rfd, 4096)
                except OSError:
                    pass
            try:
                return self.get_nowait()
            except queue_mod.Empty:
                pass
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise queue_mod.Empty
            else:
                remaining = _DOORBELL_CAP
            if rfd is not None:
                select.select([rfd], [], [], min(remaining, _DOORBELL_CAP))
            else:  # pragma: no cover - doorbell closed under the reader
                time.sleep(_POLL_SLEEP)

    def qsize(self) -> int:
        buf = self._ensure()
        return max(
            0,
            _CURSOR.unpack_from(buf, _WRITE_OFF)[0]
            - _CURSOR.unpack_from(buf, _READ_OFF)[0],
        )

    # -- lifecycle (Queue-compatible surface) --------------------------
    def cancel_join_thread(self) -> None:
        """No feeder thread to cancel — present for Queue compatibility."""

    def close(self) -> None:
        """Drop this process's mapping and fds (idempotent; never
        unlinks)."""
        self._closed = True
        self._buf = None
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views live
                pass
        for attr in ("_rfd", "_wfd"):
            fd = getattr(self, attr)
            if fd is not None:
                setattr(self, attr, None)
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass

    def unlink(self) -> None:
        """Remove the segment from the OS (idempotent; creator only).

        Works even after :meth:`close` — cleanup paths close mappings
        before the transport unlinks — by re-attaching just to unlink.
        """
        if self._unlinked:
            return
        self._unlinked = True
        shm = self._shm
        if shm is None:
            try:
                shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError:
                return
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass
        if shm is not self._shm:
            shm.close()


# ----------------------------------------------------------------------
# send batching with anti-message coalescing
# ----------------------------------------------------------------------
class SendBuffer:
    """Per-destination buffer of outgoing messages awaiting a flush.

    An anti-message whose positive copy (same ``uid``, same dest) is
    still buffered annihilates it *in the buffer*: neither ever reaches
    the wire, the GVT clerk, or the recovery send log.  That is sound
    because stamping (GVT color, channel sequence) happens only at flush
    time — an unflushed pair is observationally identical to a pair the
    receiver annihilated in its own input queue before processing, which
    is a legal Time Warp interleaving.  ``coalesced`` counts annihilated
    pairs for observability.
    """

    def __init__(self) -> None:
        self._pending: dict[int, list[Message | None]] = {}
        self._positives: dict[int, dict[int, int]] = {}
        self._count = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return self._count

    def add(self, dest: int, msg: Message) -> None:
        bucket = self._pending.setdefault(dest, [])
        index = self._positives.setdefault(dest, {})
        if msg.sign == ANTI:
            hit = index.pop(msg.uid, None)
            if hit is not None:
                bucket[hit] = None
                self._count -= 1
                self.coalesced += 1
                return
        else:
            index[msg.uid] = len(bucket)
        bucket.append(msg)
        self._count += 1

    def drain(self):
        """Yield ``(dest, messages)`` batches and reset the buffer."""
        pending = self._pending
        self._pending = {}
        self._positives = {}
        self._count = 0
        for dest, bucket in pending.items():
            messages = [m for m in bucket if m is not None]
            if messages:
                yield dest, messages


# ----------------------------------------------------------------------
# the Transport interface
# ----------------------------------------------------------------------
class Transport:
    """Factory/owner of one attempt's inter-node channels.

    ``make_inboxes`` builds the n per-node inboxes for one ring attempt;
    ``cleanup`` releases every OS resource any attempt created (required
    on *all* exit paths — success, restart, error, KeyboardInterrupt —
    and idempotent so belt-and-braces calls are free).
    """

    name = "abstract"
    #: Whether the node loop should batch sends (see ``ShmChannel``).
    batched = False

    def make_inboxes(self, ctx, n: int, maxsize: int | None) -> list:
        raise NotImplementedError

    def cleanup(self) -> None:
        """Release transport OS resources (idempotent)."""


class QueueTransport(Transport):
    """The original substrate: one ``multiprocessing.Queue`` per node."""

    name = "queue"

    def make_inboxes(self, ctx, n: int, maxsize: int | None) -> list:
        if maxsize is not None:
            return [ctx.Queue(maxsize) for _ in range(n)]
        return [ctx.Queue() for _ in range(n)]


class ShmTransport(Transport):
    """Shared-memory rings with batched fixed-width records."""

    name = "shm"
    batched = True

    def __init__(self) -> None:
        self._channels: list[ShmChannel] = []

    def make_inboxes(self, ctx, n: int, maxsize: int | None) -> list:
        capacity = maxsize if maxsize is not None else DEFAULT_CAPACITY
        run_tag = uuid.uuid4().hex[:8]
        channels = [
            ShmChannel(
                f"twshm-{os.getpid()}-{run_tag}-n{node}",
                capacity, ctx.Lock(), create=True,
            )
            for node in range(n)
        ]
        self._channels.extend(channels)
        return channels

    def cleanup(self) -> None:
        for channel in self._channels:
            channel.unlink()
        self._channels.clear()


_TRANSPORTS: dict[str, type[Transport]] = {
    "queue": QueueTransport,
    "shm": ShmTransport,
}

#: Valid ``--transport`` values.
TRANSPORT_NAMES: tuple[str, ...] = tuple(sorted(_TRANSPORTS))


def make_transport(name: str) -> Transport:
    """Instantiate the named transport (:class:`ConfigError` if unknown)."""
    try:
        cls = _TRANSPORTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown transport {name!r} (one of {sorted(_TRANSPORTS)})"
        ) from None
    return cls()


def default_transport() -> str:
    """The transport used when none is requested explicitly.

    ``REPRO_TW_TRANSPORT`` overrides the built-in default (``queue``)
    so CI can sweep the whole process-backend test matrix across
    transports without touching every construction site.
    """
    return os.environ.get("REPRO_TW_TRANSPORT", "queue")
