"""Per-node pending-event queue with annihilation support.

A node holds ONE queue over all its LPs (the clustered organisation of
WARPED: LPs of a cluster share a scheduler). The queue orders messages
by the deterministic event key and supports deletion by ``uid``, which
is how an anti-message annihilates an unprocessed positive copy.

Representation: a list sorted DESCENDING by sort key, so the earliest
live message sits at the END — ``pop`` is ``list.pop()`` (O(1)) and
insertion is a C-level :func:`bisect.insort` (binary search plus one
memmove), which beats a binary heap for the queue sizes logic
simulation produces and needs no lazy-deletion filtering: ``annihilate``
locates its entry exactly via the uid → key map and removes it.

The descending order is realised by storing each entry as
``(neg_key, sort_key, message)`` where ``neg_key`` negates every
element of the sort key: elementwise negation reverses the
lexicographic order of equal-length int tuples, so an ascending sort on
``neg_key`` is a descending sort on ``sort_key``. ``neg_key`` is unique
(the uid component is), so list comparisons never reach the message.

The head of the queue is cached: ``min_key``/``min_time`` are plain
attributes kept current by every mutator, so the executive's per-event
scheduling scan costs one attribute read per node.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.warped.messages import Message

SortKey = tuple[int, int, int, int, int, int]

#: One stored entry: (negated sort key, sort key, message).
Entry = tuple[SortKey, SortKey, Message]


class NodeQueue:
    """Descending-sorted list of :class:`Message` with O(1) min-pop."""

    __slots__ = ("_list", "_uid_keys", "min_key", "min_time")

    def __init__(self) -> None:
        self._list: list[Entry] = []
        #: uid -> negated sort key of the live entry carrying it.
        self._uid_keys: dict[int, SortKey] = {}
        #: Sort key / virtual time of the earliest live message, or
        #: ``None`` when empty. Read-only for callers.
        self.min_key: SortKey | None = None
        self.min_time: int | None = None

    def push(self, msg: Message) -> None:
        """Insert *msg*."""
        sort_key = (msg.time, msg.prio, msg.src, msg.n, msg.dest, msg.uid)
        neg_key = (-msg.time, -msg.prio, -msg.src, -msg.n, -msg.dest, -msg.uid)
        insort(self._list, (neg_key, sort_key, msg))
        self._uid_keys[msg.uid] = neg_key
        min_key = self.min_key
        if min_key is None or sort_key < min_key:
            self.min_key = sort_key
            self.min_time = msg.time

    def pop(self) -> Message:
        """Remove and return the earliest live message."""
        lst = self._list
        if not lst:
            raise IndexError("pop from empty NodeQueue")
        _, _, msg = lst.pop()
        del self._uid_keys[msg.uid]
        if lst:
            head = lst[-1]
            self.min_key = head[1]
            self.min_time = head[1][0]
        else:
            self.min_key = None
            self.min_time = None
        return msg

    def contains_uid(self, uid: int) -> bool:
        """True iff a live message with *uid* is pending."""
        return uid in self._uid_keys

    def annihilate(self, uid: int) -> None:
        """Delete the pending message with *uid* (must be present)."""
        neg_key = self._uid_keys.pop(uid, None)
        if neg_key is None:
            raise KeyError(f"uid {uid} not pending")
        lst = self._list
        # A 1-tuple probe compares by first element only and sorts
        # before the (longer) entry carrying an equal first element, so
        # bisect_left lands exactly on the target entry.
        lo = bisect_left(lst, (neg_key,))
        del lst[lo]
        if lo == len(lst):
            # Removed the head (end of the descending list).
            if lst:
                head = lst[-1]
                self.min_key = head[1]
                self.min_time = head[1][0]
            else:
                self.min_key = None
                self.min_time = None

    def peek_key(self) -> SortKey | None:
        """Sort key of the earliest live message, or ``None``."""
        return self.min_key

    def extract_dests(self, dests: set[int]) -> list[Message]:
        """Remove and return all pending messages addressed to *dests*.

        Used by LP migration: the moved LP's queued work follows it to
        its new node.
        """
        kept: list[Entry] = []
        moved: list[Message] = []
        uid_keys = self._uid_keys
        for entry in self._list:
            msg = entry[2]
            if msg.dest in dests:
                moved.append(msg)
                del uid_keys[msg.uid]
            else:
                kept.append(entry)
        self._list = kept
        if kept:
            head = kept[-1]
            self.min_key = head[1]
            self.min_time = head[1][0]
        else:
            self.min_key = None
            self.min_time = None
        return moved

    def __len__(self) -> int:
        return len(self._list)

    def __bool__(self) -> bool:
        return bool(self._list)
