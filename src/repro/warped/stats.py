"""Result and statistics records for Time Warp runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.graph import CircuitGraph


@dataclass
class NodeStats:
    """Per-node counters (one WARPED cluster)."""

    node: int
    num_lps: int = 0
    events_processed: int = 0
    events_rolled_back: int = 0
    rollbacks: int = 0
    messages_sent_remote: int = 0
    messages_sent_local: int = 0
    anti_messages_sent: int = 0
    wall_time: float = 0.0
    #: CPU time actually spent working (events, rollbacks, messaging,
    #: GVT shares); ``wall_time - busy_time`` is idle/blocked time.
    busy_time: float = 0.0

    @property
    def events_committed(self) -> int:
        return self.events_processed - self.events_rolled_back

    @property
    def efficiency(self) -> float:
        """Committed / processed events — the Time Warp efficiency."""
        if self.events_processed == 0:
            return 1.0
        return self.events_committed / self.events_processed

    @property
    def utilization(self) -> float:
        """busy_time / wall_time (1.0 = the node never waited)."""
        if self.wall_time <= 0:
            return 1.0
        return min(1.0, self.busy_time / self.wall_time)


@dataclass
class TimeWarpResult:
    """Outcome of one optimistic parallel run.

    ``execution_time`` is the modelled wall-clock of the slowest node —
    the quantity of the paper's Table 2 / Figure 4. ``app_messages``
    counts positive inter-node event messages (Figure 5); ``rollbacks``
    counts rollback episodes (Figure 6).
    """

    circuit_name: str
    algorithm: str
    num_nodes: int
    num_cycles: int
    execution_time: float
    events_processed: int
    events_rolled_back: int
    rollbacks: int
    app_messages: int
    anti_messages: int
    local_messages: int
    gvt_rounds: int
    #: Lazy cancellation only: undone sends whose re-execution derived
    #: the identical message, so the original was kept (no anti, no
    #: resend).
    lazy_reuses: int
    #: Largest total number of history records held across all LPs at
    #: any GVT round — the state-memory high-water mark that fossil
    #: collection bounds (the paper's s15850 2-node row is missing
    #: because this is what overflowed on their machines).
    peak_history: int
    #: LPs moved between nodes by dynamic load balancing.
    migrations: int
    final_values: list[int]
    node_stats: list[NodeStats] = field(default_factory=list)
    #: One sample per GVT round: (max wall time so far, per-node busy
    #: time accumulated since the previous round). Drives
    #: :func:`render_utilization_timeline`.
    utilization_timeline: list[tuple[float, list[float]]] = field(
        default_factory=list
    )
    #: Committed DFF capture history as sorted (gate, cycle, value)
    #: triples — one entry per capture that changed the flip-flop's
    #: output.  Identical across the sequential kernel and both Time
    #: Warp backends; the differential test layer compares it directly.
    committed_captures: list[tuple[int, int, int]] | None = None
    #: Which execution substrate produced this result: "virtual" (the
    #: deterministic modelled machine) or "process" (real OS processes,
    #: measured wall-clock).
    backend: str = "virtual"
    #: Process backend only: the wire transport that carried the run's
    #: inter-node messages ("queue" or "shm"); None on other backends.
    transport: str | None = None
    #: Process backend only: ring restarts performed while recovering
    #: from worker crashes (0 on a fault-free run).
    restarts: int = 0
    #: True when the process backend exhausted a node's restart budget
    #: and finished the run on the virtual backend instead.  Committed
    #: results are still exact; timing/counters reflect the fallback.
    degraded: bool = False

    @property
    def events_committed(self) -> int:
        return self.events_processed - self.events_rolled_back

    @property
    def efficiency(self) -> float:
        if self.events_processed == 0:
            return 1.0
        return self.events_committed / self.events_processed

    def value_of(self, circuit: CircuitGraph, name: str) -> int:
        """Final value of the gate called *name*."""
        return self.final_values[circuit.index_of(name)]

    def summary(self) -> str:
        """One-line human-readable digest."""
        line = (
            f"{self.circuit_name} [{self.algorithm} x{self.num_nodes}] "
            f"T={self.execution_time:.2f}s ev={self.events_processed} "
            f"rb={self.rollbacks} ({self.events_rolled_back} ev) "
            f"msg={self.app_messages} eff={self.efficiency:.2f}"
        )
        if self.restarts:
            line += f" restarts={self.restarts}"
        if self.degraded:
            line += " DEGRADED(virtual fallback)"
        return line


def render_utilization_timeline(
    result: "TimeWarpResult", *, width: int = 64
) -> str:
    """ASCII heat strip of per-node utilization over modelled time.

    One row per node; each column is a slice of wall-clock, shaded by
    how busy the node was (` .:-=+*#%@` from idle to saturated). Makes
    stragglers and load holes visible at a glance.
    """
    samples = result.utilization_timeline
    if not samples:
        return "(no utilization samples — run with gvt_interval small "                "enough to fire at least once)"
    shades = " .:-=+*#%@"
    end = max(result.execution_time, samples[-1][0]) or 1.0
    n_nodes = result.num_nodes
    # Accumulate busy time into wall-time bins per node.
    bins = [[0.0] * width for _ in range(n_nodes)]
    spans = [[0.0] * width for _ in range(n_nodes)]
    previous = 0.0
    for wall_now, busy_delta in samples:
        span = max(wall_now - previous, 1e-12)
        lo = min(width - 1, int(previous / end * width))
        hi = min(width - 1, int(wall_now / end * width))
        for node in range(n_nodes):
            share = busy_delta[node] / (hi - lo + 1)
            for column in range(lo, hi + 1):
                bins[node][column] += share
                spans[node][column] += span / (hi - lo + 1)
        previous = wall_now
    lines = [
        f"utilization timeline — {result.circuit_name} "
        f"[{result.algorithm} x{n_nodes}], T={result.execution_time:.2f}s"
    ]
    for node in range(n_nodes):
        row = []
        for column in range(width):
            if spans[node][column] <= 0:
                row.append(" ")
                continue
            level = min(1.0, bins[node][column] / spans[node][column])
            row.append(shades[min(len(shades) - 1, int(level * len(shades)))])
        lines.append(f"node {node:2d} |{''.join(row)}|")
    return "\n".join(lines)
