"""Shared fixtures: reference netlists and generated circuits."""

from __future__ import annotations

import pytest

from repro.circuit import GeneratorSpec, generate_circuit
from repro.circuit.netlists import S27_BENCH, load_s27

__all__ = ["S27_BENCH"]  # re-exported for scripts that import conftest


@pytest.fixture(scope="session")
def s27():
    """The real s27 netlist as a frozen CircuitGraph."""
    return load_s27()


@pytest.fixture(scope="session")
def small_circuit():
    """A ~150-gate generated sequential circuit (fast tests)."""
    spec = GeneratorSpec(
        name="small",
        num_inputs=6,
        num_outputs=8,
        num_gates=150,
        num_dffs=10,
        depth=8,
        seed=42,
    )
    return generate_circuit(spec)


@pytest.fixture(scope="session")
def medium_circuit():
    """A ~600-gate generated circuit (integration tests)."""
    spec = GeneratorSpec(
        name="medium",
        num_inputs=12,
        num_outputs=16,
        num_gates=600,
        num_dffs=40,
        depth=14,
        seed=43,
    )
    return generate_circuit(spec)


@pytest.fixture(scope="session")
def combinational_circuit():
    """A DFF-free circuit (pure combinational paths)."""
    spec = GeneratorSpec(
        name="comb",
        num_inputs=8,
        num_outputs=6,
        num_gates=120,
        num_dffs=0,
        depth=7,
        seed=44,
    )
    return generate_circuit(spec)
