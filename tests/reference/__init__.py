"""Frozen pre-optimization (seed) Time Warp implementation.

``seed_kernel``/``seed_lp``/``seed_queues`` are byte-for-byte copies of
``repro.warped.{kernel,lp,queues}`` as they stood before the hot-path
performance overhaul (PR 3), with only the intra-package imports
rewritten. They are the behavioral oracle for
``tests/test_seed_equivalence.py``: every optimization must leave
``TimeWarpResult`` counters, final values and committed captures
bit-identical to this snapshot (the one documented exception is
``peak_history``, whose undercounting between GVT rounds was a bug the
same PR fixes).

Do NOT "clean up" or optimize these files — their value is that they
never change.
"""
