"""Global Virtual Time estimation and fossil collection.

GVT is the floor below which no rollback can ever reach: the minimum
virtual time over every unprocessed message (pending in node queues or
in flight on the network). The kernel's single-threaded virtual-machine
loop sees a consistent global snapshot for free, so the textbook
min-reduction is exact here — no Mattern/Samadi token rounds are needed
(the *cost* of a distributed GVT round is still charged by the machine
model).
"""

from __future__ import annotations

from collections.abc import Iterable

from tests.reference.seed_queues import NodeQueue

#: GVT value meaning "simulation quiesced".
GVT_END = float("inf")


def compute_gvt(
    node_queues: Iterable[NodeQueue],
    in_flight_times: Iterable[int],
) -> float:
    """Exact GVT: min virtual time over pending and in-flight messages."""
    gvt = GVT_END
    for queue in node_queues:
        t = queue.min_time()
        if t is not None and t < gvt:
            gvt = t
    for t in in_flight_times:
        if t < gvt:
            gvt = t
    return gvt
