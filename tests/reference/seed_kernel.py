"""The Time Warp executive over the virtual cluster.

One instance simulates the parallel machine deterministically: each
node (cluster of LPs) has its own wall clock and pending-event queue;
the executive repeatedly performs whichever happens first in modelled
wall time — a network delivery or one event processed on the
least-advanced busy node. Optimism is real: a node happily processes
ahead of its peers, and remote messages landing in its past trigger
rollback with aggressive cancellation, exactly the WARPED protocol.

Cancellation is *eager at insertion*: a straggler or anti-message rolls
its LP back the moment it reaches the node, and cascades (undone sends
annihilating downstream work) are drained iteratively — chains through
deep circuits would blow the recursion limit otherwise.
"""

from __future__ import annotations

import heapq
import time
from collections import deque

from repro.circuit.graph import CircuitGraph
from repro.errors import SimulationError
from repro.partition.assignment import PartitionAssignment
from repro.sim.event import CAPTURE, SIG, STIM
from repro.sim.stimulus import Stimulus
from tests.reference.seed_gvt import GVT_END, compute_gvt
from tests.reference.seed_lp import LogicalProcess
from repro.warped.machine import VirtualMachine
from repro.warped.messages import ANTI, Message
from tests.reference.seed_queues import NodeQueue
from repro.warped.stats import NodeStats, TimeWarpResult
from repro.circuit.gate import FALSE


class TimeWarpSimulator:
    """Run one circuit under one partition on one virtual machine."""

    def __init__(
        self,
        circuit: CircuitGraph,
        assignment: PartitionAssignment,
        stimulus: Stimulus,
        machine: VirtualMachine,
        *,
        max_events: int = 50_000_000,
        trace_hook=None,
        tracer=None,
    ) -> None:
        if not circuit.frozen:
            raise SimulationError("circuit must be frozen")
        if assignment.circuit is not circuit:
            raise SimulationError("assignment was built for a different circuit")
        if stimulus.circuit is not circuit:
            raise SimulationError("stimulus was built for a different circuit")
        if assignment.k != machine.num_nodes:
            raise SimulationError(
                f"partition has k={assignment.k} but machine has "
                f"{machine.num_nodes} nodes"
            )
        self.circuit = circuit
        self.assignment = assignment
        self.stimulus = stimulus
        self.machine = machine
        self.max_events = max_events
        #: Optional callable receiving (op, *details) tuples for every
        #: kernel action — used by protocol tests and debugging.
        self.trace_hook = trace_hook
        #: Optional :class:`repro.obs.tracer.TraceWriter` — structured
        #: rollback / GVT-round / node-summary records.  Orthogonal to
        #: ``trace_hook`` (that one sees raw kernel ops).
        self.tracer = tracer

    # ------------------------------------------------------------------
    def run(self) -> TimeWarpResult:
        """Simulate to quiescence under Time Warp; returns all counters."""
        circuit = self.circuit
        machine = self.machine
        cost = machine.cost_model
        network = machine.network
        n_nodes = machine.num_nodes

        lps = [
            LogicalProcess(
                gate,
                self.assignment[gate.index],
                checkpoint_interval=machine.checkpoint_interval,
            )
            for gate in circuit.gates
        ]
        checkpointing = machine.checkpoint_interval is not None
        queues = [NodeQueue() for _ in range(n_nodes)]
        wall = [0.0] * n_nodes
        busy = [0.0] * n_nodes
        migration_threshold = machine.migration_threshold
        # Dynamic load balancing bookkeeping: work done per node since
        # the previous GVT round, and a decaying per-LP activity score
        # used to pick which LPs to move.
        busy_at_last_gvt = [0.0] * n_nodes
        lp_activity = [0.0] * circuit.num_gates
        busy_at_last_sample = [0.0] * n_nodes
        utilization_timeline: list[tuple[float, list[float]]] = []
        node_stats = [NodeStats(node=i) for i in range(n_nodes)]
        for lp in lps:
            node_stats[lp.node].num_lps += 1

        in_flight: list[tuple[float, int, Message]] = []
        waiting_antis: dict[int, Message] = {}
        pending_cancels: deque[Message] = deque()
        lazy = machine.cancellation == "lazy"
        # Lazy cancellation: per-LP FIFO of undone sends awaiting their
        # re-execution verdict (reuse if re-derived identically, cancel
        # on first divergence or when virtual time passes them by).
        lazy_buffers: dict[int, deque[Message]] = {}

        uid_counter = 0

        def next_uid() -> int:
            nonlocal uid_counter
            uid_counter += 1
            return uid_counter

        flight_seq = 0
        trace = self.trace_hook
        tracer = self.tracer
        # Committed DFF captures: (gate, cycle) -> value captured.
        # Entries are removed when their record is rolled back, so at
        # quiescence the log is exactly the committed capture history
        # (the cross-backend differential invariant).
        capture_log: dict[tuple[int, int], int] = {}
        counters = {
            "events": 0,
            "rolled_back": 0,
            "rollbacks": 0,
            "app_messages": 0,
            "anti_messages": 0,
            "local_messages": 0,
            "gvt_rounds": 0,
            "lazy_reuses": 0,
            "peak_history": 0,
            "migrations": 0,
        }

        # ------------------------------------------------------------
        # cancellation machinery (iterative, see module docstring)
        # ------------------------------------------------------------
        def dispatch_anti(em: Message, node: int, depart: float) -> int:
            """Cancel emission *em*; returns 1 if a remote anti was sent."""
            if lps[em.dest].node == node:
                pending_cancels.append(em)
                sent = 0
            else:
                anti = em.make_anti()
                nonlocal flight_seq
                flight_seq += 1
                heapq.heappush(
                    in_flight,
                    (
                        depart + network.latency(node, lps[em.dest].node),
                        flight_seq,
                        anti,
                    ),
                )
                sent = 1
                if trace:
                    trace("anti_sent", em.uid, node, lps[em.dest].node)
            if trace:
                trace("emission_cancelled", em.uid)
            return sent

        def flush_lazy(lp: LogicalProcess, now_wall: float, *, before: int | None = None) -> None:
            """Cancel buffered sends of *lp* (all, or those with time < before).

            Called when re-execution diverges from the undone history,
            when virtual time passes a buffered send (it can no longer
            be re-derived), or at quiescence.
            """
            buffer = lazy_buffers.get(lp.gate.index)
            if not buffer:
                return
            node = lp.node
            depart = max(wall[node], now_wall)
            remote = 0
            while buffer and (before is None or buffer[0].time < before):
                remote += dispatch_anti(buffer.popleft(), node, depart)
            if remote:
                counters["anti_messages"] += remote
                node_stats[node].anti_messages_sent += remote
                wall[node] = depart + cost.send_overhead * remote
                busy[node] += cost.send_overhead * remote

        reused_uids: set[int] = set()

        def _lazy_match(lp: LogicalProcess, record, now_wall: float) -> None:
            """Prefix-match fresh emissions against the lazy buffer.

            A fresh emission identical in (time, prio, dest, value) to
            the buffer head re-derives the undone send: the ORIGINAL
            message (still live at its destination) replaces the fresh
            copy in the history record, and nothing is transmitted. The
            first divergence refutes the rest of the buffer.
            """
            buffer = lazy_buffers.get(lp.gate.index)
            if not buffer:
                return
            new_emissions = []
            diverged = False
            for em in record.emissions:
                head = buffer[0] if buffer else None
                if (
                    not diverged
                    and head is not None
                    and head.time == em.time
                    and head.prio == em.prio
                    and head.dest == em.dest
                    and head.value == em.value
                ):
                    buffer.popleft()
                    new_emissions.append(head)
                    reused_uids.add(head.uid)
                    counters["lazy_reuses"] += 1
                    if trace:
                        trace("lazy_reuse", head.uid)
                else:
                    diverged = True
                    new_emissions.append(em)
            if diverged:
                flush_lazy(lp, now_wall)
            record.emissions[:] = new_emissions

        def rollback(
            lp: LogicalProcess, to_key, now_wall: float, cancel_uid: int | None
        ) -> None:
            node = lp.node
            stats = node_stats[node]
            remote_antis = 0
            # The rollback executes on this node's CPU: it cannot start
            # before work the node already performed. Anti-messages
            # depart at or after every send already made, preserving
            # per-channel FIFO with the positives they chase.
            depart = max(wall[node], now_wall)
            coasted = 0
            if checkpointing:
                # Snapshot restore + coast-forward; the records are
                # returned oldest-first.
                records, coasted = lp.rollback_to(to_key)
                undone_records = list(reversed(records))
            else:
                undone_records = []
                while lp.last_key >= to_key:
                    undone_records.append(lp.undo_last())
            undone = len(undone_records)
            for record in undone_records:
                if record.msg.prio == CAPTURE:
                    capture_log.pop((record.msg.dest, record.msg.n), None)
                if cancel_uid is not None and record.msg.uid == cancel_uid:
                    if trace:
                        trace("annihilate_processed", record.msg.uid)
                    continue  # the annihilated positive: not re-enqueued
                queues[node].push(record.msg)
                if trace:
                    trace("reenqueue", record.msg.uid)
            if lazy:
                # Older buffered sends are stale the moment a second
                # rollback reaches further back: cancel them, then hold
                # the newly undone sends (in forward emission order) for
                # the re-execution to confirm or refute.
                flush_lazy(lp, now_wall)
                buffer = lazy_buffers.setdefault(lp.gate.index, deque())
                for record in reversed(undone_records):
                    buffer.extend(record.emissions)
            else:
                for record in undone_records:
                    for em in record.emissions:
                        remote_antis += dispatch_anti(em, node, depart)
            counters["rollbacks"] += 1
            counters["rolled_back"] += undone
            counters["anti_messages"] += remote_antis
            stats.rollbacks += 1
            stats.events_rolled_back += undone
            stats.anti_messages_sent += remote_antis
            if tracer is not None:
                tracer.emit(
                    "rollback",
                    node=node,
                    lp=lp.gate.index,
                    depth=undone,
                    t=int(to_key[0]),
                )
            work = (
                cost.rollback_event_cost * undone
                + cost.coast_event_cost * coasted
                + cost.send_overhead * remote_antis
            )
            wall[node] = max(wall[node], now_wall) + work
            busy[node] += work

        def apply_cancel(em: Message, now_wall: float) -> None:
            """Annihilate the (node-local or delivered) positive copy *em*."""
            lp = lps[em.dest]
            queue = queues[lp.node]
            if queue.contains_uid(em.uid):
                queue.annihilate(em.uid)
                if trace:
                    trace("annihilate_pending", em.uid)
            elif em.uid in lp.processed_uids:
                if trace:
                    trace("cancel_rollback", em.uid, lp.gate.index)
                rollback(lp, em.key, now_wall, cancel_uid=em.uid)
            else:
                # Positive copy not yet arrived (it can still be in
                # flight even if the LP advanced past its key — the anti
                # took a shorter wall-clock path); annihilate on arrival.
                waiting_antis[em.uid] = em
                if trace:
                    trace("stash_anti", em.uid)

        def drain_cancels(now_wall: float) -> None:
            while pending_cancels:
                apply_cancel(pending_cancels.popleft(), now_wall)

        def insert_positive(msg: Message, now_wall: float) -> None:
            if msg.uid in waiting_antis:
                del waiting_antis[msg.uid]
                if trace:
                    trace("annihilate_on_arrival", msg.uid)
                return
            lp = lps[msg.dest]
            if msg.key <= lp.last_key:
                rollback(lp, msg.key, now_wall, cancel_uid=None)
            queues[lp.node].push(msg)

        def deliver(msg: Message, arrival: float) -> None:
            # Taking a message off the wire costs destination CPU.
            dest_node = lps[msg.dest].node
            wall[dest_node] = max(wall[dest_node], arrival) + cost.recv_overhead
            busy[dest_node] += cost.recv_overhead
            if msg.sign == ANTI:
                apply_cancel(msg, arrival)
            else:
                insert_positive(msg, arrival)
            drain_cancels(arrival)

        # ------------------------------------------------------------
        # initial schedule (mirrors the sequential kernel exactly)
        # ------------------------------------------------------------
        stim = self.stimulus
        for ff in circuit.dffs:
            for sink in lps[ff]._sink_list:
                queues[lps[sink].node].push(
                    Message(0, SIG, ff, 0, FALSE, sink, next_uid())
                )
        for cycle in range(stim.num_cycles):
            t = stim.cycle_time(cycle)
            if cycle > 0:
                # Cycle 0 is the reset cycle (see the sequential kernel).
                for ff in circuit.dffs:
                    queues[lps[ff].node].push(
                        Message(t, CAPTURE, ff, cycle, 0, ff, next_uid())
                    )
            for pi in circuit.primary_inputs:
                queues[lps[pi].node].push(
                    Message(t, STIM, pi, cycle, stim.value(pi, cycle), pi, next_uid())
                )

        # ------------------------------------------------------------
        # main virtual-machine loop
        # ------------------------------------------------------------
        gvt_interval = machine.gvt_interval
        since_gvt = 0
        event_cost = cost.event_cost
        if checkpointing:
            # Incremental state saving is folded into event_cost; with
            # periodic snapshots the per-event share is skipped and the
            # snapshot itself is charged when taken.
            event_cost = max(1e-9, cost.event_cost - cost.state_save_cost)
        send_overhead = cost.send_overhead
        window = machine.optimism_window
        gvt_now = 0.0  # current GVT estimate (for window throttling)

        def run_gvt_round() -> float:
            round_t0 = time.perf_counter()
            counters["gvt_rounds"] += 1
            history = sum(len(lp_.processed) for lp_ in lps)
            if history > counters["peak_history"]:
                counters["peak_history"] = history
            if lazy:
                # Buffered undone sends strictly below the pending/
                # in-flight floor can never be re-derived (an LP only
                # emits at or after the time of the event it processes,
                # and no unprocessed event exists below the floor): they
                # are refuted — cancel them now. Without this, a
                # buffered send below every pending event would pin GVT
                # (and a bounded-optimism window) forever.
                floor = compute_gvt(queues, (m.time for _, _, m in in_flight))
                for index, buffer in lazy_buffers.items():
                    if buffer and buffer[0].time < floor:
                        lp_ = lps[index]
                        flush_lazy(
                            lp_,
                            wall[lp_.node],
                            before=None if floor == GVT_END else int(floor),
                        )
                drain_cancels(max(wall))
            # Remaining lazily-buffered sends are pending cancellation
            # obligations: they hold GVT back just like in-flight
            # messages, or fossil collection would free the very
            # positives their antis must eventually annihilate.
            outstanding = [m.time for _, _, m in in_flight]
            if lazy:
                outstanding.extend(
                    buffer[0].time for buffer in lazy_buffers.values() if buffer
                )
            gvt = compute_gvt(queues, outstanding)
            if gvt < GVT_END:
                for lp_ in lps:
                    lp_.fossil_collect(int(gvt))
            for node_ in range(n_nodes):
                wall[node_] += cost.gvt_cost
                busy[node_] += cost.gvt_cost
            utilization_timeline.append(
                (
                    max(wall),
                    [busy[i] - busy_at_last_sample[i] for i in range(n_nodes)],
                )
            )
            for i in range(n_nodes):
                busy_at_last_sample[i] = busy[i]
            if migration_threshold is not None and gvt < GVT_END:
                migrate_load()
            if tracer is not None:
                tracer.emit(
                    "gvt_round",
                    cid=counters["gvt_rounds"],
                    gvt=float(gvt),
                    final=gvt == GVT_END,
                    latency=time.perf_counter() - round_t0,
                    trips=1,
                )
            return gvt

        def migrate_load() -> None:
            """Move the hottest LPs from the busiest to the idlest node.

            Runs inside a GVT round: everything below GVT is committed,
            in-flight and anti-messages resolve their target node at
            delivery time, and the moved LP's pending events follow it —
            so migration is transparent to the Time Warp protocol.
            """
            window = [busy[i] - busy_at_last_gvt[i] for i in range(n_nodes)]
            for i in range(n_nodes):
                busy_at_last_gvt[i] = busy[i]
            hot = max(range(n_nodes), key=lambda i: (window[i], -i))
            cold = min(range(n_nodes), key=lambda i: (window[i], i))
            if hot == cold:
                return
            if window[hot] <= migration_threshold * max(window[cold], 1e-9):
                return
            residents = [
                lp_.gate.index for lp_ in lps if lp_.node == hot
            ]
            if len(residents) <= 1:
                return  # never strip a node bare
            budget = max(1, round(len(residents) * machine.migration_fraction))
            budget = min(budget, len(residents) - 1)
            # Selection: shed load without shredding locality. Moving
            # the hottest LPs maximises the new cut (their traffic is
            # with their co-located neighbours); instead prefer LPs
            # loosely attached to the hot node (few same-node
            # neighbours), then higher activity so the move transfers
            # real work.
            resident_set = set(residents)

            def attachment(gate_index: int) -> int:
                gate = circuit.gates[gate_index]
                return sum(
                    1
                    for other in (*gate.fanin, *gate.fanout)
                    if other in resident_set
                )

            residents.sort(
                key=lambda g: (attachment(g), -lp_activity[g], g)
            )
            moving = residents[:budget]
            moved_set = set(moving)
            for gate_index in moving:
                lps[gate_index].node = cold
            for msg in queues[hot].extract_dests(moved_set):
                queues[cold].push(msg)
            transfer = cost.migrate_lp_cost * len(moving)
            wall[hot] += transfer
            busy[hot] += transfer
            wall[cold] = max(wall[cold], wall[hot]) + transfer
            busy[cold] += transfer
            counters["migrations"] += len(moving)
            node_stats[hot].num_lps -= len(moving)
            node_stats[cold].num_lps += len(moving)
            # Decay activity so the score tracks RECENT load.
            for g in range(circuit.num_gates):
                lp_activity[g] *= 0.5

        while True:
            next_arrival = in_flight[0][0] if in_flight else None
            horizon = None if window is None else gvt_now + window
            proc_node = -1
            proc_wall = None
            any_pending = False
            for node in range(n_nodes):
                # One fused peek per node: emptiness and the window
                # check share it (this scan runs once per processed
                # event and dominated the profile when split).
                min_time = queues[node].min_time()
                if min_time is None:
                    continue
                any_pending = True
                if horizon is not None and min_time > horizon:
                    continue  # beyond the optimism window: node idles
                if proc_wall is None or wall[node] < proc_wall:
                    proc_wall = wall[node]
                    proc_node = node
            if next_arrival is None and not any_pending:
                if lazy and any(lazy_buffers.values()):
                    # Quiescence with unresolved lazy sends: those
                    # messages will never be re-derived — cancel them all
                    # and let the cleanup cascade settle.
                    for lp_ in lps:
                        flush_lazy(lp_, max(wall), before=None)
                    drain_cancels(max(wall))
                    continue
                break
            if proc_wall is None and next_arrival is None:
                # Every pending event sits beyond the window: a fresh GVT
                # round re-opens it (min pending time IS the new GVT).
                since_gvt = 0
                gvt_now = run_gvt_round()
                continue
            if proc_wall is None or (
                next_arrival is not None and next_arrival <= proc_wall
            ):
                arrival, _, msg = heapq.heappop(in_flight)
                deliver(msg, arrival)
                continue

            node = proc_node
            msg = queues[node].pop()
            lp = lps[msg.dest]
            if lazy and lazy_buffers.get(msg.dest):
                # Buffered sends with an emission time this event can no
                # longer produce are refuted: virtual time passed them.
                flush_lazy(lp, wall[node], before=msg.time)
            record = lp.process(msg, next_uid)
            if trace:
                trace("process", msg.uid, msg.dest, msg.key)
            if msg.prio == CAPTURE and record.old_output != lp.output_value:
                capture_log[(msg.dest, msg.n)] = lp.output_value
            counters["events"] += 1
            node_stats[node].events_processed += 1
            lp_activity[msg.dest] += 1.0
            if counters["events"] > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "thrashing rollbacks or workload too large"
                )
            wall[node] += event_cost
            busy[node] += event_cost
            if checkpointing and lp._since_checkpoint == 0:
                wall[node] += cost.state_save_cost  # snapshot just taken
                busy[node] += cost.state_save_cost
            now = wall[node]
            if lazy and record.emissions and lazy_buffers.get(msg.dest):
                _lazy_match(lp, record, now)
            remote_sends = 0
            for em in record.emissions:
                if em.uid in reused_uids:
                    reused_uids.discard(em.uid)
                    continue  # live at its destination from before the rollback
                dest_node = lps[em.dest].node
                if dest_node == node:
                    counters["local_messages"] += 1
                    node_stats[node].messages_sent_local += 1
                    insert_positive(em, now)
                else:
                    flight_seq += 1
                    heapq.heappush(
                        in_flight,
                        (now + network.latency(node, dest_node), flight_seq, em),
                    )
                    counters["app_messages"] += 1
                    node_stats[node].messages_sent_remote += 1
                    remote_sends += 1
            if remote_sends:
                wall[node] += send_overhead * remote_sends
                busy[node] += send_overhead * remote_sends
            drain_cancels(wall[node])

            since_gvt += 1
            if since_gvt >= gvt_interval:
                since_gvt = 0
                gvt_now = run_gvt_round()

        if waiting_antis:
            raise SimulationError(
                f"{len(waiting_antis)} anti-messages never met their "
                "positive copies — kernel invariant broken"
            )

        for i in range(n_nodes):
            node_stats[i].wall_time = wall[i]
            node_stats[i].busy_time = busy[i]
            if tracer is not None:
                tracer.emit(
                    "node_summary",
                    node=i,
                    busy=busy[i],
                    wall=wall[i],
                    events=node_stats[i].events_processed,
                    rollbacks=node_stats[i].rollbacks,
                    gvt_rounds=counters["gvt_rounds"],
                    num_lps=node_stats[i].num_lps,
                )
        return TimeWarpResult(
            circuit_name=circuit.name,
            algorithm=self.assignment.algorithm,
            num_nodes=n_nodes,
            num_cycles=stim.num_cycles,
            execution_time=max(wall),
            events_processed=counters["events"],
            events_rolled_back=counters["rolled_back"],
            rollbacks=counters["rollbacks"],
            app_messages=counters["app_messages"],
            anti_messages=counters["anti_messages"],
            local_messages=counters["local_messages"],
            gvt_rounds=counters["gvt_rounds"],
            lazy_reuses=counters["lazy_reuses"],
            peak_history=counters["peak_history"],
            migrations=counters["migrations"],
            final_values=[lp.output_value for lp in lps],
            utilization_timeline=utilization_timeline,
            node_stats=node_stats,
            committed_captures=sorted(
                (gate, cycle, value)
                for (gate, cycle), value in capture_log.items()
            ),
        )
