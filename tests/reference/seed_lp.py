"""Logical processes: one per gate, with incremental state saving.

An LP owns local copies of its input signal values (updated only by
messages — LPs never read each other's state directly), its output
value, and a processed-event history. Every ``process`` call appends an
undo record capturing exactly the state it overwrote, so rollback is a
reverse replay of records (incremental state saving, as WARPED does for
small states).
"""

from __future__ import annotations

import bisect

from repro.circuit.gate import FALSE, UNKNOWN, GateType, evaluate_gate
from repro.circuit.graph import Gate
from repro.errors import SimulationError
from repro.sim.event import CAPTURE, SIG, STIM, EventKey
from repro.warped.messages import Message

#: Key smaller than every real event key.
MIN_KEY: EventKey = (-1, -1, -1, -1)


class ProcessedRecord:
    """History entry: the message processed plus undo information."""

    __slots__ = ("msg", "old_input", "old_output", "emissions")

    def __init__(
        self,
        msg: Message,
        old_input: int | None,
        old_output: int,
        emissions: list[Message],
    ) -> None:
        self.msg = msg
        self.old_input = old_input
        self.old_output = old_output
        self.emissions = emissions

    @property
    def key(self) -> EventKey:
        return self.msg.key


class LogicalProcess:
    """Time Warp LP wrapping one gate."""

    __slots__ = (
        "gate",
        "node",
        "input_copy",
        "output_value",
        "last_key",
        "processed",
        "processed_uids",
        "emission_seq",
        "checkpoint_interval",
        "checkpoints",
        "_since_checkpoint",
        "_sink_list",
        "_is_comb",
    )

    def __init__(
        self, gate: Gate, node: int, checkpoint_interval: int | None = None
    ) -> None:
        self.gate = gate
        self.node = node
        self.input_copy: dict[int, int] = dict.fromkeys(gate.fanin, UNKNOWN)
        gt = gate.gate_type
        self.output_value = FALSE if gt is GateType.DFF else UNKNOWN
        self.last_key: EventKey = MIN_KEY
        self.processed: list[ProcessedRecord] = []
        #: None = incremental state saving (per-event undo info, the
        #: default); an integer C = periodic checkpointing: a full state
        #: snapshot every C events, rollback restores the nearest
        #: snapshot and *coasts forward* (state-only replay, no sends).
        self.checkpoint_interval = checkpoint_interval
        #: (key, input_copy snapshot, output_value) — state right AFTER
        #: processing the record with that key.
        self.checkpoints: list[tuple[EventKey, dict[int, int], int]] = [
            (MIN_KEY, dict(self.input_copy), self.output_value)
        ]
        self._since_checkpoint = 0
        #: uids of messages in ``processed`` — the authoritative "has
        #: this copy been processed" test for annihilation. (last_key
        #: comparisons are NOT a substitute: an anti-message can arrive
        #: while its positive is still in flight, with other events
        #: already processed beyond its key.)
        self.processed_uids: set[int] = set()
        # Monotone emission counter: NEVER decremented, even on rollback.
        # A replayed emission thus mints a strictly larger n than the
        # stale copy its anti-message is chasing, keeping event keys
        # unique per destination; relative order among committed
        # emissions still follows evaluation (key) order, so final
        # results stay identical to the sequential engine's.
        self.emission_seq = 0
        # Unique sinks in first-occurrence order: parallel edges carry
        # the same value change, one message copy suffices.
        self._sink_list = list(dict.fromkeys(gate.fanout))
        self._is_comb = gt not in (GateType.DFF, GateType.INPUT)

    # ------------------------------------------------------------------
    def process(self, msg: Message, next_uid) -> ProcessedRecord:
        """Apply *msg*; the caller guarantees ``msg.key > self.last_key``.

        ``next_uid`` is a callable minting fresh message uids. Returns
        the history record (its ``emissions`` are the messages the
        kernel must route).
        """
        if msg.key <= self.last_key:
            raise SimulationError(
                f"LP {self.gate.name}: straggler {msg!r} reached process() "
                f"(last key {self.last_key}); kernel must roll back first"
            )
        gate = self.gate
        old_output = self.output_value
        old_input: int | None = None
        emissions: list[Message] = []

        if msg.prio == CAPTURE:
            data = self.input_copy[gate.fanin[0]]
            if data != self.output_value:
                self.output_value = data
                emissions = self._emit_change(
                    msg.time + gate.delay, data, next_uid
                )
        elif msg.prio == STIM and msg.src == gate.index:
            # Own stimulus: apply, fan the SAME key out to the sinks.
            if msg.value != self.output_value:
                self.output_value = msg.value
                emissions = [
                    Message(
                        msg.time, STIM, gate.index, msg.n,
                        msg.value, sink, next_uid(),
                    )
                    for sink in self._sink_list
                ]
        else:
            # Signal (or stimulus copy) from a driving LP.
            old_input = self.input_copy[msg.src]
            self.input_copy[msg.src] = msg.value
            if self._is_comb:
                nv = evaluate_gate(
                    gate.gate_type,
                    [self.input_copy[d] for d in gate.fanin],
                )
                if nv != self.output_value:
                    self.output_value = nv
                    emissions = self._emit_change(
                        msg.time + gate.delay, nv, next_uid
                    )

        record = ProcessedRecord(msg, old_input, old_output, emissions)
        self.processed.append(record)
        self.processed_uids.add(msg.uid)
        self.last_key = msg.key
        if self.checkpoint_interval is not None:
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.checkpoint_interval:
                self.checkpoints.append(
                    (msg.key, dict(self.input_copy), self.output_value)
                )
                self._since_checkpoint = 0
        return record

    def _emit_change(self, time: int, value: int, next_uid) -> list[Message]:
        """Mint the output-change copies for every sink at *time*."""
        n = self.emission_seq
        self.emission_seq = n + 1
        gate_index = self.gate.index
        return [
            Message(time, SIG, gate_index, n, value, sink, next_uid())
            for sink in self._sink_list
        ]

    # ------------------------------------------------------------------
    def undo_last(self) -> ProcessedRecord:
        """Pop and revert the most recent history record."""
        if not self.processed:
            raise SimulationError(
                f"LP {self.gate.name}: nothing to undo (fossil-collected?)"
            )
        record = self.processed.pop()
        self.processed_uids.discard(record.msg.uid)
        self.output_value = record.old_output
        if record.old_input is not None:
            self.input_copy[record.msg.src] = record.old_input
        # emission_seq is deliberately NOT rewound (see __init__).
        self.last_key = self.processed[-1].key if self.processed else MIN_KEY
        return record

    def apply_state_only(self, msg: Message) -> None:
        """Re-apply *msg*'s state effect without emitting (coast-forward).

        The emissions produced the first time around are still valid —
        they live in the preserved records or were already delivered —
        so replay only has to rebuild the local state.
        """
        gate = self.gate
        if msg.prio == CAPTURE:
            data = self.input_copy[gate.fanin[0]]
            if data != self.output_value:
                self.output_value = data
        elif msg.prio == STIM and msg.src == gate.index:
            if msg.value != self.output_value:
                self.output_value = msg.value
        else:
            self.input_copy[msg.src] = msg.value
            if self._is_comb:
                nv = evaluate_gate(
                    gate.gate_type,
                    [self.input_copy[d] for d in gate.fanin],
                )
                if nv != self.output_value:
                    self.output_value = nv

    def rollback_to(self, to_key: EventKey) -> tuple[list[ProcessedRecord], int]:
        """Checkpoint-mode rollback: undo every record with key >= *to_key*.

        Restores the latest snapshot strictly before *to_key* and coasts
        forward through the surviving records after it. Returns the
        undone records (newest last) and the number of coasted events
        (the re-execution work the machine model charges for).
        """
        if self.checkpoint_interval is None:
            raise SimulationError(
                "rollback_to is for checkpoint mode; use undo_last"
            )
        keys = [record.key for record in self.processed]
        pos = bisect.bisect_left(keys, to_key)
        undone = self.processed[pos:]
        for record in undone:
            self.processed_uids.discard(record.msg.uid)
        del self.processed[pos:]

        while self.checkpoints and self.checkpoints[-1][0] >= to_key:
            self.checkpoints.pop()
        if not self.checkpoints:
            raise SimulationError(
                f"LP {self.gate.name}: no checkpoint before {to_key} "
                "(fossil collection must always keep a base snapshot)"
            )
        ckpt_key, snapshot, out = self.checkpoints[-1]
        self.input_copy = dict(snapshot)
        self.output_value = out
        start = bisect.bisect_right(keys[:pos], ckpt_key)
        coasted = 0
        for record in self.processed[start:]:
            self.apply_state_only(record.msg)
            coasted += 1
        self.last_key = self.processed[-1].key if self.processed else MIN_KEY
        self._since_checkpoint = len(self.processed) - start
        return undone, coasted

    def fossil_collect(self, gvt: int) -> int:
        """Drop history strictly below *gvt*; returns records freed."""
        keep_from = 0
        for keep_from, record in enumerate(self.processed):  # noqa: B007
            if record.msg.time >= gvt:
                break
        else:
            keep_from = len(self.processed)
        if keep_from:
            if self.checkpoint_interval is not None:
                # Rebuild the committed-state base at the collection
                # boundary: restore the newest snapshot at or before the
                # last dropped record, coast through the dropped suffix,
                # and make that the new base checkpoint. Without it, a
                # later rollback could need records that no longer exist.
                boundary_key = self.processed[keep_from - 1].key
                base_index = 0
                for i, (key, _, _) in enumerate(self.checkpoints):
                    if key <= boundary_key:
                        base_index = i
                base_key, snapshot, out = self.checkpoints[base_index]
                state = dict(snapshot)
                saved_input, saved_output = self.input_copy, self.output_value
                self.input_copy = state
                self.output_value = out
                for record in self.processed[:keep_from]:
                    if record.key > base_key:
                        self.apply_state_only(record.msg)
                boundary_snapshot = (
                    boundary_key, dict(self.input_copy), self.output_value
                )
                self.input_copy, self.output_value = saved_input, saved_output
                self.checkpoints = [boundary_snapshot] + [
                    c for c in self.checkpoints if c[0] > boundary_key
                ]
            for record in self.processed[:keep_from]:
                self.processed_uids.discard(record.msg.uid)
            del self.processed[:keep_from]
        return keep_from

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LP({self.gate.name}, node={self.node}, out={self.output_value}, "
            f"last={self.last_key})"
        )
