"""Per-node pending-event queue with annihilation support.

A node holds ONE queue over all its LPs (the clustered organisation of
WARPED: LPs of a cluster share a scheduler). The queue orders messages
by the deterministic event key and supports lazy deletion by ``uid``,
which is how an anti-message annihilates an unprocessed positive copy.
"""

from __future__ import annotations

import heapq

from repro.warped.messages import Message


class NodeQueue:
    """Min-heap of :class:`Message` with O(1) uid membership/deletion."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[int, int, int, int, int, int], Message]] = []
        self._pending_uids: set[int] = set()
        self._dead_uids: set[int] = set()

    def push(self, msg: Message) -> None:
        """Insert *msg*."""
        heapq.heappush(self._heap, (msg.sort_key, msg))
        self._pending_uids.add(msg.uid)

    def pop(self) -> Message:
        """Remove and return the earliest live message."""
        while self._heap:
            _, msg = heapq.heappop(self._heap)
            if msg.uid in self._dead_uids:
                self._dead_uids.discard(msg.uid)
                continue
            self._pending_uids.discard(msg.uid)
            return msg
        raise IndexError("pop from empty NodeQueue")

    def contains_uid(self, uid: int) -> bool:
        """True iff a live message with *uid* is pending."""
        return uid in self._pending_uids

    def annihilate(self, uid: int) -> None:
        """Delete the pending message with *uid* (must be present)."""
        if uid not in self._pending_uids:
            raise KeyError(f"uid {uid} not pending")
        self._pending_uids.discard(uid)
        self._dead_uids.add(uid)

    def peek_key(self) -> tuple[int, int, int, int, int, int] | None:
        """Sort key of the earliest live message, or ``None``."""
        while self._heap:
            sort_key, msg = self._heap[0]
            if msg.uid in self._dead_uids:
                heapq.heappop(self._heap)
                self._dead_uids.discard(msg.uid)
                continue
            return sort_key
        return None

    def min_time(self) -> int | None:
        """Virtual time of the earliest pending message (for GVT)."""
        key = self.peek_key()
        return key[0] if key is not None else None

    def extract_dests(self, dests: set[int]) -> list[Message]:
        """Remove and return all pending messages addressed to *dests*.

        Used by LP migration: the moved LP's queued work follows it to
        its new node. Lazily-deleted entries are dropped on the way.
        """
        kept: list[tuple[tuple[int, int, int, int, int, int], Message]] = []
        moved: list[Message] = []
        for sort_key, msg in self._heap:
            if msg.uid in self._dead_uids:
                self._dead_uids.discard(msg.uid)
                continue
            if msg.dest in dests:
                moved.append(msg)
                self._pending_uids.discard(msg.uid)
            else:
                kept.append((sort_key, msg))
        heapq.heapify(kept)
        self._heap = kept
        return moved

    def __len__(self) -> int:
        return len(self._pending_uids)

    def __bool__(self) -> bool:
        return bool(self._pending_uids)
