"""Tests for activity profiling and the activity-weighted multilevel."""

import pytest

from repro.errors import SimulationError
from repro.partition import get_partitioner
from repro.partition.extra_activity import ActivityMultilevelPartitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.sim.activity import ActivityProfile, profile_activity
from repro.warped import TimeWarpSimulator, VirtualMachine


class TestProfiling:
    def test_counts_match_trace_totals(self, small_circuit):
        profile = profile_activity(small_circuit, num_cycles=10, seed=1)
        assert len(profile.changes) == small_circuit.num_gates
        assert profile.total_changes > 0

    def test_deterministic(self, small_circuit):
        a = profile_activity(small_circuit, num_cycles=10, seed=1)
        b = profile_activity(small_circuit, num_cycles=10, seed=1)
        assert a.changes == b.changes

    def test_edge_weight_floor(self, small_circuit):
        profile = profile_activity(small_circuit, num_cycles=4, seed=1)
        for gate in range(small_circuit.num_gates):
            assert profile.edge_weight(gate) >= 1

    def test_active_inputs_score_high(self, small_circuit):
        """Primary inputs toggling every cycle out-score silent logic."""
        stim = RandomStimulus(
            small_circuit, num_cycles=20, seed=2, activity=1.0
        )
        profile = profile_activity(small_circuit, stimulus=stim)
        pi_activity = min(
            profile.changes[pi] for pi in small_circuit.primary_inputs
        )
        assert pi_activity >= 19  # one change per cycle (first cycle may hold)

    def test_rejects_too_few_cycles(self, small_circuit):
        with pytest.raises(SimulationError, match="2 cycles"):
            profile_activity(small_circuit, num_cycles=1)

    def test_counts_equal_kernel_trace(self, s27):
        """Profile counts == number of output-change events per gate."""
        from repro.sim import Trace

        stim = RandomStimulus(s27, num_cycles=15, seed=4)
        trace = Trace(s27)  # watch everything
        SequentialSimulator(s27, stim, trace=trace).run()
        profile = profile_activity(s27, stimulus=stim)
        for gate in range(s27.num_gates):
            assert profile.changes[gate] == len(trace.changes(gate))


class TestActivityMultilevel:
    def test_valid_partition(self, medium_circuit):
        p = ActivityMultilevelPartitioner(seed=3)
        a = p.partition(medium_circuit, 4)
        a.validate()
        assert p.last_profile is not None

    def test_registry_name(self, medium_circuit):
        p = get_partitioner("ActivityML", seed=3)
        a = p.partition(medium_circuit, 4)
        assert a.algorithm == "ActivityML"

    def test_precomputed_profile_used(self, medium_circuit):
        profile = profile_activity(medium_circuit, num_cycles=8, seed=9)
        p = ActivityMultilevelPartitioner(seed=3, profile=profile)
        p.partition(medium_circuit, 4)
        assert p.last_profile is profile

    def test_foreign_profile_replaced(self, medium_circuit, small_circuit):
        foreign = profile_activity(small_circuit, num_cycles=8, seed=9)
        p = ActivityMultilevelPartitioner(seed=3, profile=foreign)
        p.partition(medium_circuit, 4)
        assert p.last_profile is not foreign

    def test_oracle_holds(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        a = ActivityMultilevelPartitioner(seed=3).partition(medium_circuit, 4)
        tw = TimeWarpSimulator(
            medium_circuit, a, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert tw.final_values == seq.final_values

    def test_reduces_weighted_traffic(self, medium_circuit):
        """Activity weighting cuts *actual* messages vs plain multilevel
        on the profiled workload (the §6 hypothesis)."""
        stim = RandomStimulus(medium_circuit, num_cycles=30, seed=7)
        profile = profile_activity(medium_circuit, stimulus=stim)
        plain = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 6
        )
        weighted = ActivityMultilevelPartitioner(
            seed=3, profile=profile
        ).partition(medium_circuit, 6)

        def traffic(assignment):
            total = 0
            for u, v in medium_circuit.edges():
                if assignment[u] != assignment[v]:
                    total += profile.changes[u]
            return total

        assert traffic(weighted) <= traffic(plain)
