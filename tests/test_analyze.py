"""Trace forensics: cascade reconstruction, attribution, the scorecard.

The synthetic tests pin the cascade-linking semantics on handcrafted
records; the engine tests then hold both Time Warp backends to the
acceptance reconciliation — every rollback in a real trace lands in
exactly one cascade, and the forest's wasted-event total equals the
kernel's ``rolled_back`` counter, with committed timelines accounting
for ``events - rolled_back``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    TraceWriter,
    analyze_trace,
    build_cascades,
    read_trace,
    render_analysis,
    render_scorecard,
    scorecard_row,
)
from repro.obs.analyze import (
    commit_timelines,
    critical_path,
    wall_time_attribution,
)
from repro.obs.causality import extract_rollbacks, link_rollbacks
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine

REPO = Path(__file__).resolve().parent.parent


def _rb(seq, node, lp, depth, *, kind, uid=None, src=None, cause_node=None,
        antis=(), ts=None):
    return {
        "ts": seq * 0.001 if ts is None else ts, "node": node, "seq": seq,
        "kind": "rollback", "rid": seq, "lp": lp, "depth": depth, "t": 100,
        "cause_kind": kind, "cause_uid": uid, "cause_src": src,
        "cause_node": cause_node, "cause_t": 90, "antis": list(antis),
    }


# ----------------------------------------------------------------------
# synthetic cascades: the linking semantics, pinned
# ----------------------------------------------------------------------
class TestCascadeLinking:
    def test_straggler_roots_anti_children_chain(self):
        # Straggler hits LP 5 on node 0, undoing sends 10 and 11; their
        # antis roll back LPs on node 1; one of those undoes send 12,
        # whose anti rolls back a third LP. One cascade, chain depth 3.
        records = [
            _rb(0, 0, 5, 4, kind="straggler", uid=99, src=2, cause_node=1,
                antis=(10, 11)),
            _rb(1, 1, 7, 2, kind="anti", uid=10, src=5, cause_node=0,
                antis=(12,)),
            _rb(2, 1, 8, 1, kind="anti", uid=11, src=5, cause_node=0),
            _rb(3, 1, 9, 3, kind="anti", uid=12, src=7, cause_node=1),
        ]
        cascades = build_cascades(records)
        assert len(cascades) == 1
        cascade = cascades[0]
        assert cascade.root.lp == 5
        assert cascade.width == 4
        assert cascade.wasted == 4 + 2 + 1 + 3
        assert cascade.chain_depth == 3
        assert cascade.nodes == (0, 1)
        # The root was remote-caused: its cut edge is counted, as are
        # the anti-crossings into node 1.
        edges = cascade.boundary_edges()
        assert edges[(2, 5)] == 1       # straggler's cut edge
        assert edges[(5, 7)] == 1       # anti that crossed 0 -> 1
        assert (7, 9) not in edges      # same-node anti: not a cut edge

    def test_unrelated_stragglers_make_separate_cascades(self):
        records = [
            _rb(0, 0, 1, 2, kind="straggler"),
            _rb(1, 1, 2, 3, kind="straggler"),
        ]
        cascades = build_cascades(records)
        assert len(cascades) == 2
        assert sum(c.wasted for c in cascades) == 5

    def test_anti_links_to_latest_earlier_undo(self):
        # uid 10 is undone twice (lazy reuse): the anti-caused rollback
        # must link to the LATEST undo that precedes it, and an
        # even-later undo must not capture it.
        records = [
            _rb(0, 0, 1, 1, kind="straggler", antis=(10,)),
            _rb(1, 0, 1, 1, kind="straggler", antis=(10,)),
            _rb(2, 1, 3, 1, kind="anti", uid=10, src=1, cause_node=0),
            _rb(3, 0, 1, 1, kind="straggler", antis=(10,)),
        ]
        rollbacks = extract_rollbacks(records)
        link_rollbacks(rollbacks)
        assert rollbacks[2].parent is rollbacks[1]
        assert build_cascades(records)[1].width == 2

    def test_unresolvable_anti_roots_its_own_cascade(self):
        # cause_uid never appears in any antis list (e.g. truncated
        # trace): the rollback still lands in exactly one cascade.
        records = [_rb(0, 0, 1, 2, kind="anti", uid=777)]
        cascades = build_cascades(records)
        assert len(cascades) == 1 and cascades[0].wasted == 2

    def test_empty_trace_analyzes_cleanly(self):
        analysis = analyze_trace([])
        assert analysis["cascade"]["cascades"] == 0
        assert analysis["cascade"]["chain_depth"]["count"] == 0
        assert analysis["commits"]["committed_total"] == 0
        assert "rollbacks: 0" in render_analysis(analysis)


# ----------------------------------------------------------------------
# real traces: the acceptance reconciliation, both backends
# ----------------------------------------------------------------------
def _reconcile(records, result):
    cascades = build_cascades(records)
    assert sum(c.width for c in cascades) == result.rollbacks
    assert sum(c.wasted for c in cascades) == result.events_rolled_back
    timelines = commit_timelines(records)
    committed = sum(b["committed"] for b in timelines.values())
    assert committed == result.events_processed - result.events_rolled_back
    return cascades


class TestEngineReconciliation:
    def test_virtual_trace_reconciles_exactly(self, s27, tmp_path):
        path = str(tmp_path / "v.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=5)
        assignment = get_partitioner("Random", seed=4).partition(s27, 3)
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                s27, assignment, stimulus,
                VirtualMachine(num_nodes=3, gvt_interval=64), tracer=tracer,
            ).run()
        records = read_trace(path)
        assert result.rollbacks > 0
        cascades = _reconcile(records, result)
        # Remote-caused members carry the resident node of their
        # sender, so cut-edge attribution has real endpoints.
        remote = [
            m for c in cascades for m in c.members if m.remote_cause
        ]
        assert remote, "a 3-way random partition must produce remote causes"

    def test_virtual_checkpointing_and_lazy_reconcile(self, s27, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=5)
        assignment = get_partitioner("DFS", seed=1).partition(s27, 3)
        machine = VirtualMachine(
            num_nodes=3, gvt_interval=64,
            checkpoint_interval=4, cancellation="lazy",
        )
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                s27, assignment, stimulus, machine, tracer=tracer
            ).run()
        _reconcile(read_trace(path), result)

    def test_process_trace_reconciles_exactly(self, s27, tmp_path):
        path = str(tmp_path / "p.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
        assignment = get_partitioner("Multilevel", seed=3).partition(s27, 4)
        result = ProcessTimeWarpSimulator(
            s27, assignment, stimulus,
            VirtualMachine(num_nodes=4, gvt_interval=32),
            trace_path=path,
        ).run()
        _reconcile(read_trace(path), result)

    def test_virtual_attribution_decomposes_busy(self, s27, tmp_path):
        path = str(tmp_path / "attr.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=5)
        assignment = get_partitioner("Multilevel", seed=3).partition(s27, 4)
        with TraceWriter(path) as tracer:
            TimeWarpSimulator(
                s27, assignment, stimulus,
                VirtualMachine(num_nodes=4, gvt_interval=64), tracer=tracer,
            ).run()
        attribution = wall_time_attribution(read_trace(path))
        assert len(attribution["nodes"]) == 4
        for bucket in attribution["nodes"].values():
            attr = bucket["attr"]
            parts = sum(
                attr[k] for k in
                ("compute", "rollback", "gvt", "send", "recv", "migration")
            )
            # recv is the exact residual, so the parts resum to busy.
            assert parts == pytest.approx(bucket["busy"], rel=1e-9)
            assert attr["idle"] == pytest.approx(
                bucket["wall"] - bucket["busy"], abs=1e-9
            )
            assert all(v >= 0 for v in attr.values())


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_path_is_a_real_circuit_chain(self, s27, tmp_path):
        path = str(tmp_path / "cp.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=5)
        assignment = get_partitioner("Multilevel", seed=3).partition(s27, 4)
        machine = VirtualMachine(num_nodes=4, gvt_interval=64)
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                s27, assignment, stimulus, machine, tracer=tracer
            ).run()
        records = read_trace(path)
        cp = critical_path(
            records, s27, assignment=assignment,
            cost_model=machine.cost_model,
        )
        assert 0 < cp["events"] <= result.events_processed
        # Consecutive path gates are real fanin edges of the circuit.
        for u, v in zip(cp["path"], cp["path"][1:]):
            assert u in s27.gates[v].fanin
        assert 0 <= cp["crossings"] <= max(0, len(cp["path"]) - 1)
        assert cp["est_seconds"] > 0
        # The modelled run can never beat the critical-path bound by
        # more than its crossing/overhead slack on a single node.
        assert cp["est_seconds"] <= result.execution_time * result.num_nodes


# ----------------------------------------------------------------------
# the scorecard
# ----------------------------------------------------------------------
class TestScorecard:
    def _traced_run(self, s27, tmp_path, algorithm="Multilevel"):
        path = str(tmp_path / f"{algorithm}.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=5)
        assignment = get_partitioner(algorithm, seed=3).partition(s27, 4)
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                s27, assignment, stimulus,
                VirtualMachine(num_nodes=4, gvt_interval=64), tracer=tracer,
            ).run()
        return result, assignment, read_trace(path)

    def test_row_reconciles_and_renders(self, s27, tmp_path):
        result, assignment, records = self._traced_run(s27, tmp_path)
        row = scorecard_row(result, assignment, records)
        assert row["reconciled"] is True
        assert row["rollbacks"] == result.rollbacks
        assert row["edge_cut"] > 0
        assert 0 < row["boundary_lps"] <= s27.num_gates
        text = render_scorecard([row])
        assert "Multilevel" in text and "rb/cut" in text

    def test_unaccounted_trace_is_rejected(self, s27, tmp_path):
        result, assignment, records = self._traced_run(s27, tmp_path)
        # Drop one rollback record: the scorecard must refuse to
        # build a row from a trace that no longer accounts for the
        # kernel's counters.
        tampered = [r for r in records if r.get("kind") != "rollback"]
        tampered += [r for r in records if r.get("kind") == "rollback"][:-1]
        with pytest.raises(AssertionError, match="unattributed|reconcile"):
            scorecard_row(result, assignment, tampered)


# ----------------------------------------------------------------------
# the tools, end to end (subprocess, like CI runs them)
# ----------------------------------------------------------------------
def _tool(args, **kwargs):
    return subprocess.run(
        [sys.executable, *args], cwd=REPO, capture_output=True, text=True,
        timeout=300, **kwargs,
    )


class TestTools:
    def test_partition_report_scorecard(self, tmp_path):
        out = tmp_path / "rows.json"
        proc = _tool([
            "tools/partition_report.py", "--circuit", "s27", "--nodes", "2",
            "--cycles", "15", "--json", str(out),
        ])
        assert proc.returncode == 0, proc.stderr
        assert "cascade-attributed" in proc.stdout
        import json

        rows = json.loads(out.read_text())
        assert [r["algorithm"] for r in rows] == [
            "Random", "DFS", "Cluster", "Topological", "Multilevel",
            "ConePartition",
        ]
        assert all(r["reconciled"] for r in rows)

    def test_trace_report_compare_flags_regression(self, s27, tmp_path):
        quiet = str(tmp_path / "a.jsonl")
        noisy = str(tmp_path / "b.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
        for path, algorithm, k in (
            (quiet, "ConePartition", 2), (noisy, "Random", 4),
        ):
            assignment = get_partitioner(algorithm, seed=4).partition(s27, k)
            with TraceWriter(path) as tracer:
                TimeWarpSimulator(
                    s27, assignment, stimulus,
                    VirtualMachine(num_nodes=k, gvt_interval=64),
                    tracer=tracer,
                ).run()
        same = _tool(["tools/trace_report.py", "--compare", quiet, quiet])
        assert same.returncode == 0 and "OK" in same.stdout
        worse = _tool(["tools/trace_report.py", "--compare", quiet, noisy])
        assert worse.returncode == 1 and "REGRESSION" in worse.stdout

    def test_tw_top_once_renders_snapshots(self, s27, tmp_path):
        status = str(tmp_path / "run.status")
        stimulus = RandomStimulus(s27, num_cycles=15, period=20, seed=5)
        assignment = get_partitioner("Multilevel", seed=3).partition(s27, 2)
        ProcessTimeWarpSimulator(
            s27, assignment, stimulus, VirtualMachine(num_nodes=2),
            status_path=status,
        ).run()
        proc = _tool(["tools/tw_top.py", status, "--once"])
        assert proc.returncode == 0, proc.stderr
        assert "2 node(s)" in proc.stdout
        assert "done" in proc.stdout
        missing = _tool(["tools/tw_top.py", str(tmp_path / "nope"), "--once"])
        assert missing.returncode == 1


class TestMigrationSummary:
    def test_synthetic_records_aggregate(self):
        from repro.obs.analyze import migration_summary

        records = [
            {"kind": "migr", "src": 0, "dst": 1, "lps": 2, "pending": 5,
             "gvt": 60.0},
            {"kind": "migr", "src": 0, "dst": 1, "lps": 1, "pending": 0,
             "gvt": 120.0},
            {"kind": "migr", "src": 2, "dst": 0, "lps": 3, "pending": 7,
             "gvt": 180.0},
            {"kind": "gvt_round", "cid": 1, "gvt": 60.0},
        ]
        summary = migration_summary(records)
        assert summary["migrations"] == 3
        assert summary["lps_moved"] == 6
        assert summary["pending_moved"] == 12
        assert summary["edges"] == {(0, 1): 3, (2, 0): 3}

    def test_virtual_migrating_trace_renders_section(
        self, medium_circuit, tmp_path
    ):
        from repro.partition import PartitionAssignment

        path = str(tmp_path / "migr.jsonl")
        stimulus = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        n = medium_circuit.num_gates
        cut = int(n * 0.7)
        assignment = PartitionAssignment(
            medium_circuit, 4,
            [0 if i < cut else 1 + (i % 3) for i in range(n)],
            algorithm="skewed",
        )
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                medium_circuit, assignment, stimulus,
                VirtualMachine(
                    num_nodes=4, migration_threshold=1.5, gvt_interval=128
                ),
                tracer=tracer,
            ).run()
        assert result.migrations > 0
        analysis = analyze_trace(read_trace(path))
        summary = analysis["migration"]
        assert summary["lps_moved"] == result.migrations
        assert summary["pending_moved"] >= 0
        assert all(src != dst for src, dst in summary["edges"])
        rendered = render_analysis(analysis)
        assert "migration:" in rendered
        assert "LPs rehomed" in rendered
