"""Unit tests for the benchmark-regression harness.

The measurement side (``benchmarks/bench_hotpath.py``) is exercised on
the one workload cheap enough for the default suite; the trajectory and
comparison logic of ``tools/bench_runner.py`` is pure and tested
directly.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str, path: Path):
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    return module


bench_runner = _load("bench_runner", REPO_ROOT / "tools" / "bench_runner.py")
bench_hotpath = _load(
    "bench_hotpath", REPO_ROOT / "benchmarks" / "bench_hotpath.py"
)


def _entry(rates: dict[str, dict[str, float]]) -> dict:
    return {
        "schema": 1,
        "workloads": {
            workload: {
                engine: {"events": 100, "events_per_sec": rate}
                for engine, rate in engines.items()
            }
            for workload, engines in rates.items()
        },
    }


class TestCompareRuns:
    def test_clean_when_no_loss(self):
        baseline = _entry({"w": {"timewarp": 1000.0}})
        current = _entry({"w": {"timewarp": 990.0}})
        assert bench_runner.compare_runs(baseline, current, 0.20) == []

    def test_loss_within_threshold_passes(self):
        baseline = _entry({"w": {"timewarp": 1000.0}})
        current = _entry({"w": {"timewarp": 801.0}})
        assert bench_runner.compare_runs(baseline, current, 0.20) == []

    def test_loss_beyond_threshold_fails(self):
        baseline = _entry({"w": {"timewarp": 1000.0}})
        current = _entry({"w": {"timewarp": 799.0}})
        failures = bench_runner.compare_runs(baseline, current, 0.20)
        assert len(failures) == 1
        assert "w/timewarp" in failures[0]

    def test_new_pairs_pass_vacuously(self):
        baseline = _entry({"w": {"timewarp": 1000.0}})
        current = _entry(
            {"w": {"timewarp": 1000.0, "process": 1.0}, "new": {"seq": 1.0}}
        )
        assert bench_runner.compare_runs(baseline, current, 0.20) == []

    def test_only_current_pairs_checked(self):
        # A workload dropped from the current run cannot fail the gate
        # (the gate guards what ran, the schema guards coverage).
        baseline = _entry({"w": {"timewarp": 1000.0}, "old": {"seq": 9e9}})
        current = _entry({"w": {"timewarp": 1000.0}})
        assert bench_runner.compare_runs(baseline, current, 0.20) == []


class TestTrajectory:
    def test_numbering_starts_at_one(self, tmp_path):
        assert bench_runner.next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_numbering_is_monotone_and_gap_tolerant(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        (tmp_path / "BENCH_other.json").write_text("{}")  # not an entry
        entries = bench_runner.trajectory(tmp_path)
        assert [n for n, _ in entries] == [1, 7]
        assert bench_runner.next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_repo_has_a_committed_first_entry(self):
        entries = bench_runner.trajectory(REPO_ROOT)
        assert entries and entries[0][0] == 1, "BENCH_1.json must exist"
        payload = json.loads(entries[0][1].read_text())
        assert payload["schema"] == bench_runner.SCHEMA_VERSION
        cell = payload["workloads"]["s9234-table2-8"]["timewarp"]
        assert cell["events"] == 24846  # the pinned acceptance cell
        assert cell["peak_history"] == 942


class TestWorkloads:
    def test_registry_covers_ci_and_acceptance(self):
        assert {"s27", "synthetic-s5378", "s9234-table2-8"} <= set(
            bench_hotpath.WORKLOADS
        )
        for workload in bench_hotpath.WORKLOADS.values():
            unknown = set(workload.engines) - set(bench_hotpath.ENGINES)
            assert not unknown, f"{workload.name}: {unknown}"

    def test_s27_measurement_is_pinned(self):
        # The real end-to-end path, minus the process backend (which
        # spawns OS processes — covered by the CI bench job instead).
        workload = bench_hotpath.WORKLOADS["s27"]
        world = bench_hotpath.build_world(workload)
        sequential = bench_hotpath.run_engine("sequential", workload, world)
        timewarp = bench_hotpath.run_engine("timewarp", workload, world)
        again = bench_hotpath.run_engine("timewarp", workload, world)
        assert sequential["peak_history"] is None
        assert sequential["events"] > 0
        assert timewarp["events"] == again["events"]  # deterministic
        assert timewarp["peak_history"] == again["peak_history"]
        for record in (sequential, timewarp):
            assert record["events_per_sec"] > 0
            assert record["elapsed_sec"] > 0

    def test_unknown_engine_rejected(self):
        workload = bench_hotpath.WORKLOADS["s27"]
        world = bench_hotpath.build_world(workload)
        with pytest.raises(ValueError, match="unknown engine"):
            bench_hotpath.run_engine("quantum", workload, world)
