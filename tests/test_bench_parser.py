"""Unit tests for the ISCAS'89 .bench reader/writer."""

import pytest

from repro.circuit import (
    GateType,
    GeneratorSpec,
    generate_circuit,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.errors import BenchParseError


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        c = parse_bench("# hi\n\nINPUT(a)\n  # more\nb = NOT(a)\nOUTPUT(b)\n")
        assert c.num_gates == 2

    def test_gate_types_mapped(self):
        src = "INPUT(a)\nINPUT(b)\n"
        src += "".join(
            f"g{i} = {op}(a, b)\n"
            for i, op in enumerate(["AND", "NAND", "OR", "NOR", "XOR", "XNOR"])
        )
        src += "h = NOT(a)\nk = BUFF(b)\nf = DFF(h)\nOUTPUT(g0)\n"
        # give every gate a fanout or output so nothing is rejected later
        c = parse_bench(src)
        assert c.gates[c.index_of("k")].gate_type is GateType.BUF
        assert c.gates[c.index_of("f")].gate_type is GateType.DFF

    def test_forward_reference(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = BUF(a)\n")
        assert c.fanin(c.index_of("y")) == [c.index_of("z")]

    def test_output_before_definition(self):
        c = parse_bench("OUTPUT(y)\nINPUT(a)\ny = NOT(a)\n")
        assert c.primary_outputs == [c.index_of("y")]

    def test_case_insensitive_keywords(self):
        c = parse_bench("input(a)\noutput(y)\ny = not(a)\n")
        assert len(c.primary_inputs) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "src, message",
        [
            ("INPUT(a)\nINPUT(a)\n", "duplicate"),
            ("INPUT(a)\ny = FROB(a)\n", "unknown gate type"),
            ("INPUT(a)\ny = NOT()\nOUTPUT(y)", "no inputs"),
            ("INPUT(a)\ny = NOT(q)\nOUTPUT(y)", "undefined"),
            ("OUTPUT(nope)\nINPUT(a)\ny=NOT(a)", "never defined"),
            ("INPUT(a)\nwhat is this line\n", "unrecognised"),
            ("INPUT(a)\na = NOT(a)\n", "duplicate definition"),
        ],
    )
    def test_malformed_input_raises(self, src, message):
        with pytest.raises(BenchParseError, match=message):
            parse_bench(src)

    def test_error_carries_line_number(self):
        try:
            parse_bench("INPUT(a)\nbogus line here\n")
        except BenchParseError as err:
            assert err.line_no == 2
        else:  # pragma: no cover
            pytest.fail("expected BenchParseError")


class TestRoundTrip:
    def test_s27_round_trip(self, s27):
        text = write_bench(s27, header=["round trip"])
        again = parse_bench(text, name="s27")
        assert again.num_gates == s27.num_gates
        assert again.num_edges == s27.num_edges
        assert sorted(
            again.gates[i].name for i in again.primary_outputs
        ) == sorted(s27.gates[i].name for i in s27.primary_outputs)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_circuit_round_trip(self, seed):
        spec = GeneratorSpec(
            name="rt", num_inputs=4, num_outputs=4, num_gates=60,
            num_dffs=5, depth=5, seed=seed,
        )
        c = generate_circuit(spec)
        again = parse_bench(write_bench(c))
        assert again.num_gates == c.num_gates
        assert again.num_edges == c.num_edges
        # same adjacency by names
        for g1 in c.gates:
            g2 = again.gates[again.index_of(g1.name)]
            assert g1.gate_type == g2.gate_type
            assert [c.gates[d].name for d in g1.fanin] == [
                again.gates[d].name for d in g2.fanin
            ]

    def test_file_round_trip(self, tmp_path, s27):
        path = tmp_path / "s27.bench"
        path.write_text(write_bench(s27))
        again = parse_bench_file(path)
        assert again.name == "s27"
        assert again.num_gates == s27.num_gates

    def test_write_requires_frozen(self):
        from repro.circuit import CircuitGraph

        with pytest.raises(BenchParseError, match="freeze"):
            write_bench(CircuitGraph())
