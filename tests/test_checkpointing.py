"""Tests for periodic checkpointing with coast-forward."""

import pytest

from repro.circuit.netlists import load_s27
from repro.errors import ConfigError, SimulationError
from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.sim.event import SIG
from repro.warped import TimeWarpSimulator, VirtualMachine
from repro.warped.lp import LogicalProcess
from repro.warped.messages import Message


def uid_gen():
    counter = [0]

    def next_uid():
        counter[0] += 1
        return counter[0]

    return next_uid


@pytest.fixture()
def chain_lp():
    from repro.circuit import parse_bench

    c = parse_bench(
        "INPUT(a)\nINPUT(b)\ng = AND(a, b)\nq = NOT(g)\nOUTPUT(q)\n"
    )
    g = c.index_of("g")
    return c, LogicalProcess(c.gates[g], node=0, checkpoint_interval=2)


class TestLpCheckpointMode:
    def test_snapshots_taken_at_interval(self, chain_lp):
        c, lp = chain_lp
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        assert len(lp.checkpoints) == 1  # the initial base snapshot
        lp.process(Message(1, SIG, a, 0, 1, lp.gate.index, 1), nxt)
        assert len(lp.checkpoints) == 1
        lp.process(Message(2, SIG, b, 0, 1, lp.gate.index, 2), nxt)
        assert len(lp.checkpoints) == 2  # interval 2 reached

    def test_rollback_restores_through_coast(self, chain_lp):
        c, lp = chain_lp
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        history = [
            Message(1, SIG, a, 0, 1, lp.gate.index, 1),
            Message(2, SIG, b, 0, 1, lp.gate.index, 2),
            Message(3, SIG, a, 1, 0, lp.gate.index, 3),
            Message(4, SIG, b, 1, 0, lp.gate.index, 4),
            Message(5, SIG, a, 2, 1, lp.gate.index, 5),
        ]
        for msg in history:
            lp.process(msg, nxt)
        state_before = (dict(lp.input_copy), lp.output_value)
        # roll back past the last two, then replay: state must match
        undone, coasted = lp.rollback_to((4, SIG, b, 1))
        assert [r.msg.uid for r in undone] == [4, 5]
        assert coasted >= 0
        for msg in history[3:]:
            lp.process(msg, nxt)
        assert (dict(lp.input_copy), lp.output_value) == state_before

    def test_rollback_to_requires_checkpoint_mode(self):
        circuit = load_s27()
        lp = LogicalProcess(circuit.gates[circuit.index_of("G9")], node=0)
        with pytest.raises(SimulationError, match="checkpoint mode"):
            lp.rollback_to((0, SIG, 0, 0))

    def test_undo_info_not_needed_in_checkpoint_mode(self, chain_lp):
        c, lp = chain_lp
        a = c.index_of("a")
        nxt = uid_gen()
        record = lp.process(Message(1, SIG, a, 0, 1, lp.gate.index, 1), nxt)
        # incremental undo info is still recorded (harmless), but the
        # checkpoint path never consumes it
        undone, _ = lp.rollback_to((1, SIG, a, 0))
        assert undone[0] is record
        assert lp.last_key[0] == -1

    def test_fossil_collect_keeps_base_snapshot(self, chain_lp):
        c, lp = chain_lp
        a, b = c.index_of("a"), c.index_of("b")
        nxt = uid_gen()
        values = [(1, a, 1), (2, b, 1), (3, a, 0), (4, b, 0), (5, a, 1)]
        for t, src, v in values:
            lp.process(Message(t, SIG, src, t, v, lp.gate.index, t), nxt)
        lp.fossil_collect(4)
        assert lp.checkpoints[0][0][0] <= 4
        # rollback to a post-GVT key still works
        undone, _ = lp.rollback_to((5, SIG, a, 5))
        assert len(undone) == 1


class TestKernelCheckpointMode:
    @pytest.mark.parametrize("interval", [1, 4, 32])
    def test_oracle(self, medium_circuit, interval):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = get_partitioner("Cluster", seed=3).partition(
            medium_circuit, 4
        )
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, checkpoint_interval=interval),
        ).run()
        assert tw.final_values == seq.final_values

    def test_combined_with_lazy_and_window(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 4
        )
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(
                num_nodes=4, checkpoint_interval=8,
                cancellation="lazy", optimism_window=50,
            ),
        ).run()
        assert tw.final_values == seq.final_values

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="checkpoint_interval"):
            VirtualMachine(num_nodes=2, checkpoint_interval=0)

    def test_deterministic(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=7)
        assignment = get_partitioner("Random", seed=3).partition(
            medium_circuit, 3
        )

        def run():
            return TimeWarpSimulator(
                medium_circuit, assignment, stim,
                VirtualMachine(num_nodes=3, checkpoint_interval=4),
            ).run()

        a, b = run(), run()
        assert a.execution_time == b.execution_time
        assert a.rollbacks == b.rollbacks
