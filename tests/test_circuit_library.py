"""Functional tests: the simulators must compute the right answers.

The library circuits have closed-form behaviour, so these tests check
actual arithmetic — an adder adds, a counter counts, an LFSR walks its
maximal sequence — under BOTH engines (the Time Warp runs also exercise
the oracle on functionally meaningful circuits).
"""

import pytest

from repro.circuit.gate import FALSE, TRUE
from repro.circuit.library import (
    binary_counter,
    decoder,
    lfsr,
    ripple_carry_adder,
    shift_register,
)
from repro.circuit import validate_circuit
from repro.errors import ConfigError
from repro.partition import get_partitioner
from repro.sim import SequentialSimulator, VectorStimulus
from repro.warped import TimeWarpSimulator, VirtualMachine


def simulate(circuit, vectors, *, parallel_k=None):
    stim = VectorStimulus(circuit, vectors, period=50)
    result = SequentialSimulator(circuit, stim).run()
    if parallel_k:
        assignment = get_partitioner("Multilevel", seed=1).partition(
            circuit, parallel_k
        )
        tw = TimeWarpSimulator(
            circuit, assignment, stim, VirtualMachine(num_nodes=parallel_k)
        ).run()
        assert tw.final_values == result.final_values
    return result


class TestRippleCarryAdder:
    @pytest.mark.parametrize(
        "a, b, cin", [(0, 0, 0), (5, 9, 0), (15, 1, 0), (7, 7, 1), (12, 11, 1)]
    )
    def test_adds_correctly(self, a, b, cin):
        width = 4
        circuit = ripple_carry_adder(width)
        vector = {f"a{i}": (a >> i) & 1 for i in range(width)}
        vector.update({f"b{i}": (b >> i) & 1 for i in range(width)})
        vector["cin"] = cin
        result = simulate(circuit, [vector, vector])
        total = sum(
            result.value_of(circuit, f"s{i}") << i for i in range(width)
        )
        total += result.value_of(circuit, f"c{width}") << width
        assert total == a + b + cin

    def test_adds_correctly_in_parallel(self):
        width = 8
        circuit = ripple_carry_adder(width)
        a, b = 173, 94
        vector = {f"a{i}": (a >> i) & 1 for i in range(width)}
        vector.update({f"b{i}": (b >> i) & 1 for i in range(width)})
        vector["cin"] = 0
        result = simulate(circuit, [vector, vector], parallel_k=3)
        total = sum(
            result.value_of(circuit, f"s{i}") << i for i in range(width)
        )
        total += result.value_of(circuit, f"c{width}") << width
        assert total == a + b

    def test_structure_valid(self):
        validate_circuit(ripple_carry_adder(6))

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            ripple_carry_adder(0)


class TestBinaryCounter:
    def counter_value(self, circuit, result, width):
        return sum(
            result.value_of(circuit, f"q{i}") << i for i in range(width)
        )

    @pytest.mark.parametrize("cycles", [3, 7, 12])
    def test_counts_enabled_cycles(self, cycles):
        width = 4
        circuit = binary_counter(width)
        vectors = [{"en": 1}] * cycles
        result = simulate(circuit, vectors)
        # cycle 0 is the reset cycle (no capture); each later cycle
        # increments once
        expected = (cycles - 1) % (2**width)
        assert self.counter_value(circuit, result, width) == expected

    def test_disabled_counter_holds(self):
        circuit = binary_counter(3)
        vectors = [{"en": 1}] * 5 + [{"en": 0}] * 6
        result = simulate(circuit, vectors)
        held = self.counter_value(circuit, result, 3)
        # 4 increments while enabled (first enabled cycle is reset);
        # the enable drop may land one more capture before settling
        assert held in (4, 5)

    def test_counts_in_parallel(self):
        width = 5
        circuit = binary_counter(width)
        vectors = [{"en": 1}] * 10
        result = simulate(circuit, vectors, parallel_k=3)
        assert self.counter_value(circuit, result, width) == 9


class TestShiftRegister:
    def test_shifts_pattern_through(self):
        width = 5
        circuit = shift_register(width)
        pattern = [1, 0, 1, 1, 0]
        vectors = [{"din": bit} for bit in pattern] + [{"din": 0}]
        result = simulate(circuit, vectors)
        # After n+1 cycles, stage i holds the bit driven i+1 cycles ago
        # (cycle 0 is reset). q0 latched pattern[-1] minus pipeline lag.
        observed = [result.value_of(circuit, f"q{i}") for i in range(width)]
        # The last capture happens at cycle len(vectors)-1; stage i holds
        # the din value from cycle (last - 1 - i), clamped to reset 0.
        last = len(vectors) - 1
        expected = []
        values = pattern + [0]
        for i in range(width):
            source_cycle = last - 1 - i
            expected.append(values[source_cycle] if source_cycle >= 0 else 0)
        assert observed == expected


class TestLfsr:
    def test_walks_maximal_sequence(self):
        width = 4
        circuit = lfsr(width)
        seen = set()
        # simulate increasing cycle counts and record the state reached
        for cycles in range(2, 2 + 2**width - 1):
            vectors = [{"en": 0}] * cycles
            result = simulate(circuit, vectors)
            state = tuple(
                result.value_of(circuit, f"r{i}") for i in range(width)
            )
            seen.add(state)
        # maximal-length XNOR LFSR: 2^w - 1 distinct states (the all-ones
        # lock-up state is the one never visited)
        assert len(seen) == 2**width - 1
        assert (TRUE,) * width not in seen

    def test_unknown_width_rejected(self):
        with pytest.raises(ConfigError, match="primitive polynomial"):
            lfsr(6)


class TestDecoder:
    @pytest.mark.parametrize("value", [0, 3, 5, 7])
    def test_one_hot(self, value):
        bits = 3
        circuit = decoder(bits)
        vector = {f"x{i}": (value >> i) & 1 for i in range(bits)}
        result = simulate(circuit, [vector, vector])
        for out in range(2**bits):
            want = TRUE if out == value else FALSE
            assert result.value_of(circuit, f"y{out}") == want, out

    def test_partitioner_stress_shape(self):
        """Every output depends on every input: high reconvergence."""
        from repro.partition import edge_cut

        circuit = decoder(5)
        validate_circuit(circuit)
        ml = get_partitioner("Multilevel", seed=2).partition(circuit, 4)
        rnd = get_partitioner("Random", seed=2).partition(circuit, 4)
        assert edge_cut(ml) <= edge_cut(rnd)
