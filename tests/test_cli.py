"""CLI smoke tests (tiny scales so they stay fast)."""

import pytest

from repro.cli import main

TINY = ["--scale", "0.03", "--cycles", "10"]


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", *TINY]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "s15850" in out

    def test_run_reports_speedup(self, capsys):
        assert main([
            "run", *TINY, "--circuit", "s9234",
            "--algorithm", "Multilevel", "--nodes", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup over sequential" in out
        assert "Multilevel x4" in out

    def test_partition_lists_all_algorithms(self, capsys):
        assert main(["partition", *TINY, "--circuit", "s5378", "--k", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("Random", "Multilevel", "ConePartition"):
            assert name in out

    def test_fig5(self, capsys):
        assert main(["fig5", *TINY]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_rejects_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["run", "--circuit", "s404"])
