"""Two simulations in one parent process must not share anything.

The job server runs jobs concurrently from one Python process, so two
rings alive at once is the normal case, not an accident.  These tests
pin the isolation that makes it safe: distinct shm channel names,
distinct trace/status files, and worker configuration that travels
inside the :class:`JobSpec` instead of being re-read from ambient
environment by forked workers.
"""

from __future__ import annotations

import concurrent.futures
import json
import os

import pytest

from repro.circuit.netlists import load_s27
from repro.errors import ConfigError
from repro.partition.registry import get_partitioner
from repro.sim.kernel import SequentialSimulator
from repro.sim.stimulus import RandomStimulus
from repro.warped.machine import VirtualMachine
from repro.warped.parallel.backend import ProcessTimeWarpSimulator
from repro.obs.tracer import shard_path


def _world(stimulus_seed: int):
    circuit = load_s27()
    stimulus = RandomStimulus(
        circuit, num_cycles=10, period=100, seed=stimulus_seed, activity=0.5
    )
    assignment = get_partitioner("Multilevel", seed=3).partition(circuit, 2)
    machine = VirtualMachine(num_nodes=2, gvt_interval=128, optimism_window=100)
    oracle = SequentialSimulator(circuit, stimulus).run()
    return circuit, assignment, stimulus, machine, oracle


@pytest.mark.parametrize("transport", ("queue", "shm"))
def test_two_concurrent_rings_in_one_parent(tmp_path, transport):
    """Concurrent runs: disjoint channels, traces, and status files."""
    worlds = [_world(seed) for seed in (7, 99)]
    simulators = [
        ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine,
            timeout=60, transport=transport,
            trace_path=str(tmp_path / f"run{i}.trace.jsonl"),
            status_path=str(tmp_path / f"run{i}.status"),
        )
        for i, (circuit, assignment, stimulus, machine, _) in enumerate(worlds)
    ]
    assert simulators[0].run_id != simulators[1].run_id
    with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(lambda sim: sim.run(), simulators))
    for i, (result, (sim, world)) in enumerate(
        zip(results, zip(simulators, worlds))
    ):
        oracle = world[4]
        assert result.final_values == oracle.final_values
        assert result.committed_captures == oracle.committed_captures
        # Each run left its own trace and its own run-id-stamped status.
        assert os.path.exists(tmp_path / f"run{i}.trace.jsonl")
        for node in range(2):
            with open(shard_path(str(tmp_path / f"run{i}.status"), node)) as fh:
                snapshot = json.loads(fh.read())
            assert snapshot["run"] == sim.run_id
            assert snapshot["done"] is True
    # The two rings' workers were distinct OS processes throughout.
    pids0 = set(simulators[0].worker_pids.values())
    pids1 = set(simulators[1].worker_pids.values())
    assert pids0 and pids1 and not (pids0 & pids1)


def test_fault_spec_is_resolved_in_parent_not_workers(monkeypatch):
    """Workers never read ambient env: config travels in the JobSpec.

    An empty-string ``fault_spec`` must force no faults even when the
    parent's environment carries ``REPRO_TW_FAULT`` — otherwise two
    simulators in one server process could cross-contaminate.
    """
    circuit, assignment, stimulus, machine, oracle = _world(7)
    monkeypatch.setenv("REPRO_TW_FAULT", "0:exit")
    sim = ProcessTimeWarpSimulator(
        circuit, assignment, stimulus, machine, timeout=60, fault_spec=""
    )
    assert sim.fault_spec == ""
    result = sim.run()
    assert result.final_values == oracle.final_values
    # None (the default) resolves the env var eagerly, in the parent.
    resolved = ProcessTimeWarpSimulator(
        circuit, assignment, stimulus, machine, timeout=60
    )
    assert resolved.fault_spec == "0:exit"


def test_malformed_fault_spec_fails_in_constructor(monkeypatch):
    circuit, assignment, stimulus, machine, _ = _world(7)
    monkeypatch.setenv("REPRO_TW_FAULT", "0:bogus-mode")
    with pytest.raises(ConfigError, match="bogus-mode"):
        ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine, timeout=60
        )
