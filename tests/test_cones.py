"""Unit tests for fanin/fanout cone extraction."""

from repro.circuit import fanin_cone, fanout_cone, parse_bench
from repro.circuit.cones import input_cones, output_cones


def diamond():
    return parse_bench(
        "INPUT(a)\n"
        "l = NOT(a)\n"
        "r = BUF(a)\n"
        "m = AND(l, r)\n"
        "ff = DFF(m)\n"
        "q = NOT(ff)\n"
        "OUTPUT(q)\n"
    )


class TestFanoutCone:
    def test_reaches_reconvergence(self):
        c = diamond()
        cone = fanout_cone(c, c.index_of("a"), through_dffs=True)
        assert cone == set(range(c.num_gates))

    def test_stops_at_dff_by_default(self):
        c = diamond()
        cone = fanout_cone(c, c.index_of("a"))
        assert c.index_of("ff") in cone
        assert c.index_of("q") not in cone

    def test_root_included(self):
        c = diamond()
        assert c.index_of("m") in fanout_cone(c, c.index_of("m"))

    def test_multiple_roots(self):
        c = diamond()
        cone = fanout_cone(c, [c.index_of("l"), c.index_of("r")])
        assert c.index_of("m") in cone
        assert c.index_of("a") not in cone


class TestFaninCone:
    def test_collects_all_ancestors(self):
        c = diamond()
        cone = fanin_cone(c, c.index_of("q"), through_dffs=True)
        assert cone == set(range(c.num_gates))

    def test_stops_at_dff_by_default(self):
        c = diamond()
        cone = fanin_cone(c, c.index_of("q"))
        assert cone == {c.index_of("q"), c.index_of("ff")}


class TestConeMaps:
    def test_input_cones_cover_reachable_gates(self, small_circuit):
        cones = input_cones(small_circuit)
        assert set(cones) == set(small_circuit.primary_inputs)
        covered = set().union(*cones.values())
        # every primary output depends on at least one input
        assert covered.issuperset(set(small_circuit.primary_outputs) & covered)

    def test_output_cones_nonempty(self, small_circuit):
        cones = output_cones(small_circuit)
        assert all(cones.values())

    def test_cone_duality(self, small_circuit):
        """v in fanout_cone(u) iff u in fanin_cone(v) (through DFFs)."""
        pis = small_circuit.primary_inputs[:3]
        pos = small_circuit.primary_outputs[:3]
        for u in pis:
            fo = fanout_cone(small_circuit, u, through_dffs=True)
            for v in pos:
                fi = fanin_cone(small_circuit, v, through_dffs=True)
                assert (v in fo) == (u in fi)
