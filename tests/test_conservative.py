"""Tests for the conservative (CMB) kernel."""

import pytest

from repro.conservative import ConservativeSimulator
from repro.errors import SimulationError
from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import TimeWarpSimulator, VirtualMachine


def run_cmb(circuit, stim, k, *, name="Multilevel", **kwargs):
    assignment = get_partitioner(name, seed=3).partition(circuit, k)
    machine = VirtualMachine(num_nodes=k)
    return ConservativeSimulator(
        circuit, assignment, stim, machine, **kwargs
    ).run()


class TestCorrectness:
    @pytest.mark.parametrize(
        "name",
        ["Random", "DFS", "Cluster", "Topological", "Multilevel",
         "ConePartition"],
    )
    def test_matches_sequential(self, medium_circuit, name):
        stim = RandomStimulus(medium_circuit, num_cycles=12, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        result = run_cmb(medium_circuit, stim, 4, name=name)
        assert result.final_values == seq.final_values

    def test_single_node_needs_no_nulls(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=10, seed=1)
        result = run_cmb(small_circuit, stim, 1)
        assert result.null_messages == 0
        assert result.app_messages == 0

    def test_matches_with_nonunit_delays(self):
        from repro.circuit import GeneratorSpec, generate_circuit

        spec = GeneratorSpec(
            "typed", 5, 5, 120, 8, depth=7, seed=4, delay_model="typed"
        )
        circuit = generate_circuit(spec)
        stim = RandomStimulus(circuit, num_cycles=15, seed=2)
        seq = SequentialSimulator(circuit, stim).run()
        result = run_cmb(circuit, stim, 4)
        assert result.final_values == seq.final_values

    def test_matches_time_warp(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=12, seed=7)
        assignment = get_partitioner("Cluster", seed=3).partition(
            medium_circuit, 4
        )
        cmb = ConservativeSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert cmb.final_values == tw.final_values


class TestBehaviour:
    def test_nulls_flow_on_multiple_nodes(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=12, seed=7)
        result = run_cmb(medium_circuit, stim, 4)
        assert result.null_messages > 0
        assert result.null_rounds > 0

    def test_deterministic(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=7)
        a = run_cmb(medium_circuit, stim, 3)
        b = run_cmb(medium_circuit, stim, 3)
        assert a.execution_time == b.execution_time
        assert a.null_messages == b.null_messages

    def test_slower_than_time_warp_at_gate_lookahead(self, medium_circuit):
        """The classic CMB-vs-optimistic result at lookahead ~ 1 delay."""
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        assignment = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 4
        )
        cmb = ConservativeSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert cmb.execution_time > tw.execution_time
        assert cmb.null_messages > cmb.app_messages

    def test_summary_mentions_nulls(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=8, seed=1)
        result = run_cmb(small_circuit, stim, 2)
        assert "null=" in result.summary()


class TestConfig:
    def test_k_mismatch_rejected(self, s27):
        stim = RandomStimulus(s27, num_cycles=5, seed=1)
        assignment = get_partitioner("Random", seed=3).partition(s27, 2)
        with pytest.raises(SimulationError, match="machine has"):
            ConservativeSimulator(
                s27, assignment, stim, VirtualMachine(num_nodes=3)
            )

    def test_null_round_budget(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=12, seed=7)
        assignment = get_partitioner("Random", seed=3).partition(
            medium_circuit, 4
        )
        sim = ConservativeSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4), max_null_rounds=1,
        )
        with pytest.raises(SimulationError, match="null-message budget"):
            sim.run()
