"""Wall-clock accounting identities of the virtual machine.

The modelled costs must compose sensibly: scaling a cost component
scales the corresponding share of execution time, the slowest node IS
the execution time, and zero-cost components are legal.
"""

import pytest

from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.sim.cost_model import SequentialCostModel
from repro.warped import (
    TimeWarpCostModel,
    TimeWarpSimulator,
    UniformNetwork,
    VirtualMachine,
)


@pytest.fixture(scope="module")
def setup(medium_circuit):
    stim = RandomStimulus(medium_circuit, num_cycles=15, seed=4)
    assignment = get_partitioner("Multilevel", seed=3).partition(
        medium_circuit, 4
    )
    return medium_circuit, stim, assignment


def run(setup, **cost_kwargs):
    circuit, stim, assignment = setup
    machine = VirtualMachine(
        num_nodes=4, cost_model=TimeWarpCostModel(**cost_kwargs)
    )
    return TimeWarpSimulator(circuit, assignment, stim, machine).run()


class TestSequentialAccounting:
    def test_time_is_events_times_cost(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=10, seed=4)
        for cost in (1e-4, 5e-4):
            result = SequentialSimulator(
                medium_circuit, stim,
                cost_model=SequentialCostModel(event_cost=cost),
            ).run()
            assert result.execution_time == pytest.approx(
                result.events_processed * cost
            )


class TestTimeWarpAccounting:
    def test_execution_time_is_slowest_node(self, setup):
        result = run(setup)
        assert result.execution_time == max(
            stats.wall_time for stats in result.node_stats
        )

    def test_event_cost_dominates_scaling(self, setup):
        cheap = run(setup, event_cost=100e-6)
        costly = run(setup, event_cost=400e-6)
        # Not exactly 4x (messaging constants, changed interleavings),
        # but the scaling must be strong and monotone.
        ratio = costly.execution_time / cheap.execution_time
        assert 1.5 < ratio < 8.0

    def test_zero_overheads_legal_and_fast(self, setup):
        free_comm = run(
            setup, send_overhead=0.0, recv_overhead=0.0, gvt_cost=0.0
        )
        priced = run(setup)
        assert free_comm.execution_time < priced.execution_time

    def test_busy_decomposition_bounded_by_components(self, setup):
        result = run(setup)
        cost = TimeWarpCostModel()
        for stats in result.node_stats:
            # busy time is at least the committed event work...
            floor = stats.events_processed * 0  # events include re-runs
            assert stats.busy_time >= floor
            # ...and can't exceed every cost component applied maximally
            ceiling = (
                stats.events_processed * cost.event_cost
                + stats.events_rolled_back * cost.rollback_event_cost
                + (stats.messages_sent_remote + stats.anti_messages_sent)
                * cost.send_overhead
                + result.gvt_rounds * cost.gvt_cost
                + result.app_messages * cost.recv_overhead
                + result.anti_messages * cost.recv_overhead
            )
            assert stats.busy_time <= ceiling + 1e-6

    def test_network_latency_slows_without_adding_cpu(self, setup):
        circuit, stim, assignment = setup
        fast = TimeWarpSimulator(
            circuit, assignment, stim,
            VirtualMachine(num_nodes=4, network=UniformNetwork(1e-6)),
        ).run()
        slow = TimeWarpSimulator(
            circuit, assignment, stim,
            VirtualMachine(num_nodes=4, network=UniformNetwork(2e-3)),
        ).run()
        assert slow.execution_time > fast.execution_time
