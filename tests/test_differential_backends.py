"""Differential equivalence: process vs. virtual vs. sequential.

The repo's THE-invariant — optimism never changes simulation results —
extended across execution substrates: for every tested circuit,
partitioner, and node count, the real-multiprocess backend, the
deterministic virtual-machine backend, and the sequential oracle must
agree on the quiescent signal values AND the committed DFF capture
history.  The default matrix covers s27 and a generated sequential
circuit over all six partitioning algorithms and k ∈ {1, 2, 4}; a
``slow``-marked stress matrix adds a larger circuit and optimism
windows.
"""

from __future__ import annotations

import pytest

from repro.circuit import GeneratorSpec, generate_circuit
from repro.circuit.netlists import load_s27
from repro.harness.config import ALGORITHMS
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine

NODE_COUNTS = (1, 2, 4)


def _setup(circuit, *, cycles, period, seed):
    stimulus = RandomStimulus(circuit, num_cycles=cycles, period=period, seed=seed)
    sequential = SequentialSimulator(circuit, stimulus).run()
    return circuit, stimulus, sequential


@pytest.fixture(scope="module")
def s27_case():
    return _setup(load_s27(), cycles=18, period=20, seed=3)


@pytest.fixture(scope="module")
def generated_case():
    spec = GeneratorSpec(
        name="diffgen",
        num_inputs=6,
        num_outputs=6,
        num_gates=110,
        num_dffs=12,
        depth=7,
        seed=97,
    )
    return _setup(generate_circuit(spec), cycles=12, period=30, seed=23)


def _assert_backends_agree(case, algorithm, k, *, window=None, gvt_interval=64):
    circuit, stimulus, sequential = case
    k = min(k, circuit.num_gates)
    assignment = get_partitioner(algorithm, seed=3).partition(circuit, k)
    machine = VirtualMachine(
        num_nodes=k, gvt_interval=gvt_interval, optimism_window=window
    )
    virtual = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    # The process backend runs once per wire transport: the queue and
    # shm substrates race messages completely differently (pickled
    # feeder pipes vs. batched fixed-width rings with anti-message
    # coalescing), yet rollback must erase every trace of that.
    by_transport = {
        transport: ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine, transport=transport
        ).run()
        for transport in ("queue", "shm")
    }
    # Sequential is the oracle; virtual and process must both match it —
    # and therefore each other.
    assert virtual.final_values == sequential.final_values
    assert virtual.committed_captures == sequential.committed_captures
    for transport, process in by_transport.items():
        assert process.transport == transport
        assert process.final_values == virtual.final_values, transport
        assert process.committed_captures == virtual.committed_captures, transport
        # Both backends process at least the committed workload.
        assert process.events_committed == virtual.events_committed, transport


@pytest.mark.parametrize("k", NODE_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_s27_all_partitioners(s27_case, algorithm, k):
    _assert_backends_agree(s27_case, algorithm, k)


@pytest.mark.parametrize("k", NODE_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_generated_circuit_all_partitioners(generated_case, algorithm, k):
    _assert_backends_agree(generated_case, algorithm, k)


# ----------------------------------------------------------------------
# Adaptive-migration equivalence: rehoming LPs at GVT epochs reroutes
# in-flight traffic, forwards stale deliveries, and ships pending
# events across nodes — none of which may leave a trace in the
# committed results, on either backend, over either wire transport.
# The virtual and process backends take migration decisions from
# entirely different clocks (modelled busy time vs. real CPU time), so
# their *decisions* differ freely; their committed results must not.
# ----------------------------------------------------------------------
def _skewed(circuit, k):
    """80% of gates on node 0 — guarantees a hot/cold imbalance."""
    from repro.partition import PartitionAssignment

    n = circuit.num_gates
    cut = int(n * 0.8)
    assignment = [0 if i < cut else 1 + (i % (k - 1)) for i in range(n)]
    return PartitionAssignment(circuit, k, assignment, algorithm="skewed")


@pytest.mark.parametrize("k", (2, 4))
def test_migration_matches_oracle(s27_case, k):
    circuit, stimulus, sequential = s27_case
    assignment = _skewed(circuit, k)
    machine = VirtualMachine(
        num_nodes=k, gvt_interval=16,
        migration_threshold=1.2, migration_fraction=0.25,
    )
    virtual = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()
    assert virtual.final_values == sequential.final_values
    assert virtual.committed_captures == sequential.committed_captures
    for transport in ("queue", "shm"):
        process = ProcessTimeWarpSimulator(
            circuit, assignment, stimulus, machine, transport=transport
        ).run()
        assert process.final_values == sequential.final_values, transport
        assert process.committed_captures == sequential.committed_captures, (
            transport
        )
        assert process.events_committed == virtual.events_committed, transport


# ----------------------------------------------------------------------
# Crash-recovery equivalence: a run that loses a worker mid-flight and
# restarts from its last checkpoint epoch must still match the oracle
# bit-for-bit — recovery is allowed to cost time, never correctness.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ("queue", "shm"))
@pytest.mark.parametrize("k", (2, 4))
def test_recovery_matches_oracle(s27_case, monkeypatch, k, transport):
    circuit, stimulus, sequential = s27_case
    assignment = get_partitioner("Multilevel", seed=3).partition(circuit, k)
    machine = VirtualMachine(
        num_nodes=k, gvt_interval=32, checkpoint_interval=60
    )
    virtual = TimeWarpSimulator(circuit, assignment, stimulus, machine).run()

    # Fire well inside every node's share of the run: s27 commits a
    # few hundred events per node at k=2 but barely over a hundred at
    # k=4, and a threshold the victim never reaches would silently
    # test nothing (the assertion on ``restarts`` guards that).
    monkeypatch.setenv("REPRO_TW_FAULT", "1:exit-at:60")
    process = ProcessTimeWarpSimulator(
        circuit, assignment, stimulus, machine, max_restarts=3,
        transport=transport,
    ).run()

    assert process.restarts >= 1
    assert not process.degraded
    assert virtual.final_values == sequential.final_values
    assert process.final_values == virtual.final_values
    assert process.committed_captures == sequential.committed_captures
    assert process.events_committed == virtual.events_committed


# ----------------------------------------------------------------------
# Stress matrix (excluded by default; run with `pytest -m slow`)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stress_case():
    spec = GeneratorSpec(
        name="diffstress",
        num_inputs=8,
        num_outputs=8,
        num_gates=420,
        num_dffs=32,
        depth=11,
        seed=5,
    )
    return _setup(generate_circuit(spec), cycles=35, period=50, seed=41)


@pytest.mark.slow
@pytest.mark.parametrize("window", [None, 50])
@pytest.mark.parametrize("k", [2, 4, 6])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stress_matrix(stress_case, algorithm, k, window):
    _assert_backends_agree(
        stress_case, algorithm, k, window=window, gvt_interval=256
    )
