"""Env-override precedence: every ``REPRO_*`` knob, both directions.

The contract (the bug this pins down was its violation): the
environment only supplies *defaults* — an explicit keyword override
(CLI flag, served job config) always wins, uniformly across every
knob.  The specific knobs ``REPRO_SCALE``/``REPRO_CYCLES`` also beat
the blanket ``REPRO_FULL``.
"""

from __future__ import annotations

import pytest

from repro.harness.config import ExperimentConfig

#: (env var, env value, config field, parsed value, explicit override)
KNOBS = [
    ("REPRO_SCALE", "0.5", "scale", 0.5, 0.25),
    ("REPRO_CYCLES", "120", "num_cycles", 120, 30),
    ("REPRO_REPS", "3", "repetitions", 3, 2),
    ("REPRO_BACKEND", "process", "backend", "process", "virtual"),
    ("REPRO_TW_TRANSPORT", "shm", "transport", "shm", "queue"),
    ("REPRO_TRACE", "env.jsonl", "trace_path", "env.jsonl", "cli.jsonl"),
    ("REPRO_STATUS", "env.status", "status_path", "env.status", "cli.status"),
    ("REPRO_TW_CKPT", "50", "checkpoint_interval", 50, 75),
    ("REPRO_TW_MIGRATE", "2.0", "migration_threshold", 2.0, 3.0),
    ("REPRO_TW_MIGRATE_FRACTION", "0.1", "migration_fraction", 0.1, 0.2),
]


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """No ambient REPRO_* state may leak into these tests."""
    for name, *_ in KNOBS:
        monkeypatch.delenv(name, raising=False)
    for name in ("REPRO_FULL", "REPRO_METRICS", "REPRO_TW_RESTARTS"):
        monkeypatch.delenv(name, raising=False)


@pytest.mark.parametrize(
    "env_name,env_value,field,parsed,override", KNOBS,
    ids=[knob[0] for knob in KNOBS],
)
def test_env_supplies_default_and_override_wins(
    monkeypatch, env_name, env_value, field, parsed, override
):
    monkeypatch.setenv(env_name, env_value)
    assert getattr(ExperimentConfig.from_env(), field) == parsed
    explicit = ExperimentConfig.from_env(**{field: override})
    assert getattr(explicit, field) == override


def test_restarts_env_default_and_override(monkeypatch):
    # REPRO_TW_RESTARTS needs a checkpoint interval to validate.
    monkeypatch.setenv("REPRO_TW_CKPT", "50")
    monkeypatch.setenv("REPRO_TW_RESTARTS", "2")
    assert ExperimentConfig.from_env().max_restarts == 2
    assert ExperimentConfig.from_env(max_restarts=1).max_restarts == 1


def test_metrics_flag(monkeypatch):
    assert ExperimentConfig.from_env().metrics_enabled is False
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert ExperimentConfig.from_env().metrics_enabled is True
    # An explicit False must survive REPRO_METRICS=1 in the env.
    assert (
        ExperimentConfig.from_env(metrics_enabled=False).metrics_enabled
        is False
    )
    monkeypatch.setenv("REPRO_METRICS", "0")
    assert ExperimentConfig.from_env().metrics_enabled is False


def test_full_sets_paper_scale_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    config = ExperimentConfig.from_env()
    assert (config.scale, config.num_cycles) == (1.0, 400)


def test_specific_env_knobs_beat_repro_full(monkeypatch):
    """The precedence bug: REPRO_FULL used to clobber REPRO_SCALE."""
    monkeypatch.setenv("REPRO_FULL", "1")
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    monkeypatch.setenv("REPRO_CYCLES", "120")
    config = ExperimentConfig.from_env()
    assert (config.scale, config.num_cycles) == (0.5, 120)


def test_explicit_overrides_beat_repro_full(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    config = ExperimentConfig.from_env(scale=0.25, num_cycles=40)
    assert (config.scale, config.num_cycles) == (0.25, 40)


def test_every_documented_knob_is_covered():
    """The KNOBS table must track the module docstring's knob list."""
    import repro.harness.config as config_mod

    documented = {
        word.strip("`;,.():").split("=")[0]
        for word in config_mod.__doc__.split()
        if word.strip("`;,.():").startswith("REPRO_")
    }
    covered = {name for name, *_ in KNOBS} | {
        "REPRO_FULL", "REPRO_METRICS", "REPRO_TW_RESTARTS",
    }
    assert documented <= covered, documented - covered
