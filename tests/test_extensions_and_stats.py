"""Tests for the E1 extension artifact, utilization stats and report CLI."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.extensions import generate_speedup, speedup_rows
from repro.partition import get_partitioner
from repro.sim import RandomStimulus
from repro.warped import TimeWarpSimulator, VirtualMachine


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(ExperimentConfig(scale=0.03, num_cycles=12))


class TestSpeedupArtifact:
    def test_rows_cover_table2_cells(self, tiny_runner):
        rows = speedup_rows(tiny_runner)
        assert len(rows) == 4 + 4 + 3  # node counts per circuit
        for circuit, nodes, time, speedup, efficiency in rows:
            assert time > 0
            assert speedup == pytest.approx(
                tiny_runner.sequential_time(circuit) / time
            )
            assert efficiency == pytest.approx(speedup / nodes)

    def test_rendered_table(self, tiny_runner):
        table = generate_speedup(tiny_runner)
        assert "E1" in table and "efficiency" in table
        assert "s15850" in table


class TestUtilization:
    def test_busy_bounded_by_wall(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        assignment = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 4
        )
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        for stats in result.node_stats:
            assert 0.0 < stats.busy_time <= stats.wall_time + 1e-9
            assert 0.0 < stats.utilization <= 1.0

    def test_single_node_fully_busy(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=10, seed=2)
        assignment = get_partitioner("Random", seed=3).partition(
            small_circuit, 1
        )
        result = TimeWarpSimulator(
            small_circuit, assignment, stim, VirtualMachine(num_nodes=1)
        ).run()
        # one node never waits for anyone
        assert result.node_stats[0].utilization > 0.99


class TestReportCli:
    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main([
            "report", "--scale", "0.03", "--cycles", "10",
            "--output", str(out),
        ]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Headline claims" in text
        assert str(out) in capsys.readouterr().out

    def test_run_conservative_kernel(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--scale", "0.03", "--cycles", "8",
            "--kernel", "conservative", "--nodes", "2",
        ]) == 0
        assert "CMB" in capsys.readouterr().out


class TestReadmeQuickstart:
    def test_quickstart_block_runs_verbatim(self):
        """The README's quickstart code must actually work."""
        import re
        from pathlib import Path

        readme = Path(__file__).parent.parent / "README.md"
        match = re.search(r"```python\n(.*?)```", readme.read_text(), re.S)
        assert match, "README lost its quickstart block"
        code = match.group(1)
        # shrink the workload so the test stays fast
        code = code.replace("scale=0.1", "scale=0.04")
        code = code.replace("num_cycles=50", "num_cycles=10")
        namespace = {}
        exec(compile(code, "<README quickstart>", "exec"), namespace)


class TestUtilizationTimeline:
    def test_samples_recorded_and_rendered(self, medium_circuit):
        from repro.warped import render_utilization_timeline

        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        assignment = get_partitioner("Multilevel", seed=3).partition(
            medium_circuit, 4
        )
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, gvt_interval=128),
        ).run()
        assert result.utilization_timeline
        for wall_now, busy_delta in result.utilization_timeline:
            assert wall_now >= 0
            assert len(busy_delta) == 4
            assert all(b >= 0 for b in busy_delta)
        text = render_utilization_timeline(result, width=40)
        lines = text.splitlines()
        assert len(lines) == 1 + 4  # header + one row per node
        assert all(len(line.split("|")[1]) == 40 for line in lines[1:])

    def test_render_handles_empty_timeline(self, small_circuit):
        from repro.warped import render_utilization_timeline

        stim = RandomStimulus(small_circuit, num_cycles=6, seed=2)
        assignment = get_partitioner("Random", seed=3).partition(
            small_circuit, 2
        )
        result = TimeWarpSimulator(
            small_circuit, assignment, stim,
            VirtualMachine(num_nodes=2, gvt_interval=10**9),
        ).run()
        text = render_utilization_timeline(result)
        assert "no utilization samples" in text
