"""Tests for the related-work partitioners (Section 2 survey)."""

import pytest

from repro.errors import PartitionError
from repro.partition import edge_cut, get_partitioner, load_imbalance
from repro.partition.extra import EXTRA_PARTITIONERS
from repro.partition.extra.corolla import fanout_free_regions
from repro.partition.extra.strings import extract_strings
from repro.partition.registry import all_partitioners

EXTRA_NAMES = sorted(EXTRA_PARTITIONERS)


class TestRegistry:
    def test_all_partitioners_superset(self):
        names = all_partitioners()
        assert set(EXTRA_PARTITIONERS) <= set(names)
        assert "Multilevel" in names
        assert len(names) == 12

    def test_get_partitioner_resolves_extras(self):
        p = get_partitioner("Spectral", seed=1)
        assert p.name == "Spectral"

    def test_unknown_lists_all(self):
        with pytest.raises(PartitionError, match="Spectral"):
            get_partitioner("Quantum")


@pytest.mark.parametrize("name", EXTRA_NAMES)
@pytest.mark.parametrize("k", [1, 3, 6])
class TestExtraInvariants:
    def test_valid_partition(self, name, k, medium_circuit):
        a = get_partitioner(name, seed=9).partition(medium_circuit, k)
        a.validate()
        assert all(size > 0 for size in a.sizes())

    def test_deterministic(self, name, k, medium_circuit):
        a = get_partitioner(name, seed=9).partition(medium_circuit, k)
        b = get_partitioner(name, seed=9).partition(medium_circuit, k)
        assert a.assignment == b.assignment


@pytest.mark.parametrize("name", EXTRA_NAMES)
class TestExtraBalance:
    def test_imbalance_bounded(self, name, medium_circuit):
        a = get_partitioner(name, seed=9).partition(medium_circuit, 4)
        assert load_imbalance(a) <= 1.35


class TestStringDecomposition:
    def test_strings_cover_all_gates(self, medium_circuit):
        strings = extract_strings(medium_circuit)
        flat = sorted(g for chain in strings for g in chain)
        assert flat == list(range(medium_circuit.num_gates))

    def test_chains_follow_edges(self, medium_circuit):
        for chain in extract_strings(medium_circuit):
            for u, v in zip(chain, chain[1:]):
                assert v in medium_circuit.fanout(u)
                assert set(medium_circuit.fanout(u)) == {v}
                assert set(medium_circuit.fanin(v)) == {u}

    def test_inverter_chain_is_one_string(self):
        from repro.circuit import parse_bench

        c = parse_bench(
            "INPUT(a)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\nOUTPUT(d)\n"
        )
        strings = extract_strings(c)
        assert max(len(s) for s in strings) == c.num_gates


class TestCorollaRegions:
    def test_regions_cover_all_gates(self, medium_circuit):
        roots = fanout_free_regions(medium_circuit)
        assert len(roots) == medium_circuit.num_gates
        # every root is its own root (idempotent mapping)
        for root in set(roots):
            assert roots[root] == root

    def test_single_sink_gate_joins_sink_region(self):
        from repro.circuit import parse_bench

        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nx = NOT(a)\ny = AND(x, b)\nOUTPUT(y)\n"
        )
        roots = fanout_free_regions(c)
        assert roots[c.index_of("x")] == roots[c.index_of("y")]

    def test_multi_sink_gate_roots_itself(self):
        from repro.circuit import parse_bench

        c = parse_bench(
            "INPUT(a)\nx = NOT(a)\np = BUF(x)\nq = NOT(x)\n"
            "OUTPUT(p)\nOUTPUT(q)\n"
        )
        roots = fanout_free_regions(c)
        x = c.index_of("x")
        assert roots[x] == x


class TestRelativeQuality:
    def test_spectral_and_multilevel_lead_on_cut(self, medium_circuit):
        cuts = {
            name: edge_cut(get_partitioner(name, seed=4).partition(
                medium_circuit, 6
            ))
            for name in ("Random", "Spectral", "Multilevel", "Corolla")
        }
        assert cuts["Spectral"] < cuts["Random"]
        assert cuts["Multilevel"] < cuts["Random"]
        assert cuts["Corolla"] < cuts["Random"]

    def test_cpp_preserves_concurrency(self, medium_circuit):
        from repro.partition.metrics import concurrency_score

        cpp = get_partitioner("CPP", seed=4).partition(medium_circuit, 6)
        assert concurrency_score(cpp) > 0.95

    def test_annealing_beats_its_random_start(self, medium_circuit):
        annealed = get_partitioner("Annealing", seed=4).partition(
            medium_circuit, 6
        )
        random_part = get_partitioner("Random", seed=4).partition(
            medium_circuit, 6
        )
        assert edge_cut(annealed) < edge_cut(random_part)


class TestExtraOracle:
    """The Time Warp oracle holds for the extra strategies too."""

    @pytest.mark.parametrize("name", EXTRA_NAMES)
    def test_matches_sequential(self, small_circuit, name):
        from repro.sim import RandomStimulus, SequentialSimulator
        from repro.warped import TimeWarpSimulator, VirtualMachine

        stim = RandomStimulus(small_circuit, num_cycles=12, seed=5)
        seq = SequentialSimulator(small_circuit, stim).run()
        a = get_partitioner(name, seed=5).partition(small_circuit, 3)
        tw = TimeWarpSimulator(
            small_circuit, a, stim, VirtualMachine(num_nodes=3)
        ).run()
        assert tw.final_values == seq.final_values
