"""Tests for stuck-at fault simulation."""

import pytest

from repro.circuit import parse_bench, ripple_carry_adder
from repro.circuit.netlists import load_s27
from repro.errors import SimulationError
from repro.faults import Fault, FaultSimulator, all_single_stuck_at
from repro.faults.model import FaultUniverse
from repro.sim import RandomStimulus, SequentialSimulator, VectorStimulus


def and_not():
    return parse_bench(
        "INPUT(a)\nINPUT(b)\ng = AND(a, b)\ny = NOT(g)\nOUTPUT(y)\n"
    )


class TestForcedValues:
    def test_forced_gate_ignores_inputs(self):
        c = and_not()
        stim = VectorStimulus(c, [{"a": 1, "b": 1}] * 3)
        result = SequentialSimulator(
            c, stim, forced={c.index_of("g"): 0}
        ).run()
        assert result.value_of(c, "g") == 0
        assert result.value_of(c, "y") == 1

    def test_forced_primary_input_ignores_stimulus(self):
        c = and_not()
        stim = VectorStimulus(c, [{"a": 0, "b": 1}] * 3)
        result = SequentialSimulator(
            c, stim, forced={c.index_of("a"): 1}
        ).run()
        assert result.value_of(c, "g") == 1

    def test_forced_dff_ignores_clock(self, s27):
        ff = s27.dffs[0]
        stim = RandomStimulus(s27, num_cycles=15, seed=1)
        result = SequentialSimulator(s27, stim, forced={ff: 1}).run()
        assert result.final_values[ff] == 1

    def test_validation(self):
        c = and_not()
        stim = VectorStimulus(c, [{"a": 1}])
        with pytest.raises(SimulationError, match="out of range"):
            SequentialSimulator(c, stim, forced={99: 1})
        with pytest.raises(SimulationError, match="0 or 1"):
            SequentialSimulator(c, stim, forced={0: 2})


class TestFaultModel:
    def test_universe_size(self):
        c = and_not()
        universe = all_single_stuck_at(c)
        assert len(universe) == 2 * c.num_gates

    def test_exclude_inputs(self):
        c = and_not()
        universe = all_single_stuck_at(c, include_inputs=False)
        assert len(universe) == 2 * 2  # g and y only

    def test_fault_describe(self):
        c = and_not()
        fault = Fault(c.index_of("g"), 1)
        assert fault.describe(c) == "g/SA1"

    def test_bad_value_rejected(self):
        with pytest.raises(SimulationError):
            Fault(0, 2)

    def test_universe_validates_range(self):
        c = and_not()
        with pytest.raises(SimulationError, match="out of range"):
            FaultUniverse(c, [Fault(99, 0)])


class TestFaultSimulation:
    def test_output_fault_always_detected_with_activity(self):
        c = and_not()
        vectors = [{"a": 1, "b": 1}, {"a": 0, "b": 1}] * 3
        sim = FaultSimulator(c, VectorStimulus(c, vectors, period=50))
        y = c.index_of("y")
        assert sim.is_detected(Fault(y, 0))
        assert sim.is_detected(Fault(y, 1))

    def test_matching_value_fault_undetected_with_constant_vector(self):
        # a=1,b=1 forever: g is 1; g/SA1 is indistinguishable
        c = and_not()
        sim = FaultSimulator(
            c, VectorStimulus(c, [{"a": 1, "b": 1}] * 4, period=50)
        )
        assert not sim.is_detected(Fault(c.index_of("g"), 1))
        assert sim.is_detected(Fault(c.index_of("g"), 0))

    def test_dead_logic_faults_undetected(self):
        c = parse_bench(
            "INPUT(a)\ny = NOT(a)\ndead = BUFF(a)\nz = NOT(dead)\n"
            "OUTPUT(y)\n"
        )
        vectors = [{"a": v} for v in (0, 1, 0, 1)]
        sim = FaultSimulator(c, VectorStimulus(c, vectors, period=50))
        coverage = sim.run(
            FaultUniverse(c, [Fault(c.index_of("dead"), 0),
                              Fault(c.index_of("z"), 1)])
        )
        assert coverage.coverage == 0.0

    def test_adder_coverage_high_with_exhaustive_vectors(self):
        width = 2
        c = ripple_carry_adder(width)
        vectors = []
        for a in range(4):
            for b in range(4):
                for cin in (0, 1):
                    vec = {f"a{i}": (a >> i) & 1 for i in range(width)}
                    vec.update({f"b{i}": (b >> i) & 1 for i in range(width)})
                    vec["cin"] = cin
                    vectors.append(vec)
        sim = FaultSimulator(c, VectorStimulus(c, vectors, period=50))
        coverage = sim.run(all_single_stuck_at(c))
        # exhaustive vectors on an irredundant adder detect everything
        assert coverage.coverage == 1.0, [
            f.describe(c) for f in coverage.undetected
        ]

    def test_s27_steering_vectors_reach_good_coverage(self):
        """s27's FSM has an absorbing state (G7=1 locks G12=0 and pins
        the output) that free-running random vectors enter within a few
        cycles; coverage needs steering vectors that hold G1=0, G2=1 to
        keep the state machine alive, plus a locking tail to exercise
        the absorbing path itself."""
        c = load_s27()
        vectors = []
        for _ in range(6):
            for g0 in (0, 1):
                for g3 in (0, 1):
                    vectors.append({"G0": g0, "G1": 0, "G2": 1, "G3": g3})
        vectors.append({"G0": 1, "G1": 1, "G2": 0, "G3": 1})
        vectors.append({"G0": 0, "G1": 1, "G2": 0, "G3": 0})
        coverage = FaultSimulator(
            c, VectorStimulus(c, vectors, period=20)
        ).run(all_single_stuck_at(c))
        assert 0.6 < coverage.coverage <= 1.0
        assert "faults detected" in coverage.summary()

    def test_s27_random_vectors_hit_the_absorbing_state(self):
        """Free-running random stimulus locks the FSM: only the faults
        observable through the locked output survive — coverage is low
        but stable (a property of the circuit, not the simulator)."""
        c = load_s27()
        stim = RandomStimulus(c, num_cycles=30, seed=5, activity=0.8)
        coverage = FaultSimulator(c, stim).run(all_single_stuck_at(c))
        assert 0.1 < coverage.coverage < 0.6

    def test_more_vectors_never_lower_coverage(self):
        c = load_s27()
        universe = all_single_stuck_at(c)
        few = FaultSimulator(
            c, RandomStimulus(c, num_cycles=4, seed=5)
        ).run(universe)
        many = FaultSimulator(
            c, RandomStimulus(c, num_cycles=30, seed=5)
        ).run(universe)
        assert many.coverage >= few.coverage

    def test_foreign_universe_rejected(self):
        c1, c2 = and_not(), load_s27()
        sim = FaultSimulator(
            c1, VectorStimulus(c1, [{"a": 1, "b": 1}], period=50)
        )
        with pytest.raises(SimulationError, match="different circuit"):
            sim.run(all_single_stuck_at(c2))


class TestAtpg:
    def test_reaches_full_coverage_on_adder(self):
        from repro.circuit import ripple_carry_adder
        from repro.faults import generate_tests

        c = ripple_carry_adder(2)
        result = generate_tests(
            c, all_single_stuck_at(c), target_coverage=1.0, seed=1,
            max_batches=16,
        )
        assert result.coverage == 1.0
        assert result.vectors
        # the generated set really does detect everything when replayed
        sim = FaultSimulator(
            c, VectorStimulus(c, result.vectors, period=50)
        )
        replay = sim.run(all_single_stuck_at(c))
        assert replay.coverage == 1.0

    def test_compaction_never_loses_coverage(self):
        from repro.circuit import ripple_carry_adder
        from repro.faults import generate_tests

        c = ripple_carry_adder(2)
        universe = all_single_stuck_at(c)
        loose = generate_tests(c, universe, seed=2, compact=False)
        tight = generate_tests(c, universe, seed=2, compact=True)
        assert tight.coverage >= loose.coverage
        assert len(tight.vectors) <= len(loose.vectors)

    def test_budget_respected(self):
        from repro.faults import generate_tests

        c = load_s27()
        result = generate_tests(
            c, all_single_stuck_at(c), target_coverage=1.0,
            max_batches=3, seed=3,
        )
        assert result.batches_tried <= 3
        assert "coverage" in result.summary()

    def test_validation(self):
        from repro.faults import generate_tests

        c1, c2 = and_not(), load_s27()
        with pytest.raises(SimulationError, match="different circuit"):
            generate_tests(c1, all_single_stuck_at(c2))
        with pytest.raises(SimulationError, match="target_coverage"):
            generate_tests(c1, all_single_stuck_at(c1), target_coverage=0)
