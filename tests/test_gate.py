"""Unit tests for ternary gate evaluation."""

import pytest

from repro.circuit.gate import (
    FALSE,
    TRUE,
    UNKNOWN,
    GateType,
    evaluate_gate,
    logic_not,
)


class TestLogicNot:
    def test_inverts_binary(self):
        assert logic_not(FALSE) == TRUE
        assert logic_not(TRUE) == FALSE

    def test_unknown_stays_unknown(self):
        assert logic_not(UNKNOWN) == UNKNOWN


class TestBinaryTruthTables:
    @pytest.mark.parametrize(
        "gate_type, table",
        [
            (GateType.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (GateType.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (GateType.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (GateType.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            (GateType.XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (GateType.XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ],
    )
    def test_two_input_tables(self, gate_type, table):
        for inputs, expected in table.items():
            assert evaluate_gate(gate_type, list(inputs)) == expected

    def test_wide_and(self):
        assert evaluate_gate(GateType.AND, [1, 1, 1, 1]) == TRUE
        assert evaluate_gate(GateType.AND, [1, 1, 0, 1]) == FALSE

    def test_wide_xor_is_parity(self):
        assert evaluate_gate(GateType.XOR, [1, 1, 1]) == TRUE
        assert evaluate_gate(GateType.XOR, [1, 1, 1, 1]) == FALSE


class TestUnknownPropagation:
    def test_controlling_value_dominates_unknown(self):
        # AND with a 0 input is 0 even if another input is X.
        assert evaluate_gate(GateType.AND, [FALSE, UNKNOWN]) == FALSE
        assert evaluate_gate(GateType.NAND, [FALSE, UNKNOWN]) == TRUE
        assert evaluate_gate(GateType.OR, [TRUE, UNKNOWN]) == TRUE
        assert evaluate_gate(GateType.NOR, [TRUE, UNKNOWN]) == FALSE

    def test_noncontrolling_with_unknown_is_unknown(self):
        assert evaluate_gate(GateType.AND, [TRUE, UNKNOWN]) == UNKNOWN
        assert evaluate_gate(GateType.OR, [FALSE, UNKNOWN]) == UNKNOWN

    def test_xor_any_unknown_is_unknown(self):
        assert evaluate_gate(GateType.XOR, [TRUE, UNKNOWN]) == UNKNOWN
        assert evaluate_gate(GateType.XNOR, [UNKNOWN, FALSE]) == UNKNOWN


class TestUnaryAndSequential:
    def test_not(self):
        assert evaluate_gate(GateType.NOT, [TRUE]) == FALSE

    def test_buf_passthrough(self):
        for v in (FALSE, TRUE, UNKNOWN):
            assert evaluate_gate(GateType.BUF, [v]) == v

    def test_dff_transparent_at_capture(self):
        for v in (FALSE, TRUE, UNKNOWN):
            assert evaluate_gate(GateType.DFF, [v]) == v


class TestArityErrors:
    def test_input_cannot_be_evaluated(self):
        with pytest.raises(ValueError, match="stimulus"):
            evaluate_gate(GateType.INPUT, [])

    def test_not_rejects_two_inputs(self):
        with pytest.raises(ValueError, match="NOT"):
            evaluate_gate(GateType.NOT, [TRUE, FALSE])

    def test_and_rejects_single_input(self):
        with pytest.raises(ValueError, match="AND"):
            evaluate_gate(GateType.AND, [TRUE])

    def test_dff_rejects_two_inputs(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.DFF, [TRUE, FALSE])


class TestGateTypeProperties:
    def test_sequential_flag(self):
        assert GateType.DFF.is_sequential
        assert not GateType.AND.is_sequential

    def test_source_flag(self):
        assert GateType.INPUT.is_source
        assert not GateType.DFF.is_source

    def test_fanin_bounds(self):
        assert GateType.INPUT.max_fanin == 0
        assert GateType.AND.max_fanin is None
        assert GateType.NOT.min_fanin == GateType.NOT.max_fanin == 1
