"""Unit tests for the synthetic circuit generator and ISCAS'89 specs."""

import pytest

from repro.circuit import (
    BENCHMARKS,
    GeneratorSpec,
    circuit_stats,
    generate_circuit,
    load_benchmark,
    validate_circuit,
)
from repro.errors import ConfigError


class TestSpecValidation:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ConfigError):
            GeneratorSpec("x", 0, 1, 10, 0)

    def test_rejects_dffs_not_below_gates(self):
        with pytest.raises(ConfigError):
            GeneratorSpec("x", 2, 1, 10, 10)

    def test_rejects_shallow_depth(self):
        with pytest.raises(ConfigError):
            GeneratorSpec("x", 2, 1, 10, 0, depth=1)

    def test_rejects_bad_scale(self):
        spec = GeneratorSpec("x", 4, 4, 100, 10)
        with pytest.raises(ConfigError):
            spec.scaled(0)


class TestGeneratedStructure:
    def test_counts_match_spec(self):
        spec = GeneratorSpec("t", 9, 7, 200, 13, depth=9, seed=5)
        stats = circuit_stats(generate_circuit(spec))
        assert stats.num_inputs == 9
        assert stats.num_outputs == 7
        assert stats.num_gates == 200
        assert stats.num_dffs == 13

    def test_structurally_valid(self):
        spec = GeneratorSpec("t", 5, 5, 150, 12, depth=8, seed=6)
        validate_circuit(generate_circuit(spec))

    def test_deterministic_for_same_seed(self):
        spec = GeneratorSpec("t", 5, 5, 80, 6, seed=7)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert [g.name for g in a.gates] == [g.name for g in b.gates]
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seed_differs(self):
        a = generate_circuit(GeneratorSpec("t", 5, 5, 80, 6, seed=7))
        b = generate_circuit(GeneratorSpec("t", 5, 5, 80, 6, seed=8))
        assert sorted(a.edges()) != sorted(b.edges())

    def test_no_dffless_spec_breaks(self):
        spec = GeneratorSpec("t", 4, 3, 60, 0, depth=6, seed=9)
        validate_circuit(generate_circuit(spec))

    def test_depth_respected_roughly(self):
        spec = GeneratorSpec("t", 6, 4, 300, 20, depth=12, seed=10)
        stats = circuit_stats(generate_circuit(spec))
        # dangler absorption can extend paths a little past the target
        assert 12 <= stats.max_level <= 12 * 2


class TestBenchmarks:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_scaled_benchmarks_valid(self, name):
        c = load_benchmark(name, scale=0.05)
        validate_circuit(c)

    def test_full_scale_matches_table1(self):
        # Only the smallest circuit at full scale, to keep tests fast;
        # the Table 1 bench covers all three.
        stats = circuit_stats(load_benchmark("s5378"))
        assert stats.table1_row() == ("s5378", 35, 2779, 49)
        assert stats.num_dffs == 179

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="s404040"):
            load_benchmark("s404040")

    def test_scaled_spec_name(self):
        spec = BENCHMARKS["s9234"].generator_spec(scale=0.25)
        assert spec.name == "s9234@0.25"
        assert spec.num_gates == round(5597 * 0.25)
