"""Unit tests for the CircuitGraph data structure."""

import pytest

from repro.circuit import CircuitGraph, GateType
from repro.circuit.graph import build_circuit
from repro.errors import CircuitError


def tiny():
    c = CircuitGraph("tiny")
    a = c.add_gate("a", GateType.INPUT)
    b = c.add_gate("b", GateType.INPUT)
    g = c.add_gate("g", GateType.AND)
    c.connect(a, g)
    c.connect(b, g)
    c.mark_output(g)
    return c, (a, b, g)


class TestConstruction:
    def test_indices_are_dense(self):
        c, (a, b, g) = tiny()
        assert [a, b, g] == [0, 1, 2]

    def test_duplicate_name_rejected(self):
        c, _ = tiny()
        with pytest.raises(CircuitError, match="duplicate"):
            c.add_gate("a", GateType.OR)

    def test_negative_delay_rejected(self):
        c, _ = tiny()
        with pytest.raises(CircuitError, match="delay"):
            c.add_gate("slow", GateType.OR, delay=-1)

    def test_self_loop_rejected(self):
        c, (_, _, g) = tiny()
        with pytest.raises(CircuitError, match="self-loop"):
            c.connect(g, g)

    def test_fanin_into_primary_input_rejected(self):
        c, (a, _, g) = tiny()
        with pytest.raises(CircuitError, match="primary input"):
            c.connect(g, a)

    def test_parallel_edges_allowed(self):
        c = CircuitGraph()
        a = c.add_gate("a", GateType.INPUT)
        x = c.add_gate("x", GateType.XOR)
        c.connect(a, x)
        c.connect(a, x)
        c.mark_output(x)
        c.freeze()
        assert c.fanin(x) == [a, a]
        assert c.num_edges == 2


class TestFreeze:
    def test_freeze_validates_arity(self):
        c = CircuitGraph()
        c.add_gate("a", GateType.INPUT)
        c.add_gate("lonely", GateType.AND)  # zero fanin: illegal
        with pytest.raises(CircuitError, match="lonely"):
            c.freeze()

    def test_frozen_rejects_mutation(self):
        c, (a, _, g) = tiny()
        c.freeze()
        with pytest.raises(CircuitError, match="frozen"):
            c.add_gate("new", GateType.OR)
        with pytest.raises(CircuitError, match="frozen"):
            c.connect(a, g)

    def test_queries_require_freeze(self):
        c, _ = tiny()
        with pytest.raises(CircuitError, match="freeze"):
            _ = c.primary_inputs

    def test_derived_indexes(self):
        c, (a, b, g) = tiny()
        c.freeze()
        assert c.primary_inputs == [a, b]
        assert c.primary_outputs == [g]
        assert c.dffs == []

    def test_freeze_idempotent(self):
        c, _ = tiny()
        assert c.freeze() is c.freeze()


class TestQueries:
    def test_index_of_and_contains(self):
        c, (a, _, _) = tiny()
        assert c.index_of("a") == a
        assert "a" in c and "zz" not in c
        with pytest.raises(CircuitError, match="zz"):
            c.index_of("zz")

    def test_edges_iteration(self):
        c, (a, b, g) = tiny()
        assert sorted(c.edges()) == [(a, g), (b, g)]

    def test_combinational_views_cut_dffs(self):
        c = build_circuit(
            "loop",
            [
                ("i", GateType.INPUT, []),
                ("ff", GateType.DFF, ["n"]),
                ("n", GateType.NOR, ["i", "ff"]),
            ],
            outputs=["n"],
        )
        ff = c.index_of("ff")
        n = c.index_of("n")
        assert c.combinational_fanout(ff) == []
        assert c.combinational_fanin(n) == [c.index_of("i")]

    def test_copy_preserves_structure(self):
        c, _ = tiny()
        c.freeze()
        dup = c.copy()
        assert dup.frozen
        assert dup.num_gates == c.num_gates
        assert sorted(dup.edges()) == sorted(c.edges())
        assert dup.primary_outputs == c.primary_outputs

    def test_to_networkx(self):
        c, (a, b, g) = tiny()
        c.freeze()
        nxg = c.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 2
        assert nxg.nodes[g]["gate_type"] == "AND"


class TestBuildCircuit:
    def test_forward_references_allowed(self, s27):
        # s27 fixture itself relies on forward references via the parser;
        # build_circuit supports the same for programmatic construction.
        c = build_circuit(
            "fwd",
            [
                ("i", GateType.INPUT, []),
                ("ff", GateType.DFF, ["g"]),  # g defined later
                ("g", GateType.NAND, ["i", "ff"]),
            ],
            outputs=["g"],
        )
        assert c.frozen
        assert c.num_edges == 3

    def test_s27_shape(self, s27):
        assert len(s27.primary_inputs) == 4
        assert len(s27.primary_outputs) == 1
        assert len(s27.dffs) == 3
        assert s27.num_gates == 17  # 4 PIs + 13 logic elements
