"""GVT ring liveness and bookkeeping, driven in-process via NodeLoop.

The loop is transport-agnostic, so these tests run a full node ring on
stdlib ``queue.Queue`` inboxes inside one process — deterministic, no
forks — and pin down the two bookkeeping regressions the multiprocess
backend shipped with: non-initiator nodes never resetting their
``since_gvt`` progress counter, and clerk color tables growing without
bound off the initiator (``forget_before`` only ever ran on node 0).
Plus the protocol property the restart path depends on: an
inconclusive round (whites still in flight) must extend the same
computation until the stragglers land, then conclude correctly.
"""

from __future__ import annotations

import queue

import pytest

from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped.parallel import NodeEngine, NodeLoop
from repro.warped.parallel.protocol import T_INF


class IdleEngine:
    """An engine with no events — isolates the GVT machinery."""

    def __init__(self):
        self.outbox = []
        self.fossil_gvts = []

    def processable(self, gvt):
        return False

    def process_one(self):  # pragma: no cover
        raise AssertionError("idle engine asked to process")

    def min_pending(self):
        return None

    def fossil_collect(self, gvt):
        self.fossil_gvts.append(gvt)


def make_ring(k, engines=None, **kw):
    inboxes = [queue.Queue() for _ in range(k)]
    engines = engines or [IdleEngine() for _ in range(k)]
    return [
        NodeLoop(node, k, engines[node], inboxes, **kw) for node in range(k)
    ]


def drive(loops, max_iters=500_000):
    """Round-robin the ring cooperatively until every node is done."""
    for _ in range(max_iters):
        if all(loop.done for loop in loops):
            return
        for loop in loops:
            if loop.done:
                continue
            loop.poll()
            if loop.done:
                continue
            loop.work_batch()
            loop.maybe_initiate()
    raise AssertionError("ring failed to quiesce")


class TestRingQuiescence:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_idle_ring_proves_quiescence(self, k):
        loops = make_ring(k)
        drive(loops)
        assert all(loop.done for loop in loops)
        assert loops[0].gvt_computations >= 1
        # +inf skips fossil collection but every node saw the round.
        assert all(loop.gvt_rounds_seen >= 1 for loop in loops)

    def test_real_workload_ring_matches_sequential(self, s27):
        stimulus = RandomStimulus(s27, num_cycles=15, period=20, seed=11)
        sequential = SequentialSimulator(s27, stimulus).run()
        k = 3
        assignment = get_partitioner("Random", seed=4).partition(s27, k)
        inboxes = [queue.Queue() for _ in range(k)]
        engines = [
            NodeEngine(s27, assignment.assignment, node, k, stimulus)
            for node in range(k)
        ]
        for engine in engines:
            engine.schedule_initial()
        loops = [
            NodeLoop(node, k, engines[node], inboxes, gvt_interval=32)
            for node in range(k)
        ]
        drive(loops)
        for engine in engines:
            engine.check_quiescent()
        values = {}
        for engine in engines:
            values.update(engine.final_values())
        assert [values[i] for i in range(s27.num_gates)] == (
            sequential.final_values
        )


class TestSinceGvtReset:
    def test_every_node_resets_progress_counter(self, s27):
        """Regression: only the initiator ever reset ``since_gvt``.

        Pre-fix, a non-initiator's counter grew monotonically with every
        event it processed, so any logic keyed on "events since the last
        GVT" (and the trace's round bookkeeping) was garbage off node 0.
        Post-fix every GVT application zeroes it, so at quiescence —
        which ends with a final broadcast round — all counters read 0
        while the engines demonstrably processed events.
        """
        stimulus = RandomStimulus(s27, num_cycles=15, period=20, seed=11)
        k = 3
        assignment = get_partitioner("Random", seed=4).partition(s27, k)
        inboxes = [queue.Queue() for _ in range(k)]
        engines = [
            NodeEngine(s27, assignment.assignment, node, k, stimulus)
            for node in range(k)
        ]
        for engine in engines:
            engine.schedule_initial()
        loops = [
            NodeLoop(node, k, engines[node], inboxes, gvt_interval=32)
            for node in range(k)
        ]
        drive(loops)
        assert all(e.counters["events"] > 0 for e in engines)
        assert all(loop.since_gvt == 0 for loop in loops)
        # And every node (not just the initiator) participated in the
        # same number of applied rounds, bar the in-flight last one.
        seen = [loop.gvt_rounds_seen for loop in loops]
        assert min(seen) >= 1

    def test_clerk_tables_stay_bounded_off_initiator(self, s27):
        """Regression: clerk color tables only compacted on node 0.

        With ``forget_before`` now running at every GVT application,
        every node's sent/received/send_min dicts stay O(1) even after
        many computations (pre-fix they held one entry per color ever
        used on non-initiators).
        """
        stimulus = RandomStimulus(s27, num_cycles=30, period=20, seed=11)
        k = 3
        assignment = get_partitioner("Random", seed=4).partition(s27, k)
        inboxes = [queue.Queue() for _ in range(k)]
        engines = [
            NodeEngine(s27, assignment.assignment, node, k, stimulus)
            for node in range(k)
        ]
        for engine in engines:
            engine.schedule_initial()
        # A tiny interval forces many GVT computations.
        loops = [
            NodeLoop(node, k, engines[node], inboxes, gvt_interval=4)
            for node in range(k)
        ]
        drive(loops)
        assert loops[0].gvt_computations >= 5
        for loop in loops:
            # floor color + at most the two live computations' colors.
            assert len(loop.clerk.sent) <= 3, f"node {loop.node} leaked"
            assert len(loop.clerk.received) <= 3
            assert len(loop.clerk.send_min) <= 3


class TestInconclusiveRound:
    def test_in_flight_white_forces_second_trip(self):
        """A white message in flight must make the round inconclusive,
        and the restarted round of the SAME computation must conclude
        once the message lands — the ring-restart path of
        ``NodeLoop.conclude`` end to end."""
        loops = make_ring(2)
        l0, l1 = loops
        # A phantom application message: sent by node 0, not yet
        # received by node 1 (still "in the network").
        color = l0.clerk.note_send(5)
        assert color == 0  # white for any computation >= 1

        l0.maybe_initiate()           # token -> node 1
        assert l0.active_cid == 1
        l1.poll()                     # fold + forward -> node 0
        l0.poll()                     # round home: count==1, inconclusive
        # The computation must still be open, on a fresh trip.
        assert l0.active_cid == 1
        assert not l0.done
        assert l0.gvt_computations == 0
        assert l0._round_trips == 2

        # Deliver the straggler; the already-circulating retry round now
        # balances and concludes with GVT = +inf.
        l1.clerk.note_receive(color)
        l1.poll()                     # fold trip 2 + forward
        l0.poll()                     # conclusive: broadcast + done
        assert l0.done
        assert l0.gvt_computations == 1
        l1.poll()                     # GVT broadcast lands
        assert l1.done
        assert l0.since_gvt == 0 and l1.since_gvt == 0

    def test_pending_event_bounds_gvt_via_m_clock(self):
        """A pending event's virtual time must cap the concluded GVT."""

        class PendingEngine(IdleEngine):
            t: int | None = 42

            def min_pending(self):
                return self.t

        engines = [IdleEngine(), PendingEngine()]
        loops = make_ring(2, engines=engines)
        l0, l1 = loops
        l0.maybe_initiate()
        l1.poll()
        l0.poll()
        assert l0.gvt_computations == 1
        assert l0.gvt == 42 and not l0.done
        l1.poll()
        assert l1.gvt == 42 and not l1.done
        assert l1.engine.fossil_gvts[-1] == 42
        # Once the event is gone, the next computation proves quiescence.
        engines[1].t = None
        drive(loops)
        assert l0.done and l1.done

    def test_red_send_bounds_gvt_via_m_send(self):
        """A red in-flight message's timestamp must cap the GVT.

        Node 1 joins computation 1 (turns red), then sends at t=42; the
        message is still in flight when the round concludes, so only the
        token's ``m_send`` fold protects it.
        """
        loops = make_ring(2)
        l0, l1 = loops
        l1.clerk.cur_cid = 1  # already red for the upcoming computation
        sent_color = l1.clerk.note_send(42)
        assert sent_color == 1
        l0.maybe_initiate()
        assert l0.active_cid == 1
        l1.poll()
        l0.poll()
        # Whites balance (none exist); the red send caps the bound.
        assert l0.gvt_computations == 1
        assert l0.gvt == 42 and not l0.done
        l1.poll()
        assert l1.gvt == 42 and not l1.done

    def test_idle_engine_min_is_infinite(self):
        (loop,) = make_ring(1)
        assert loop.local_min() == T_INF
