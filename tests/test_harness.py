"""Tests for the experiment harness (tiny configurations)."""

import pytest

from repro.errors import ConfigError
from repro.harness.config import (
    ALGORITHMS,
    FIGURE_NODE_COUNTS,
    TABLE2_NODE_COUNTS,
    ExperimentConfig,
)
from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import fig5_series, fig6_series
from repro.harness.table1 import PAPER_TABLE1, generate_table1, table1_rows
from repro.harness.table2 import PAPER_TABLE2, generate_table2


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(ExperimentConfig(scale=0.03, num_cycles=12))


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.scale == 0.12
        assert config.optimism_window == config.period

    def test_unbounded_window(self):
        config = ExperimentConfig(window_periods=None)
        assert config.optimism_window is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(scale=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(num_cycles=1)
        with pytest.raises(ConfigError):
            ExperimentConfig(window_periods=-1.0)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_CYCLES", "99")
        config = ExperimentConfig.from_env()
        assert config.scale == 0.5
        assert config.num_cycles == 99

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        config = ExperimentConfig.from_env()
        assert config.scale == 1.0
        assert config.num_cycles == 400

    def test_describe_mentions_scale(self):
        assert "scale=0.12" in ExperimentConfig().describe()

    def test_paper_node_counts(self):
        # the s15850 2-node row is missing in the paper (out of memory)
        assert TABLE2_NODE_COUNTS["s15850"] == (4, 6, 8)
        assert 1 in FIGURE_NODE_COUNTS and 8 in FIGURE_NODE_COUNTS


class TestRunnerCaching:
    def test_circuit_cached(self, tiny_runner):
        assert tiny_runner.circuit("s9234") is tiny_runner.circuit("s9234")

    def test_run_cached(self, tiny_runner):
        a = tiny_runner.run("s9234", "Random", 2)
        b = tiny_runner.run("s9234", "Random", 2)
        assert a is b

    def test_partition_cached_per_key(self, tiny_runner):
        p1 = tiny_runner.partition("s9234", "Random", 2)
        p2 = tiny_runner.partition("s9234", "Random", 4)
        assert p1 is not p2
        assert p1 is tiny_runner.partition("s9234", "Random", 2)

    def test_oracle_checked_on_every_run(self, tiny_runner):
        record = tiny_runner.record("s9234", "Multilevel", 3)
        seq = tiny_runner.sequential("s9234")
        assert record.events_processed >= seq.events_processed
        tw = tiny_runner.run("s9234", "Multilevel", 3)
        assert tw.final_values == seq.final_values


class TestArtifacts:
    def test_table1_renders_and_annotates_paper(self, tiny_runner):
        table = generate_table1(tiny_runner)
        assert "s9234" in table and "5597" in table  # paper column

    def test_table1_rows_cover_all_benchmarks(self, tiny_runner):
        rows = table1_rows(tiny_runner)
        assert len(rows) == 3
        assert {r[0].split("@")[0] for r in rows} == set(PAPER_TABLE1)

    def test_table2_renders(self, tiny_runner):
        table = generate_table2(tiny_runner)
        for algorithm in ALGORITHMS:
            assert algorithm in table
        # paper reference data is complete and self-consistent
        for (circuit, nodes), row in PAPER_TABLE2.items():
            assert circuit in PAPER_TABLE1
            assert len(row) == 1 + len(ALGORITHMS)

    def test_figure_series_shapes(self, tiny_runner):
        for series in (fig5_series(tiny_runner), fig6_series(tiny_runner)):
            assert set(series) == set(ALGORITHMS)
            for values in series.values():
                assert len(values) == len(FIGURE_NODE_COUNTS)
                assert values[0] == 0  # one node: no messages/rollbacks


class TestRepetitions:
    def test_record_averages_over_reps(self):
        config = ExperimentConfig(scale=0.03, num_cycles=10, repetitions=3)
        runner = ExperimentRunner(config)
        averaged = runner.record("s9234", "Random", 2)
        singles = [runner.run("s9234", "Random", 2, rep) for rep in range(3)]
        assert averaged.execution_time == pytest.approx(
            sum(r.execution_time for r in singles) / 3
        )
        assert averaged.app_messages == round(
            sum(r.app_messages for r in singles) / 3
        )

    def test_reps_use_distinct_stimuli(self):
        config = ExperimentConfig(scale=0.03, num_cycles=10, repetitions=2)
        runner = ExperimentRunner(config)
        a = runner.stimulus("s9234", 0)
        b = runner.stimulus("s9234", 1)
        pi = runner.circuit("s9234").primary_inputs[0]
        assert [a.value(pi, c) for c in range(10)] != [
            b.value(pi, c) for c in range(10)
        ] or a.seed != b.seed

    def test_sequential_time_is_mean(self):
        config = ExperimentConfig(scale=0.03, num_cycles=10, repetitions=2)
        runner = ExperimentRunner(config)
        mean = runner.sequential_time("s5378")
        parts = [runner.sequential("s5378", r).execution_time for r in (0, 1)]
        assert mean == pytest.approx(sum(parts) / 2)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "4")
        assert ExperimentConfig.from_env().repetitions == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(repetitions=0)
