"""Tests for lazy cancellation (the alternative WARPED policy)."""

import pytest

from repro.errors import ConfigError
from repro.partition import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import TimeWarpSimulator, VirtualMachine


def run(circuit, stim, k, *, cancellation, name="Cluster", **kwargs):
    assignment = get_partitioner(name, seed=3).partition(circuit, k)
    machine = VirtualMachine(
        num_nodes=k, cancellation=cancellation, **kwargs
    )
    return TimeWarpSimulator(circuit, assignment, stim, machine).run()


class TestLazyCorrectness:
    @pytest.mark.parametrize(
        "name",
        ["Random", "DFS", "Cluster", "Topological", "Multilevel",
         "ConePartition"],
    )
    def test_matches_sequential(self, medium_circuit, name):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        result = run(medium_circuit, stim, 4, cancellation="lazy", name=name)
        assert result.final_values == seq.final_values

    def test_matches_with_window(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        result = run(
            medium_circuit, stim, 5, cancellation="lazy", optimism_window=20
        )
        assert result.final_values == seq.final_values

    def test_single_node_trivially_clean(self, small_circuit):
        stim = RandomStimulus(small_circuit, num_cycles=10, seed=1)
        result = run(small_circuit, stim, 1, cancellation="lazy")
        assert result.rollbacks == 0
        assert result.lazy_reuses == 0


class TestLazyBehaviour:
    def test_reuses_happen(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=25, seed=2)
        result = run(medium_circuit, stim, 4, cancellation="lazy")
        assert result.rollbacks > 0
        assert result.lazy_reuses > 0, (
            "value-correct speculation should be reused, not cancelled"
        )

    def test_reuse_plus_cancel_covers_all_undone_sends(self, medium_circuit):
        """Lazy never both reuses and cancels the same send: every
        rolled-back remote emission ends as exactly one of the two.
        (Whether lazy sends fewer antis overall is workload-dependent —
        wrong speculation propagates further before cancellation and
        can amplify cascades; ablation A6 reports the comparison.)"""
        stim = RandomStimulus(medium_circuit, num_cycles=25, seed=2)
        counts = {}
        assignment = get_partitioner("Cluster", seed=3).partition(
            medium_circuit, 4
        )
        machine = VirtualMachine(num_nodes=4, cancellation="lazy")
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim, machine,
            trace_hook=lambda op, *a: counts.__setitem__(
                op, counts.get(op, 0) + 1
            ),
        ).run()
        assert result.rollbacks > 0
        cancelled = counts.get("emission_cancelled", 0)
        reused = counts.get("lazy_reuses", 0) or result.lazy_reuses
        resolved = (
            counts.get("annihilate_pending", 0)
            + counts.get("annihilate_processed", 0)
            + counts.get("annihilate_on_arrival", 0)
        )
        assert cancelled == resolved
        assert reused == result.lazy_reuses

    def test_aggressive_mode_never_reuses(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        result = run(medium_circuit, stim, 4, cancellation="aggressive")
        assert result.lazy_reuses == 0

    def test_deterministic(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        a = run(medium_circuit, stim, 4, cancellation="lazy")
        b = run(medium_circuit, stim, 4, cancellation="lazy")
        assert a.execution_time == b.execution_time
        assert a.lazy_reuses == b.lazy_reuses


class TestConfig:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError, match="cancellation"):
            VirtualMachine(num_nodes=2, cancellation="optimistic-ish")
