"""Unit tests for topological levelization."""

import pytest

from repro.circuit import GateType, levelize, parse_bench
from repro.circuit.graph import build_circuit
from repro.circuit.levelize import critical_path_length, levels_to_buckets
from repro.errors import CircuitError


class TestLevelize:
    def test_chain_levels(self):
        c = parse_bench(
            "INPUT(a)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\nOUTPUT(d)\n"
        )
        level = levelize(c)
        assert level[c.index_of("a")] == 0
        assert level[c.index_of("b")] == 1
        assert level[c.index_of("c")] == 2
        assert level[c.index_of("d")] == 3

    def test_longest_path_wins(self):
        # d sees a (level 0) and c (level 2): must be level 3.
        c = parse_bench(
            "INPUT(a)\nb = NOT(a)\nc = NOT(b)\nd = AND(a, c)\nOUTPUT(d)\n"
        )
        assert levelize(c)[c.index_of("d")] == 3

    def test_dff_is_level_zero_source(self):
        c = build_circuit(
            "seq",
            [
                ("i", GateType.INPUT, []),
                ("ff", GateType.DFF, ["g"]),
                ("g", GateType.NAND, ["i", "ff"]),
                ("h", GateType.NOT, ["ff"]),
            ],
            outputs=["g", "h"],
        )
        level = levelize(c)
        assert level[c.index_of("ff")] == 0
        assert level[c.index_of("h")] == 1
        assert level[c.index_of("g")] == 1

    def test_combinational_cycle_detected(self):
        c = build_circuit(
            "cyc",
            [
                ("i", GateType.INPUT, []),
                ("x", GateType.NAND, ["i", "y"]),
                ("y", GateType.NAND, ["i", "x"]),
            ],
            outputs=["y"],
        )
        with pytest.raises(CircuitError, match="cycle"):
            levelize(c)

    def test_sequential_loop_is_fine(self, s27):
        level = levelize(s27)  # s27 has feedback through 3 DFFs
        assert len(level) == s27.num_gates
        assert all(lvl >= 0 for lvl in level)

    def test_every_gate_deeper_than_combinational_drivers(self, medium_circuit):
        level = levelize(medium_circuit)
        for gate in medium_circuit.gates:
            if gate.gate_type.is_sequential or gate.gate_type.is_source:
                continue
            for driver in gate.fanin:
                assert level[gate.index] >= level[driver] + 1 or (
                    medium_circuit.gates[driver].gate_type.is_sequential
                    and level[gate.index] >= 0
                )


class TestHelpers:
    def test_levels_to_buckets(self):
        buckets = levels_to_buckets([0, 1, 1, 2, 0])
        assert buckets == [[0, 4], [1, 2], [3]]

    def test_levels_to_buckets_empty(self):
        assert levels_to_buckets([]) == []

    def test_critical_path(self):
        c = parse_bench(
            "INPUT(a)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\nOUTPUT(d)\n"
        )
        assert critical_path_length(c) == 3
