"""Live-status hygiene: stale snapshots must never haunt a new run.

Two layers guard against leftovers when a ``--live-status`` base path
is reused: run start deletes every ``<base>.node*`` file
(:func:`clear_status_files`), and the ``tw_top`` dashboard groups
whatever files it does find by the run id stamped into each snapshot,
keeping only the freshest run (a node of the old run can still be
flushing its last snapshot after the new run cleared).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

from repro.warped.parallel.backend import clear_status_files

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load(name: str, path: Path):
    module = sys.modules.get(name)
    if module is None:
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
    return module


tw_top = _load("tw_top", REPO_ROOT / "tools" / "tw_top.py")


def _write_snapshot(base: Path, node: int, *, run: str, ts: float, **extra):
    payload = {"run": run, "ts": ts, "node": node, "events": 0, **extra}
    path = Path(f"{base}.node{node}")
    path.write_text(json.dumps(payload))
    return path


def test_clear_status_files_removes_only_matching_nodes(tmp_path):
    base = tmp_path / "run.status"
    for node in range(4):
        _write_snapshot(base, node, run="old", ts=1.0)
    bystander = tmp_path / "other.status.node0"
    bystander.write_text("{}")
    assert clear_status_files(str(base)) == 4
    assert not list(tmp_path.glob("run.status.node*"))
    assert bystander.exists()
    # Idempotent on an already-clean base.
    assert clear_status_files(str(base)) == 0


def test_read_snapshots_keeps_only_the_freshest_run(tmp_path):
    """The haunting bug: a 2-node run after a 4-node run on one base.

    Nodes 2-3 of the dead earlier run survive as files (simulating the
    flush race); the dashboard must show only the new run's nodes.
    """
    base = tmp_path / "run.status"
    for node in (2, 3):
        _write_snapshot(base, node, run="dead-run", ts=10.0)
    for node in (0, 1):
        _write_snapshot(base, node, run="new-run", ts=20.0)
    snapshots = tw_top.read_snapshots(str(base))
    assert sorted(snapshots) == [0, 1]
    assert all(s["run"] == "new-run" for s in snapshots.values())


def test_read_snapshots_single_run_passes_through(tmp_path):
    base = tmp_path / "run.status"
    for node in range(3):
        _write_snapshot(base, node, run="only", ts=float(node))
    assert sorted(tw_top.read_snapshots(str(base))) == [0, 1, 2]


def test_read_snapshots_tolerates_partial_files(tmp_path):
    base = tmp_path / "run.status"
    _write_snapshot(base, 0, run="r", ts=1.0)
    Path(f"{base}.node1").write_text('{"truncated": ')
    snapshots = tw_top.read_snapshots(str(base))
    assert sorted(snapshots) == [0]
