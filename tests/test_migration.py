"""Tests for dynamic LP migration."""

import pytest

from repro.errors import ConfigError
from repro.partition import PartitionAssignment, get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import TimeWarpSimulator, VirtualMachine
from repro.warped.messages import Message
from repro.warped.queues import NodeQueue
from repro.sim.event import SIG


class TestQueueExtraction:
    def entry(self, uid, dest, t=1):
        return Message(t, SIG, 0, uid, 1, dest, uid)

    def test_extracts_only_requested_dests(self):
        q = NodeQueue()
        for uid, dest in ((1, 5), (2, 6), (3, 5), (4, 7)):
            q.push(self.entry(uid, dest))
        moved = q.extract_dests({5})
        assert sorted(m.uid for m in moved) == [1, 3]
        assert len(q) == 2
        assert q.pop().uid in (2, 4)

    def test_extraction_drops_annihilated_entries(self):
        q = NodeQueue()
        q.push(self.entry(1, 5))
        q.push(self.entry(2, 5))
        q.annihilate(1)
        moved = q.extract_dests({5})
        assert [m.uid for m in moved] == [2]

    def test_remaining_queue_still_ordered(self):
        q = NodeQueue()
        for uid, t in ((1, 9), (2, 3), (3, 6)):
            q.push(self.entry(uid, dest=8, t=t))
        q.push(self.entry(4, dest=5, t=1))
        q.extract_dests({5})
        assert [q.pop().time for _ in range(3)] == [3, 6, 9]


def imbalanced_partition(circuit, k):
    """Deliberately skewed: 70% of gates on node 0."""
    n = circuit.num_gates
    cut = int(n * 0.7)
    assignment = [0] * n
    for i in range(cut, n):
        assignment[i] = 1 + (i % (k - 1))
    return PartitionAssignment(circuit, k, assignment, algorithm="skewed")


class TestMigration:
    def test_oracle_holds_with_migration(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = imbalanced_partition(medium_circuit, 4)
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, migration_threshold=1.5,
                           gvt_interval=128),
        ).run()
        assert result.final_values == seq.final_values
        assert result.migrations > 0

    def test_migration_rescues_skewed_partition(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=25, seed=2)
        assignment = imbalanced_partition(medium_circuit, 4)
        static = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        dynamic = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, migration_threshold=1.5,
                           gvt_interval=256, migration_fraction=0.1),
        ).run()
        assert dynamic.final_values == static.final_values
        assert dynamic.migrations > 0
        assert dynamic.execution_time < static.execution_time

    def test_cold_window_floor_blocks_thrash(self, medium_circuit):
        """Regression: an idle cold node degenerated the threshold test.

        The ratio gate alone (``hot <= threshold * cold``) passes for
        ANY nonzero hot window once the cold window is 0, so LPs
        ping-ponged off the hot node every GVT round however trivial
        the imbalance.  The fix adds an absolute floor — the hot window
        must at least pay for the transfer (``migrate_lp_cost``).
        Pricing the transfer out of reach must therefore pin
        migrations at zero even against this maximally skewed
        partition, where the ratio gate fires constantly.
        """
        from repro.warped import TimeWarpCostModel

        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = imbalanced_partition(medium_circuit, 4)
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(
                num_nodes=4, migration_threshold=1.5, gvt_interval=128,
                cost_model=TimeWarpCostModel(migrate_lp_cost=100.0),
            ),
        ).run()
        assert result.migrations == 0
        assert result.final_values == seq.final_values

    def test_no_migration_when_disabled(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        assignment = get_partitioner("Random", seed=3).partition(
            medium_circuit, 4
        )
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert result.migrations == 0

    def test_node_stats_track_moves(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=20, seed=2)
        assignment = imbalanced_partition(medium_circuit, 4)
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(num_nodes=4, migration_threshold=1.5,
                           gvt_interval=128),
        ).run()
        assert sum(s.num_lps for s in result.node_stats) == (
            medium_circuit.num_gates
        )
        assert all(s.num_lps > 0 for s in result.node_stats)

    def test_deterministic(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        assignment = imbalanced_partition(medium_circuit, 4)

        def run():
            return TimeWarpSimulator(
                medium_circuit, assignment, stim,
                VirtualMachine(num_nodes=4, migration_threshold=1.5,
                               gvt_interval=128),
            ).run()

        a, b = run(), run()
        assert a.migrations == b.migrations
        assert a.execution_time == b.execution_time

    def test_combines_with_other_policies(self, medium_circuit):
        stim = RandomStimulus(medium_circuit, num_cycles=15, seed=2)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = imbalanced_partition(medium_circuit, 4)
        result = TimeWarpSimulator(
            medium_circuit, assignment, stim,
            VirtualMachine(
                num_nodes=4, migration_threshold=1.5, gvt_interval=128,
                cancellation="lazy", checkpoint_interval=8,
                optimism_window=150,
            ),
        ).run()
        assert result.final_values == seq.final_values

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="migration_threshold"):
            VirtualMachine(num_nodes=2, migration_threshold=0.5)
        with pytest.raises(ConfigError, match="migration_fraction"):
            VirtualMachine(num_nodes=2, migration_fraction=0.0)
