"""Unit tests for the three multilevel phases in isolation."""

import numpy as np
import pytest

from repro.partition.multilevel import (
    CoarseGraph,
    MultilevelPartitioner,
    coarsen,
    coarsen_once,
    fm_refine,
    greedy_refine,
    initial_partition,
    kl_refine,
)
from repro.partition.multilevel.refine_greedy import cut_weight, move_gains


@pytest.fixture()
def level0(medium_circuit):
    return CoarseGraph.from_circuit(medium_circuit)


class TestCoarseGraph:
    def test_from_circuit_counts(self, medium_circuit, level0):
        assert level0.n == medium_circuit.num_gates
        assert level0.total_weight == medium_circuit.num_gates
        assert level0.edge_weight_total() == medium_circuit.num_edges

    def test_input_flags(self, medium_circuit, level0):
        assert sorted(level0.input_globules) == sorted(
            medium_circuit.primary_inputs
        )

    def test_contract_weights_sum(self, level0):
        groups, _ = coarsen_once(level0, merge_all=True)
        coarse = level0.contract(groups)
        assert sum(coarse.weight) == level0.total_weight
        assert coarse.total_weight == level0.total_weight

    def test_contract_preserves_edge_weight_minus_internal(self, level0):
        groups, _ = coarsen_once(level0, merge_all=True)
        coarse = level0.contract(groups)
        # Edges internal to a group vanish; the rest keep their weight.
        coarse_of = {}
        for gi, group in enumerate(groups):
            for v in group:
                coarse_of[v] = gi
        external = 0
        for u in range(level0.n):
            for v, w in level0.fanout[u].items():
                if coarse_of[u] != coarse_of[v]:
                    external += w
        assert coarse.edge_weight_total() == external

    def test_contract_rejects_double_cover(self, level0):
        groups = [[0, 1], [1, 2]]
        with pytest.raises(Exception, match="two coarsening groups"):
            level0.contract(groups)

    def test_project_assigns_members(self, level0):
        groups, _ = coarsen_once(level0, merge_all=True)
        coarse = level0.contract(groups)
        partition = [gi % 3 for gi in range(coarse.n)]
        fine = coarse.project(partition)
        for gi, group in enumerate(groups):
            for v in group:
                assert fine[v] == partition[gi]


class TestCoarsening:
    def test_groups_partition_vertex_set(self, level0):
        groups, merged = coarsen_once(level0, merge_all=True)
        flat = [v for g in groups for v in g]
        assert sorted(flat) == list(range(level0.n))
        assert merged > 0

    def test_no_two_inputs_in_one_group(self, level0):
        groups, _ = coarsen_once(level0, merge_all=True)
        for group in groups:
            inputs = sum(1 for v in group if level0.contains_input[v])
            assert inputs <= 1

    def test_weight_cap_enforced_after_first_level(self, level0):
        hierarchy = coarsen(level0, threshold=16)
        cap = max(2.0, 1.5 * level0.total_weight / 16)
        # first contraction is exempt; later levels respect the cap
        # provided their constituents were already under it
        for graph in hierarchy.levels[2:]:
            level1_max = max(hierarchy.levels[1].weight)
            assert max(graph.weight) <= max(cap, 2 * level1_max)

    def test_hierarchy_strictly_shrinks(self, level0):
        hierarchy = coarsen(level0, threshold=32)
        sizes = [g.n for g in hierarchy.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)

    def test_threshold_respected(self, level0):
        hierarchy = coarsen(level0, threshold=50)
        assert hierarchy.coarsest.n <= max(
            50, hierarchy.levels[-2].n if hierarchy.num_levels > 1 else 50
        )

    def test_min_vertices_floor(self, level0):
        hierarchy = coarsen(level0, threshold=2, min_vertices=8)
        assert hierarchy.coarsest.n >= 8

    def test_seeds_are_grown_globules(self, level0):
        groups, _ = coarsen_once(level0, merge_all=True)
        coarse = level0.contract(groups)
        for seed in coarse.seeds:
            assert len(coarse.members[seed]) >= 2


class TestInitialPartition:
    def test_covers_and_balances(self, level0):
        rng = np.random.default_rng(1)
        hierarchy = coarsen(level0, threshold=40, min_vertices=8)
        coarse = hierarchy.coarsest
        part = initial_partition(coarse, 4, rng)
        assert len(part) == coarse.n
        assert set(part) == {0, 1, 2, 3}
        load = [0] * 4
        for v, p in enumerate(part):
            load[p] += coarse.weight[v]
        assert max(load) <= 2.0 * min(load) + max(coarse.weight)

    def test_input_globules_spread(self, level0):
        rng = np.random.default_rng(2)
        hierarchy = coarsen(level0, threshold=40, min_vertices=8)
        coarse = hierarchy.coarsest
        k = 3
        part = initial_partition(coarse, k, rng)
        inputs = coarse.input_globules
        per_part = [0] * k
        for v in inputs:
            per_part[part[v]] += 1
        assert max(per_part) - min(per_part) <= 1

    def test_k_larger_than_globules_rejected(self, level0):
        rng = np.random.default_rng(3)
        small = CoarseGraph(3)
        with pytest.raises(Exception, match="cannot make"):
            initial_partition(small, 5, rng)


@pytest.mark.parametrize("refine", [greedy_refine, fm_refine, kl_refine])
class TestRefiners:
    def _setup(self, level0, k=4, seed=9):
        rng = np.random.default_rng(seed)
        partition = [int(rng.integers(0, k)) for _ in range(level0.n)]
        return rng, partition

    def test_cut_never_increases(self, level0, refine):
        rng, partition = self._setup(level0)
        before = cut_weight(level0, partition)
        refine(level0, partition, 4, rng, max_weight=level0.total_weight)
        after = cut_weight(level0, partition)
        assert after <= before

    def test_partition_stays_complete(self, level0, refine):
        rng, partition = self._setup(level0)
        refine(level0, partition, 4, rng, max_weight=level0.total_weight)
        assert len(partition) == level0.n
        assert set(partition) <= {0, 1, 2, 3}

    def test_balance_cap_respected(self, level0, refine):
        rng, partition = self._setup(level0)
        cap = 1.4 * level0.total_weight / 4
        load_before = [0] * 4
        for v, p in enumerate(partition):
            load_before[p] += level0.weight[v]
        refine(level0, partition, 4, rng, max_weight=cap)
        load = [0] * 4
        for v, p in enumerate(partition):
            load[p] += level0.weight[v]
        # moves into a partition stop at the cap (KL swaps keep sizes)
        assert max(load) <= max(cap, max(load_before))


class TestMoveGains:
    def test_gain_matches_cut_delta(self, level0):
        rng = np.random.default_rng(4)
        partition = [int(rng.integers(0, 3)) for _ in range(level0.n)]
        for vertex in rng.choice(level0.n, size=10, replace=False):
            vertex = int(vertex)
            before = cut_weight(level0, partition)
            for dest, gain in move_gains(level0, partition, vertex).items():
                src = partition[vertex]
                partition[vertex] = dest
                after = cut_weight(level0, partition)
                partition[vertex] = src
                assert before - after == gain


class TestMultilevelEndToEnd:
    def test_projection_invariant(self, medium_circuit):
        """The paper's invariant: every gate lands where its globule did."""
        p = MultilevelPartitioner(seed=6, refiner="none")
        a = p.partition(medium_circuit, 4)
        a.validate()

    def test_refiner_improves_over_none(self, medium_circuit):
        from repro.partition import edge_cut

        no_ref = MultilevelPartitioner(seed=6, refiner="none").partition(
            medium_circuit, 4
        )
        greedy = MultilevelPartitioner(seed=6, refiner="greedy").partition(
            medium_circuit, 4
        )
        assert edge_cut(greedy) <= edge_cut(no_ref)

    @pytest.mark.parametrize("refiner", ["greedy", "kl", "fm"])
    def test_all_refiners_produce_valid_partitions(self, medium_circuit, refiner):
        p = MultilevelPartitioner(seed=6, refiner=refiner)
        a = p.partition(medium_circuit, 4)
        a.validate()

    def test_unknown_refiner_rejected(self):
        with pytest.raises(Exception, match="unknown refiner"):
            MultilevelPartitioner(refiner="quantum")

    def test_level_sizes_recorded(self, medium_circuit):
        p = MultilevelPartitioner(seed=6)
        p.partition(medium_circuit, 4)
        assert p.last_level_sizes[0] == medium_circuit.num_gates
        assert len(p.last_level_sizes) >= 2

    def test_threshold_parameter(self, medium_circuit):
        p = MultilevelPartitioner(seed=6, coarsen_threshold=100)
        p.partition(medium_circuit, 4)
        assert p.last_level_sizes[-1] >= 4


class TestHemCoarsening:
    def test_hem_groups_partition_vertex_set(self, level0):
        import numpy as np

        from repro.partition.multilevel.coarsening import hem_coarsen_once

        rng = np.random.default_rng(3)
        groups, merged = hem_coarsen_once(level0, rng)
        flat = sorted(v for g in groups for v in g)
        assert flat == list(range(level0.n))
        assert merged > 0
        assert all(len(g) <= 2 for g in groups)  # HEM pairs, never more

    def test_hem_respects_input_rule(self, level0):
        import numpy as np

        from repro.partition.multilevel.coarsening import hem_coarsen_once

        rng = np.random.default_rng(3)
        groups, _ = hem_coarsen_once(level0, rng)
        for group in groups:
            inputs = sum(1 for v in group if level0.contains_input[v])
            assert inputs <= 1

    def test_hem_partitioner_valid_and_competitive(self, medium_circuit):
        from repro.partition import edge_cut

        fanout = MultilevelPartitioner(seed=3, coarsening="fanout")
        hem = MultilevelPartitioner(seed=3, coarsening="hem")
        a = fanout.partition(medium_circuit, 6)
        b = hem.partition(medium_circuit, 6)
        a.validate()
        b.validate()
        low, high = sorted((edge_cut(a), edge_cut(b)))
        assert high <= low * 1.5

    def test_hem_oracle(self, medium_circuit):
        from repro.sim import RandomStimulus, SequentialSimulator
        from repro.warped import TimeWarpSimulator, VirtualMachine

        stim = RandomStimulus(medium_circuit, num_cycles=12, seed=7)
        seq = SequentialSimulator(medium_circuit, stim).run()
        assignment = MultilevelPartitioner(
            seed=3, coarsening="hem"
        ).partition(medium_circuit, 4)
        tw = TimeWarpSimulator(
            medium_circuit, assignment, stim, VirtualMachine(num_nodes=4)
        ).run()
        assert tw.final_values == seq.final_values

    def test_unknown_scheme_rejected(self, medium_circuit):
        import pytest as _pytest

        from repro.errors import PartitionError
        from repro.partition.multilevel.coarse_graph import CoarseGraph
        from repro.partition.multilevel.coarsening import coarsen

        graph = CoarseGraph.from_circuit(medium_circuit)
        with _pytest.raises(PartitionError, match="unknown coarsening"):
            coarsen(graph, threshold=32, scheme="magnetic")
        with _pytest.raises(PartitionError, match="needs an rng"):
            coarsen(graph, threshold=32, scheme="hem")
