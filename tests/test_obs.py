"""The observability layer: metrics, tracing, and cross-engine wiring.

Covers the pure pieces (counters, percentiles, JSONL writer, shard
merge) and then each engine's emission contract, ending with the
acceptance invariant: a traced multiprocess s27 run whose merged trace
accounts for *exactly* the rollbacks and GVT rounds the result reports.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import ExperimentRunner
from repro.obs import (
    Metrics,
    TraceWriter,
    merge_shards,
    read_trace,
    render_trace_summary,
    shard_path,
    summarize,
    summarize_trace,
)
from repro.obs.metrics import _NULL_TIMER, percentile
from repro.partition.registry import get_partitioner
from repro.sim import RandomStimulus, SequentialSimulator
from repro.warped import ProcessTimeWarpSimulator, TimeWarpSimulator, VirtualMachine


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize_digest(self):
        digest = summarize([3.0, 1.0, 2.0])
        assert digest["count"] == 3
        assert digest["min"] == 1.0
        assert digest["max"] == 3.0
        assert digest["p50"] == 2.0

    def test_summarize_empty_is_explicit(self):
        # No samples is a first-class answer, not an error: every stats
        # key is present (None), so renderers and JSON consumers never
        # hit a KeyError or NaN.
        digest = summarize([])
        assert digest == {
            "count": 0, "min": None, "mean": None,
            "p50": None, "p90": None, "max": None,
        }
        m = Metrics()
        m.histograms["empty"] = []
        assert m.snapshot()["histograms"]["empty"]["count"] == 0
        assert "no samples" in m.render()

    def test_counters_and_histograms(self):
        m = Metrics()
        m.inc("runs")
        m.inc("runs", 2)
        m.observe("latency", 0.5)
        with m.time("latency"):
            pass
        snap = m.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["histograms"]["latency"]["count"] == 2
        assert "runs" in m.render()

    def test_disabled_metrics_are_a_sink(self):
        m = Metrics(enabled=False)
        m.inc("runs")
        m.observe("latency", 1.0)
        assert m.counters == {}
        assert m.histograms == {}
        # No per-call allocation on the hot path: the null timer is
        # one shared instance.
        assert m.time("a") is _NULL_TIMER
        assert m.time("b") is _NULL_TIMER


# ----------------------------------------------------------------------
# trace writer + shard merge
# ----------------------------------------------------------------------
class TestTracer:
    def test_writer_emits_epoch_relative_json_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path, node=2) as w:
            w.emit("rollback", lp=5, depth=3)
            w.emit("gvt_round", gvt=float("inf"), latency=0.25)
        records = read_trace(path)
        assert [r["kind"] for r in records] == ["rollback", "gvt_round"]
        assert records[0]["node"] == 2
        assert records[0]["lp"] == 5
        assert all(r["ts"] >= 0 for r in records)
        # +inf (the quiescence proof) must serialize as strict JSON.
        assert records[1]["gvt"] is None
        for line in open(path):
            json.loads(line)

    def test_merge_orders_by_time_then_node(self, tmp_path):
        base = str(tmp_path / "merged.jsonl")
        epoch = 1000.0
        for node, stamps in ((0, [0.3, 0.1]), (1, [0.2])):
            with open(shard_path(base, node), "w") as fh:
                for ts in stamps:
                    fh.write(json.dumps({"ts": ts, "node": node, "kind": "x"}) + "\n")
        count = merge_shards(
            base, [shard_path(base, n) for n in (0, 1, 5)],
            extra=[{"ts": 0.2, "node": -1, "kind": "run_summary"}],
        )
        assert count == 4  # the missing shard 5 is skipped, not an error
        records = read_trace(base)
        assert [(r["ts"], r["node"]) for r in records] == [
            (0.1, 0), (0.2, -1), (0.2, 1), (0.3, 0),
        ]
        # Shards are consumed by the merge.
        assert not os.path.exists(shard_path(base, 0))
        del epoch

    def test_writer_stamps_monotonic_seq(self, tmp_path):
        path = str(tmp_path / "seq.jsonl")
        with TraceWriter(path, node=0) as w:
            for _ in range(4):
                w.emit("x")
        assert [r["seq"] for r in read_trace(path)] == [0, 1, 2, 3]

    def test_merge_breaks_timestamp_ties_with_writer_seq(self, tmp_path):
        # Coarse clocks collide: two writers, every record at the same
        # ts. The per-writer monotonic `seq` keeps each writer's
        # records in emission order and interleaves nodes
        # deterministically — sort key (ts, node, seq).
        base = str(tmp_path / "tie.jsonl")
        for node, kinds in ((1, ["b1", "b2"]), (0, ["a1", "a2", "a3"])):
            with open(shard_path(base, node), "w") as fh:
                for seq, kind in enumerate(kinds):
                    fh.write(json.dumps(
                        {"ts": 0.5, "node": node, "seq": seq, "kind": kind}
                    ) + "\n")
        merge_shards(base, [shard_path(base, n) for n in (0, 1)])
        records = read_trace(base)
        assert [r["kind"] for r in records] == ["a1", "a2", "a3", "b1", "b2"]
        assert [r["seq"] for r in records] == [0, 1, 2, 0, 1]

    def test_merge_can_keep_shards(self, tmp_path):
        base = str(tmp_path / "m.jsonl")
        with TraceWriter(shard_path(base, 0), node=0, epoch=0.0) as w:
            w.emit("x")
        merge_shards(base, [shard_path(base, 0)], keep_shards=True)
        assert os.path.exists(shard_path(base, 0))

    def test_merge_keeps_only_each_nodes_newest_attempt(self, tmp_path):
        """Regression: a restarted run used to merge every attempt's
        shard, double-counting the pre-crash records.  Node 0 restarted
        once (attempts 0 and 1), node 1 never did — the merge must keep
        node 0's attempt-1 records, node 1's attempt-0 records, and the
        parent's restart extras (which carry no ``attempt``)."""
        base = str(tmp_path / "r.jsonl")
        with TraceWriter(shard_path(base, 0), node=0, epoch=0.0) as w:
            w.emit("stale")
        with TraceWriter(shard_path(base, 0, 1), node=0, epoch=0.0,
                         attempt=1) as w:
            w.emit("fresh")
        with TraceWriter(shard_path(base, 1), node=1, epoch=0.0) as w:
            w.emit("survivor")
        count = merge_shards(
            base,
            [shard_path(base, 0), shard_path(base, 0, 1), shard_path(base, 1)],
            extra=[{"ts": 0.1, "node": -1, "seq": 0, "kind": "restart",
                    "to_attempt": 1}],
        )
        assert count == 3
        records = read_trace(base)
        assert sorted(r["kind"] for r in records) == [
            "fresh", "restart", "survivor",
        ]
        by_kind = {r["kind"]: r for r in records}
        assert by_kind["fresh"]["attempt"] == 1
        assert "attempt" not in by_kind["survivor"]  # attempt 0: unstamped


# ----------------------------------------------------------------------
# engine emission contracts
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_sequential_run_brackets(self, s27, tmp_path):
        path = str(tmp_path / "seq.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=10, period=20, seed=3)
        with TraceWriter(path) as tracer:
            result = SequentialSimulator(s27, stimulus, tracer=tracer).run()
        records = read_trace(path)
        assert records[0]["kind"] == "run_start"
        assert records[-1]["kind"] == "run_end"
        assert records[-1]["events"] == result.events_processed
        # Between the brackets: the committed timeline, one record per
        # active gate, accounting for every processed event.
        commits = [r for r in records[1:-1] if r["kind"] == "commit"]
        assert len(commits) == len(records) - 2
        assert sum(r["n"] for r in commits) == result.events_processed

    def test_virtual_backend_accounts_for_itself(self, s27, tmp_path):
        path = str(tmp_path / "virtual.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
        assignment = get_partitioner("Random", seed=4).partition(s27, 3)
        machine = VirtualMachine(num_nodes=3, gvt_interval=64)
        with TraceWriter(path) as tracer:
            result = TimeWarpSimulator(
                s27, assignment, stimulus, machine, tracer=tracer
            ).run()
        summary = summarize_trace(read_trace(path))
        assert summary["rollbacks_total"] == result.rollbacks
        assert summary["gvt_rounds"] == result.gvt_rounds
        assert summary["kinds"]["node_summary"] == 3
        assert result.rollbacks > 0  # Random x3 must produce stragglers

    def test_report_renders(self, s27, tmp_path):
        path = str(tmp_path / "r.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=10, period=20, seed=5)
        assignment = get_partitioner("DFS", seed=1).partition(s27, 2)
        with TraceWriter(path) as tracer:
            TimeWarpSimulator(
                s27, assignment, stimulus,
                VirtualMachine(num_nodes=2, gvt_interval=64), tracer=tracer,
            ).run()
        text = render_trace_summary(summarize_trace(read_trace(path)))
        assert "GVT rounds" in text
        assert "node  0" in text


# ----------------------------------------------------------------------
# the acceptance invariant: traced multiprocess run, fully accounted
# ----------------------------------------------------------------------
class TestProcessTraceAcceptance:
    def test_merged_trace_accounts_for_result_totals(self, s27, tmp_path):
        path = str(tmp_path / "s27.trace.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
        assignment = get_partitioner("Multilevel", seed=3).partition(s27, 4)
        sim = ProcessTimeWarpSimulator(
            s27, assignment, stimulus,
            VirtualMachine(num_nodes=4, gvt_interval=32),
            trace_path=path,
        )
        result = sim.run()
        records = read_trace(path)
        assert sim.trace_records == len(records) > 0
        for node in range(4):  # shards were merged and removed
            assert not os.path.exists(shard_path(path, node))
        # Merged order is (wall time, node).
        keys = [(r["ts"], r["node"]) for r in records]
        assert keys == sorted(keys)
        summary = summarize_trace(records)
        # Per-node rollback records sum to the result's rollback total...
        per_node = {
            s.node: s.rollbacks for s in result.node_stats
        }
        for node, bucket in summary["nodes"].items():
            assert bucket["rollbacks"] == per_node[node]
        assert summary["rollbacks_total"] == result.rollbacks
        # ...and concluded GVT rounds match the ring's count exactly.
        assert summary["gvt_rounds"] == result.gvt_rounds
        # Every worker contributed a busy/idle summary.
        assert summary["kinds"]["node_summary"] == 4
        assert all(b["wall"] > 0 for b in summary["nodes"].values())

    def test_shards_survive_a_failed_run(self, s27, tmp_path):
        from repro.errors import SimulationError

        path = str(tmp_path / "fail.trace.jsonl")
        stimulus = RandomStimulus(s27, num_cycles=20, period=20, seed=5)
        assignment = get_partitioner("Random", seed=1).partition(s27, 2)
        sim = ProcessTimeWarpSimulator(
            s27, assignment, stimulus, VirtualMachine(num_nodes=2),
            max_events=10, trace_path=path,
        )
        with pytest.raises(SimulationError):
            sim.run()
        assert not os.path.exists(path)  # no merge on failure


# ----------------------------------------------------------------------
# harness wiring
# ----------------------------------------------------------------------
class TestHarnessWiring:
    def test_config_env_plumbing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/x.jsonl")
        monkeypatch.setenv("REPRO_METRICS", "1")
        config = ExperimentConfig.from_env()
        assert config.trace_path == "/tmp/x.jsonl"
        assert config.metrics_enabled

    def test_runner_traces_and_measures(self, tmp_path):
        base = str(tmp_path / "runner.jsonl")
        runner = ExperimentRunner(
            ExperimentConfig(
                scale=0.05, num_cycles=10,
                trace_path=base, metrics_enabled=True,
            )
        )
        runner.run("s5378", "Multilevel", 2)
        runner.run("s5378", "DFS", 2)
        assert runner.trace_files == [base, f"{base}.1"]
        assert all(os.path.exists(p) for p in runner.trace_files)
        assert runner.metrics.counters["timewarp_runs"] == 2
        assert "timewarp_run_seconds" in runner.metrics.histograms

    def test_runner_defaults_stay_dark(self, tmp_path):
        runner = ExperimentRunner(ExperimentConfig(scale=0.05, num_cycles=10))
        runner.run("s5378", "Multilevel", 2)
        assert runner.trace_files == []
        assert runner.metrics.counters == {}


# ----------------------------------------------------------------------
# overhead budget (DESIGN.md §7): tracing off must cost < 2%
# ----------------------------------------------------------------------
def test_disabled_tracing_overhead_budget(s27):
    """Disabled instrumentation must stay under 2% of event cost.

    Diffing two end-to-end wall clocks is scheduler noise at the budget
    scale, so measure the two quantities directly: the cost of one
    event in an (uninstrumented-path) run, and the cost of the
    ``tracer is None`` guard plus a disabled-``Metrics`` call — the
    only things the hot paths pay when observability is off.  The
    guard fires at most once per rollback or GVT round, both far rarer
    than events, so per-guard < 2% of per-event bounds the total well
    under budget.
    """
    import time

    stimulus = RandomStimulus(s27, num_cycles=60, period=20, seed=5)
    assignment = get_partitioner("Multilevel", seed=3).partition(s27, 4)
    machine = VirtualMachine(num_nodes=4, gvt_interval=64)
    t0 = time.perf_counter()
    result = TimeWarpSimulator(s27, assignment, stimulus, machine).run()
    per_event = (time.perf_counter() - t0) / result.events_processed

    n = 200_000
    tracer = None
    sink = Metrics(enabled=False)
    t0 = time.perf_counter()
    for _ in range(n):
        if tracer is not None:
            raise AssertionError
        sink.inc("x")
    per_guard = (time.perf_counter() - t0) / n
    assert math.isfinite(per_event)
    assert per_guard < 0.02 * per_event
